//! Behavioural tests for the concurrency layer: commit ordering,
//! batching, error paths, and store-failure poisoning.

use good_core::gen::bench_scheme;
use good_core::label::Label;
use good_core::ops::NodeAddition;
use good_core::pattern::Pattern;
use good_core::program::{Operation, Program};
use good_server::{Server, ServerConfig, ServerError};
use good_store::vfs::{FaultPlan, FaultVfs};
use good_store::Store;
use std::sync::Arc;

const JOURNAL: &str = "/server/db.journal";

fn start_server(config: ServerConfig) -> (Server, Arc<FaultVfs>) {
    let vfs = Arc::new(FaultVfs::new(FaultPlan::reliable(11)));
    let store = Store::create_with_vfs(
        Arc::clone(&vfs) as Arc<dyn good_store::vfs::Vfs>,
        JOURNAL,
        bench_scheme(),
    )
    .expect("create store");
    (Server::start(store, config), vfs)
}

/// A program creating one unconditional Info node. GOOD node addition
/// is idempotent, so repeated applications still yield one Info.
fn seed_program() -> Program {
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        Pattern::new(),
        "Info",
        [],
    ))])
}

/// A program creating one node under a caller-chosen label — distinct
/// labels accumulate distinct nodes despite node-addition dedup.
fn labeled_program(label: &str) -> Program {
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        Pattern::new(),
        label,
        [],
    ))])
}

/// A program tagging every Info node.
fn tag_program(tag: &str) -> Program {
    let mut pattern = Pattern::new();
    let info = pattern.node("Info");
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        pattern,
        tag,
        [(Label::new("of"), info)],
    ))])
}

#[test]
fn commits_carry_a_dense_commit_sequence() {
    let (server, _vfs) = start_server(ServerConfig::default());
    let session = server.open_session();
    for expected in 1..=3u64 {
        let ack = server
            .submit_wait(session, labeled_program(&format!("Obj{expected}")))
            .unwrap();
        assert_eq!(ack.commit_seq, Some(expected));
        assert_eq!(ack.session, session);
        assert!(ack.outcome.is_ok());
    }
    let snapshot = server.snapshot();
    assert_eq!(snapshot.instance().node_count(), 3);
    let store = server.shutdown().unwrap();
    assert_eq!(store.instance().node_count(), 3);
}

#[test]
fn paused_writer_forms_one_batch_and_one_epoch() {
    let (server, _vfs) = start_server(ServerConfig {
        queue_capacity: 16,
        max_batch: 16,
        ..ServerConfig::default()
    });
    let session = server.open_session();
    server.pause_writer();
    let tickets: Vec<_> = (0..5)
        .map(|_| server.submit(session, seed_program()).unwrap())
        .collect();
    assert_eq!(server.epoch(), 0, "nothing commits while paused");
    server.resume_writer();
    let acks: Vec<_> = tickets
        .into_iter()
        .map(|t| server.wait(t).unwrap())
        .collect();
    // All five were drained as one group: same published epoch,
    // consecutive commit sequence numbers.
    assert!(acks.iter().all(|ack| ack.epoch == acks[0].epoch));
    let seqs: Vec<u64> = acks.iter().map(|ack| ack.commit_seq.unwrap()).collect();
    assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
    assert_eq!(server.epoch(), 1);
    // One batch → one journal group: snapshot + 5 BatchApply + commit.
    let store = server.shutdown().unwrap();
    assert_eq!(store.record_count(), 7);
}

#[test]
fn model_failures_are_acked_without_breaking_the_batch() {
    let (server, _vfs) = start_server(ServerConfig::default());
    let session = server.open_session();
    server.submit_wait(session, seed_program()).unwrap();
    // A pattern over an unknown object label fails validation.
    let bad = {
        let mut pattern = Pattern::new();
        let a = pattern.node("Nope");
        let b = pattern.node("Info");
        Program::from_ops([Operation::EdgeAdd(
            good_core::ops::EdgeAddition::multivalued(pattern, a, "links-to", b),
        )])
    };
    server.pause_writer();
    let t1 = server.submit(session, tag_program("Tag0")).unwrap();
    let t2 = server.submit(session, bad).unwrap();
    let t3 = server.submit(session, tag_program("Tag1")).unwrap();
    server.resume_writer();
    let a1 = server.wait(t1).unwrap();
    let a2 = server.wait(t2).unwrap();
    let a3 = server.wait(t3).unwrap();
    assert!(a1.outcome.is_ok());
    assert!(a2.outcome.is_err());
    assert!(a3.outcome.is_ok());
    // The rejected program takes no commit slot.
    assert_eq!(a1.commit_seq, Some(2));
    assert_eq!(a2.commit_seq, None);
    assert_eq!(a3.commit_seq, Some(3));
    let snapshot = server.snapshot();
    assert_eq!(snapshot.instance().label_count(&"Tag0".into()), 1);
    assert_eq!(snapshot.instance().label_count(&"Tag1".into()), 1);
    server.shutdown().unwrap();
}

#[test]
fn unknown_and_closed_sessions_are_rejected() {
    let (server, _vfs) = start_server(ServerConfig::default());
    assert_eq!(
        server.submit(42, seed_program()),
        Err(ServerError::UnknownSession(42))
    );
    let session = server.open_session();
    server.close_session(session).unwrap();
    assert_eq!(
        server.submit(session, seed_program()),
        Err(ServerError::UnknownSession(session))
    );
    assert_eq!(
        server.close_session(session),
        Err(ServerError::UnknownSession(session))
    );
    server.shutdown().unwrap();
}

#[test]
fn submissions_after_begin_shutdown_are_rejected_but_queued_work_drains() {
    let (server, _vfs) = start_server(ServerConfig::default());
    let session = server.open_session();
    server.pause_writer();
    let ticket = server.submit(session, seed_program()).unwrap();
    server.begin_shutdown();
    assert_eq!(
        server.submit(session, seed_program()),
        Err(ServerError::Shutdown)
    );
    // The queued program still commits: shutdown drains, never drops.
    let ack = server.wait(ticket).unwrap();
    assert_eq!(ack.commit_seq, Some(1));
    let store = server.shutdown().unwrap();
    assert_eq!(store.instance().node_count(), 1);
}

#[test]
fn queue_full_backpressure_clears_once_the_writer_drains() {
    let (server, _vfs) = start_server(ServerConfig {
        queue_capacity: 2,
        max_batch: 8,
        ..ServerConfig::default()
    });
    let session = server.open_session();
    server.pause_writer();
    let t1 = server.submit(session, seed_program()).unwrap();
    let t2 = server.submit(session, seed_program()).unwrap();
    assert_eq!(
        server.submit(session, seed_program()),
        Err(ServerError::QueueFull { capacity: 2 })
    );
    server.resume_writer();
    server.wait(t1).unwrap();
    server.wait(t2).unwrap();
    // Backpressure is transient: the drained queue accepts again.
    let ack = server.submit_wait(session, seed_program()).unwrap();
    assert_eq!(ack.commit_seq, Some(3));
    server.shutdown().unwrap();
}

#[test]
fn journal_failure_fails_the_batch_and_poisons_the_server() {
    let (server, vfs) = start_server(ServerConfig::default());
    let session = server.open_session();
    server.submit_wait(session, seed_program()).unwrap();
    let epoch_before = server.epoch();
    // Crash the VFS at the next I/O operation: the writer's append
    // fails, the store poisons, and the batch must not commit.
    vfs.set_crash_at(Some(vfs.op_count()));
    let err = server.submit_wait(session, seed_program()).unwrap_err();
    assert!(matches!(err, ServerError::Store(_)), "got {err:?}");
    // No snapshot was published for the failed batch, and further
    // submissions fail fast.
    assert_eq!(server.epoch(), epoch_before);
    assert!(matches!(
        server.submit(session, seed_program()),
        Err(ServerError::Store(_))
    ));
    // Committed state stays readable.
    assert_eq!(server.snapshot().instance().node_count(), 1);
    server.shutdown().unwrap();
}

#[test]
fn concurrent_sessions_preserve_per_session_submission_order() {
    let (server, _vfs) = start_server(ServerConfig {
        queue_capacity: 64,
        max_batch: 4,
        ..ServerConfig::default()
    });
    let per_session = 8usize;
    let orders: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|thread| {
                let server = &server;
                scope.spawn(move || {
                    let session = server.open_session();
                    (0..per_session)
                        .map(|step| {
                            server
                                .submit_wait(session, labeled_program(&format!("S{thread}x{step}")))
                                .unwrap()
                                .commit_seq
                                .unwrap()
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for order in &orders {
        assert!(
            order.windows(2).all(|w| w[0] < w[1]),
            "per-session commit order must follow submission order: {order:?}"
        );
    }
    let store = server.shutdown().unwrap();
    assert_eq!(store.instance().node_count(), 3 * per_session);
}
