//! The Section 5 implementation strategy: GOOD on a relational store.
//!
//! "A prototype of the actual data management is implemented on top of
//! a relational system. Classes are stored as relations with attributes
//! for the object identifier and the functional properties. Multivalued
//! edges are stored as binary relations. The set of all matchings of
//! the pattern of a GOOD operation is expressed as an SQL query."
//!
//! [`RelBackend`] reproduces that architecture on our own relational
//! machinery: class tables (object id + print value), binary edge
//! tables with hash indexes in both directions, and pattern matching
//! evaluated as a left-deep join plan over those tables. It is a
//! genuinely different evaluation path from `good_core::matching`, and
//! the two are differentially tested (and raced in benchmark E7).

use good_core::error::{GoodError, Result};
use good_core::instance::Instance;
use good_core::label::Label;
use good_core::matching::Matching;
use good_core::pattern::{Pattern, PatternNodeKind};
use good_core::value::Value;
use good_graph::NodeId;
use std::collections::{BTreeMap, HashMap};

/// A GOOD instance stored relationally.
#[derive(Debug, Clone, Default)]
pub struct RelBackend {
    /// Class table: label → object ids (sorted).
    class_rows: BTreeMap<Label, Vec<NodeId>>,
    /// Print column of printable classes.
    prints: HashMap<NodeId, Value>,
    /// Printable lookup: (class, value) → id.
    printable_lookup: HashMap<(Label, Value), NodeId>,
    /// Binary relation per edge label, plus hash indexes both ways.
    forward: HashMap<(Label, NodeId), Vec<NodeId>>,
    backward: HashMap<(Label, NodeId), Vec<NodeId>>,
    /// Edge membership for final filtering.
    edges: HashMap<(Label, NodeId, NodeId), ()>,
}

impl RelBackend {
    /// Load an instance into relational storage.
    pub fn from_instance(db: &Instance) -> Self {
        let mut backend = RelBackend::default();
        for node in db.graph().nodes() {
            backend
                .class_rows
                .entry(node.payload.label.clone())
                .or_default()
                .push(node.id);
            if let Some(value) = &node.payload.print {
                backend.prints.insert(node.id, value.clone());
                backend
                    .printable_lookup
                    .insert((node.payload.label.clone(), value.clone()), node.id);
            }
        }
        for rows in backend.class_rows.values_mut() {
            rows.sort();
        }
        for edge in db.graph().edges() {
            let label = edge.payload.label.clone();
            backend
                .forward
                .entry((label.clone(), edge.src))
                .or_default()
                .push(edge.dst);
            backend
                .backward
                .entry((label.clone(), edge.dst))
                .or_default()
                .push(edge.src);
            backend.edges.insert((label, edge.src, edge.dst), ());
        }
        backend
    }

    /// Number of rows in a class table.
    pub fn class_cardinality(&self, class: &Label) -> usize {
        self.class_rows.get(class).map_or(0, Vec::len)
    }

    fn node_satisfies(&self, candidate: NodeId, node: &good_core::pattern::PatternNode) -> bool {
        if let Some(required) = &node.print {
            if self.prints.get(&candidate) != Some(required) {
                return false;
            }
        }
        if let Some(predicate) = &node.predicate {
            match self.prints.get(&candidate) {
                Some(value) if predicate.matches(value) => {}
                _ => return false,
            }
        }
        true
    }

    /// Evaluate a (positive) pattern as a join over the stored tables.
    ///
    /// Patterns with crossed parts or method heads are rejected — the
    /// Antwerp prototype compiled those into the update pipeline, which
    /// this backend does not reproduce.
    pub fn match_pattern(&self, pattern: &Pattern) -> Result<Vec<Matching>> {
        if pattern.has_negation() || pattern.has_method_head() {
            return Err(GoodError::InvalidPattern(
                "the relational backend evaluates positive patterns only".into(),
            ));
        }

        // Join order: pattern nodes, preferring ones connected to the
        // already-joined prefix (left-deep plan), tie-broken by class
        // cardinality.
        let all_nodes: Vec<NodeId> = {
            let mut nodes: Vec<NodeId> = pattern.graph().node_ids().collect();
            nodes.sort();
            nodes
        };
        let mut order: Vec<NodeId> = Vec::with_capacity(all_nodes.len());
        let mut remaining = all_nodes.clone();
        while !remaining.is_empty() {
            let pick = remaining
                .iter()
                .position(|node| {
                    pattern
                        .graph()
                        .out_edges(*node)
                        .map(|e| e.dst)
                        .chain(pattern.graph().in_edges(*node).map(|e| e.src))
                        .any(|neighbour| order.contains(&neighbour))
                })
                .unwrap_or_else(|| {
                    // No connected node: pick the smallest class table.
                    remaining
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, node)| {
                            let label = pattern.node_label(**node).cloned();
                            label.map_or(usize::MAX, |l| self.class_cardinality(&l))
                        })
                        .map(|(index, _)| index)
                        .expect("remaining nonempty")
                });
            order.push(remaining.remove(pick));
        }

        // Left-deep join over binding rows.
        let mut rows: Vec<BTreeMap<NodeId, NodeId>> = vec![BTreeMap::new()];
        for &pnode in &order {
            let data = pattern.graph().node(pnode).expect("live");
            let PatternNodeKind::Class(label) = &data.kind else {
                return Err(GoodError::InvalidPattern("method head in pattern".into()));
            };
            let mut next_rows = Vec::new();
            for row in &rows {
                // Candidate generation: via an index on an edge to a
                // bound neighbour if possible, else a class scan (or a
                // point lookup for exact printable values).
                let candidates: Vec<NodeId> = if let Some(required) = &data.print {
                    self.printable_lookup
                        .get(&(label.clone(), required.clone()))
                        .map(|id| vec![*id])
                        .unwrap_or_default()
                } else if let Some(edge) = pattern
                    .graph()
                    .in_edges(pnode)
                    .find(|e| row.contains_key(&e.src))
                {
                    self.forward
                        .get(&(edge.payload.label.clone(), row[&edge.src]))
                        .cloned()
                        .unwrap_or_default()
                } else if let Some(edge) = pattern
                    .graph()
                    .out_edges(pnode)
                    .find(|e| row.contains_key(&e.dst))
                {
                    self.backward
                        .get(&(edge.payload.label.clone(), row[&edge.dst]))
                        .cloned()
                        .unwrap_or_default()
                } else {
                    self.class_rows.get(label).cloned().unwrap_or_default()
                };
                'candidates: for candidate in candidates {
                    // Class check (index-derived candidates can have any
                    // label) + print/predicate columns.
                    let in_class = self
                        .class_rows
                        .get(label)
                        .is_some_and(|rows| rows.binary_search(&candidate).is_ok());
                    if !in_class || !self.node_satisfies(candidate, data) {
                        continue;
                    }
                    // Residual join predicates: all edges between the
                    // candidate and bound nodes must be present.
                    for edge in pattern.graph().out_edges(pnode) {
                        let dst = if edge.dst == pnode {
                            Some(candidate) // self loop
                        } else {
                            row.get(&edge.dst).copied()
                        };
                        if let Some(dst) = dst {
                            if !self.edges.contains_key(&(
                                edge.payload.label.clone(),
                                candidate,
                                dst,
                            )) {
                                continue 'candidates;
                            }
                        }
                    }
                    for edge in pattern.graph().in_edges(pnode) {
                        if edge.src == pnode {
                            continue; // handled above
                        }
                        if let Some(&src) = row.get(&edge.src) {
                            if !self.edges.contains_key(&(
                                edge.payload.label.clone(),
                                src,
                                candidate,
                            )) {
                                continue 'candidates;
                            }
                        }
                    }
                    let mut extended = row.clone();
                    extended.insert(pnode, candidate);
                    next_rows.push(extended);
                }
            }
            rows = next_rows;
            if rows.is_empty() {
                break;
            }
        }

        let mut out: Vec<Matching> = rows.into_iter().map(Matching::from_pairs).collect();
        out.sort();
        out.dedup();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use good_core::gen::{random_instance, GenConfig};
    use good_core::matching::find_matchings;
    use good_core::pattern::ValuePredicate;
    use good_core::scheme::SchemeBuilder;
    use good_core::value::ValueType;

    fn sample() -> Instance {
        random_instance(&GenConfig {
            infos: 40,
            avg_links: 2.0,
            distinct_dates: 4,
            seed: 3,
        })
    }

    fn agree(pattern: &Pattern, db: &Instance) {
        let native = find_matchings(pattern, db).unwrap();
        let relational = RelBackend::from_instance(db)
            .match_pattern(pattern)
            .unwrap();
        assert_eq!(native, relational);
    }

    #[test]
    fn single_node_pattern() {
        let db = sample();
        let mut p = Pattern::new();
        p.node("Info");
        agree(&p, &db);
    }

    #[test]
    fn edge_pattern() {
        let db = sample();
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.node("Info");
        p.edge(a, "links-to", b);
        agree(&p, &db);
    }

    #[test]
    fn triangle_pattern() {
        let db = sample();
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.node("Info");
        let c = p.node("Info");
        p.edge(a, "links-to", b);
        p.edge(b, "links-to", c);
        p.edge(a, "links-to", c);
        agree(&p, &db);
    }

    #[test]
    fn printable_point_lookup() {
        let db = sample();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.printable("String", "info-7");
        p.edge(info, "name", name);
        agree(&p, &db);
    }

    #[test]
    fn predicate_columns() {
        let db = sample();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.predicate_node("String", ValuePredicate::StartsWith("info-1".into()));
        p.edge(info, "name", name);
        agree(&p, &db);
    }

    #[test]
    fn disconnected_pattern_cross_product() {
        let db = random_instance(&GenConfig {
            infos: 6,
            avg_links: 1.0,
            distinct_dates: 2,
            seed: 9,
        });
        let mut p = Pattern::new();
        p.node("Info");
        p.node("Date");
        agree(&p, &db);
    }

    #[test]
    fn self_loop_pattern() {
        let scheme = SchemeBuilder::new()
            .object("N")
            .multivalued("N", "e", "N")
            .printable("S", ValueType::Str)
            .build();
        let mut db = Instance::new(scheme);
        let a = db.add_object("N").unwrap();
        let b = db.add_object("N").unwrap();
        db.add_edge(a, "e", a).unwrap();
        db.add_edge(a, "e", b).unwrap();
        let mut p = Pattern::new();
        let n = p.node("N");
        p.edge(n, "e", n);
        agree(&p, &db);
    }

    #[test]
    fn negation_rejected() {
        let db = sample();
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.negated_node("Info");
        p.edge(a, "links-to", b);
        assert!(RelBackend::from_instance(&db).match_pattern(&p).is_err());
    }

    #[test]
    fn random_differential_sweep() {
        for seed in 0..8 {
            let db = random_instance(&GenConfig {
                infos: 25,
                avg_links: 2.5,
                distinct_dates: 3,
                seed,
            });
            // Chain pattern of length 2 with a date constraint.
            let mut p = Pattern::new();
            let a = p.node("Info");
            let b = p.node("Info");
            let c = p.node("Info");
            let d = p.node("Date");
            p.edge(a, "links-to", b);
            p.edge(b, "links-to", c);
            p.edge(a, "created", d);
            agree(&p, &db);
        }
    }
}
