//! The hyper-media object base scheme (Figure 1).
//!
//! Object classes: `Info`, `Version`, `Reference`, `Data`, `Comment`,
//! `Sound`, `Text`, `Graphics`. Printable classes: `Date`, `String`,
//! `Number`, `Longstring`, `Bitmap`, `Bitstream`.
//!
//! The `isa` edges (`Reference isa Info`, `Data isa Info`,
//! `Sound/Text/Graphics isa Data`) are marked as subclass edges so the
//! Section 4.2 inheritance machinery can use them; the paper attaches no
//! special semantics to them until that section either.

use good_core::scheme::{Scheme, SchemeBuilder};
use good_core::value::ValueType;

/// Build the Figure 1 scheme.
pub fn build_scheme() -> Scheme {
    SchemeBuilder::new()
        // ---- classes -----------------------------------------------------
        .object("Info")
        .object("Version")
        .object("Reference")
        .object("Data")
        .object("Comment")
        .object("Sound")
        .object("Text")
        .object("Graphics")
        // ---- printable classes --------------------------------------------
        .printable("Date", ValueType::Date)
        .printable("String", ValueType::Str)
        .printable("Number", ValueType::Int)
        .printable("Longstring", ValueType::Str)
        .printable("Bitmap", ValueType::Bytes)
        .printable("Bitstream", ValueType::Bytes)
        // ---- Info ----------------------------------------------------------
        .functional("Info", "created", "Date")
        .functional("Info", "modified", "Date")
        .functional("Info", "name", "String")
        .functional("Info", "comment", "Comment")
        .multivalued("Info", "links-to", "Info")
        // ---- Comment: `is` either a String or a Number ---------------------
        .functional("Comment", "is", "String")
        .functional("Comment", "is", "Number")
        // ---- Version --------------------------------------------------------
        .functional("Version", "old", "Info")
        .functional("Version", "new", "Info")
        // ---- Reference -------------------------------------------------------
        .subclass("Reference", "isa", "Info")
        .multivalued("Reference", "in", "Info")
        // ---- Data hierarchy ---------------------------------------------------
        .subclass("Data", "isa", "Info")
        .subclass("Sound", "isa", "Data")
        .subclass("Text", "isa", "Data")
        .subclass("Graphics", "isa", "Data")
        // ---- Sound -------------------------------------------------------------
        .functional("Sound", "frequency", "Number")
        .functional("Sound", "data", "Bitstream")
        // ---- Text ----------------------------------------------------------------
        .functional("Text", "#chars", "Number")
        .functional("Text", "#words", "Number")
        .functional("Text", "data", "Longstring")
        // ---- Graphics ---------------------------------------------------------------
        .functional("Graphics", "width", "Number")
        .functional("Graphics", "height", "Number")
        .functional("Graphics", "data", "Bitmap")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use good_core::label::{EdgeKind, Label};

    #[test]
    fn scheme_validates() {
        build_scheme().validate().unwrap();
    }

    #[test]
    fn classes_and_printables_registered() {
        let s = build_scheme();
        for class in [
            "Info",
            "Version",
            "Reference",
            "Data",
            "Comment",
            "Sound",
            "Text",
            "Graphics",
        ] {
            assert!(s.is_object_label(&class.into()), "{class} missing");
        }
        for printable in [
            "Date",
            "String",
            "Number",
            "Longstring",
            "Bitmap",
            "Bitstream",
        ] {
            assert!(
                s.is_printable_label(&printable.into()),
                "{printable} missing"
            );
        }
    }

    #[test]
    fn edge_kinds_match_figure1() {
        let s = build_scheme();
        for functional in [
            "created", "modified", "name", "comment", "old", "new", "isa", "is",
        ] {
            assert_eq!(
                s.edge_kind(&functional.into()),
                Some(EdgeKind::Functional),
                "{functional}"
            );
        }
        for multivalued in ["links-to", "in"] {
            assert_eq!(
                s.edge_kind(&multivalued.into()),
                Some(EdgeKind::Multivalued),
                "{multivalued}"
            );
        }
    }

    #[test]
    fn comment_targets_string_or_number() {
        let s = build_scheme();
        assert!(s.allows(&"Comment".into(), &"is".into(), &"String".into()));
        assert!(s.allows(&"Comment".into(), &"is".into(), &"Number".into()));
        assert!(!s.allows(&"Comment".into(), &"is".into(), &"Date".into()));
    }

    #[test]
    fn data_label_is_overloaded_across_media() {
        let s = build_scheme();
        assert!(s.allows(&"Sound".into(), &"data".into(), &"Bitstream".into()));
        assert!(s.allows(&"Text".into(), &"data".into(), &"Longstring".into()));
        assert!(s.allows(&"Graphics".into(), &"data".into(), &"Bitmap".into()));
        assert!(!s.allows(&"Sound".into(), &"data".into(), &"Bitmap".into()));
    }

    #[test]
    fn isa_hierarchy_marked() {
        let s = build_scheme();
        let ancestors = s.ancestors_of(&Label::new("Sound"));
        assert!(ancestors.contains(&Label::new("Data")));
        assert!(ancestors.contains(&Label::new("Info")));
        assert_eq!(
            s.ancestors_of(&Label::new("Reference")),
            vec![Label::new("Info")]
        );
    }

    #[test]
    fn dot_renders() {
        let dot = build_scheme().to_dot("hyper-media scheme");
        assert!(dot.contains("Info"));
        assert!(dot.contains("shape=ellipse"));
    }
}
