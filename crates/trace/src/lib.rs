//! `good-trace` — zero-dependency tracing, metrics, and profiling for
//! the GOOD reproduction.
//!
//! The engine's pattern matcher, operation layer, method machinery, and
//! journaled store all emit structured [`Span`]s through this crate.
//! The design contract, in order of importance:
//!
//! 1. **Zero cost when off.** No recorder installed means every
//!    instrumentation point reduces to one relaxed atomic load
//!    ([`enabled`]) and an immediate return — no clock read, no
//!    allocation, no lock. E14 in EXPERIMENTS.md keeps this honest with
//!    an A/B benchmark.
//! 2. **Determinism-compatible.** The engine guarantees bit-identical
//!    results at any thread count; the trace layer must not break that,
//!    and its own output must be reproducible: spans carry a per-thread
//!    begin sequence and nesting depth, so a [`SpanTree`] rebuilt from
//!    any interleaving is deterministic per thread, and
//!    [`SpanTree::canonicalize`] erases worker scheduling entirely.
//!    Timestamps are monotonic ([`std::time::Instant`]-based) and kept
//!    out of the tree's identity.
//! 3. **`std::thread::scope`-safe.** Matcher morsel workers are scoped
//!    threads; each gets its own ordinal and sequence from thread-local
//!    state, and completed spans are delivered straight to the installed
//!    [`Recorder`], so nothing is lost when a scoped thread exits.
//!
//! Alongside spans there are **two** metrics registries:
//!
//! * the recorder-gated registry ([`counter_add`], [`gauge_set`],
//!   [`observe_ns`]) — mutation is a no-op unless a recorder is
//!   installed, preserving the zero-cost-off contract for
//!   profiling-grade metrics;
//! * the **always-on live registry** ([`LiveCounter`], [`LiveGauge`],
//!   [`LiveHistogram`]) — lock-light atomics (counters are sharded by
//!   thread ordinal) that record whether or not tracing is installed,
//!   so a production server can answer "what are you doing right now"
//!   without paying for span capture. E19 in EXPERIMENTS.md bounds the
//!   cost at ≤2% of wire throughput; [`set_live_metrics`] is the kill
//!   switch that makes the A/B measurable.
//!
//! Both registries snapshot into the same JSON shape
//! ([`MetricsSnapshot::to_json`]), and two renderers cover spans: an
//! indented text report and Chrome `trace_event` JSON loadable in
//! `chrome://tracing` / Perfetto ([`chrome_trace_json`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---- global recorder registry ------------------------------------------

/// Fast-path gate: true iff a recorder is installed. Every
/// instrumentation point checks this single relaxed load before doing
/// any other work.
static ENABLED: AtomicBool = AtomicBool::new(false);

static RECORDER: Mutex<Option<Arc<dyn Recorder>>> = Mutex::new(None);

/// True iff a [`Recorder`] is installed. Instrumentation points with a
/// dynamically built span name (or any other per-span allocation)
/// should check this before constructing arguments.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install `recorder` as the process-wide span sink, enabling all
/// instrumentation. Replaces (and returns) any previous recorder.
pub fn install(recorder: Arc<dyn Recorder>) -> Option<Arc<dyn Recorder>> {
    swap_recorder(Some(recorder))
}

/// Remove the installed recorder, disabling all instrumentation, and
/// return it.
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    swap_recorder(None)
}

/// Replace the installed recorder wholesale (used by profiled execution
/// to splice a private collector in and out). `None` disables tracing.
pub fn swap_recorder(next: Option<Arc<dyn Recorder>>) -> Option<Arc<dyn Recorder>> {
    let mut slot = RECORDER.lock().expect("recorder registry poisoned");
    ENABLED.store(next.is_some(), Ordering::Relaxed);
    std::mem::replace(&mut slot, next)
}

/// The currently installed recorder, if any.
pub fn current_recorder() -> Option<Arc<dyn Recorder>> {
    RECORDER.lock().expect("recorder registry poisoned").clone()
}

/// Monotonic nanoseconds since the first trace event of the process.
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

// ---- per-thread bookkeeping --------------------------------------------

static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Small dense ordinal for this thread, assigned on first use.
    static THREAD_ORD: Cell<u64> = const { Cell::new(u64::MAX) };
    /// Per-thread begin-sequence counter: spans sorted by it recover
    /// the order in which they were *opened* on the thread.
    static NEXT_SEQ: Cell<u64> = const { Cell::new(0) };
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn thread_ord() -> u64 {
    THREAD_ORD.with(|cell| {
        let current = cell.get();
        if current != u64::MAX {
            return current;
        }
        let assigned = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
        cell.set(assigned);
        assigned
    })
}

// ---- spans --------------------------------------------------------------

/// A typed span/metric argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned count.
    UInt(u64),
    /// A signed quantity.
    Int(i64),
    /// A floating-point quantity.
    Float(f64),
    /// A short text value.
    Text(String),
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::UInt(v) => write!(f, "{v}"),
            ArgValue::Int(v) => write!(f, "{v}"),
            ArgValue::Float(v) => write!(f, "{v}"),
            ArgValue::Text(v) => f.write_str(v),
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::UInt(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::UInt(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::UInt(u64::from(v))
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::UInt(u64::from(v))
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Text(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Text(v)
    }
}

/// One completed span: a named, categorized interval with arguments and
/// enough ordering metadata (`thread`, `seq`, `depth`) to rebuild the
/// per-thread nesting deterministically.
#[derive(Debug, Clone)]
pub struct Span {
    /// Coarse category (`match`, `op`, `method`, `store`, `vfs`, ...).
    pub cat: &'static str,
    /// Span name, e.g. `match/morsel` or `method/Update`.
    pub name: String,
    /// Monotonic start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Dense per-process thread ordinal (not an OS thread id).
    pub thread: u64,
    /// Per-thread begin sequence: sorting a thread's spans by `seq`
    /// recovers the order in which they were opened.
    pub seq: u64,
    /// Nesting depth at open time on the owning thread.
    pub depth: u32,
    /// Key/value arguments attached while the span was open.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A sink for completed spans. Implementations must be cheap and
/// thread-safe: `record` is called from matcher worker threads.
pub trait Recorder: Send + Sync {
    /// Accept one completed span.
    fn record(&self, span: Span);
}

struct ActiveSpan {
    cat: &'static str,
    name: String,
    start_ns: u64,
    thread: u64,
    seq: u64,
    depth: u32,
    args: Vec<(&'static str, ArgValue)>,
}

/// RAII guard for an open span; records it on drop. Obtain via
/// [`span`]. A guard created while tracing is disabled is inert.
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// An inert guard. Useful at instrumentation points that build the
    /// span name dynamically and gate the allocation on [`enabled`]:
    ///
    /// ```
    /// let _span = if good_trace::enabled() {
    ///     good_trace::span("method", &format!("method/{}", "Update"))
    /// } else {
    ///     good_trace::SpanGuard::disabled()
    /// };
    /// ```
    pub const fn disabled() -> Self {
        SpanGuard(None)
    }

    /// True if this guard will record a span on drop.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Attach an argument. No-op on an inert guard.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(active) = &mut self.0 {
            active.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        DEPTH.with(|depth| depth.set(depth.get().saturating_sub(1)));
        let dur_ns = now_ns().saturating_sub(active.start_ns);
        // The recorder may have been swapped out while the span was
        // open (profiled sections do this); deliver to whatever is
        // installed now, or drop silently.
        if let Some(recorder) = current_recorder() {
            recorder.record(Span {
                cat: active.cat,
                name: active.name,
                start_ns: active.start_ns,
                dur_ns,
                thread: active.thread,
                seq: active.seq,
                depth: active.depth,
                args: active.args,
            });
        }
    }
}

/// Open a span. Returns an inert guard (no clock read, no allocation)
/// when no recorder is installed.
pub fn span(cat: &'static str, name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    let thread = thread_ord();
    let seq = NEXT_SEQ.with(|cell| {
        let seq = cell.get();
        cell.set(seq + 1);
        seq
    });
    let depth = DEPTH.with(|cell| {
        let depth = cell.get();
        cell.set(depth + 1);
        depth
    });
    SpanGuard(Some(ActiveSpan {
        cat,
        name: name.to_string(),
        start_ns: now_ns(),
        thread,
        seq,
        depth,
        args: Vec::new(),
    }))
}

// ---- collector -----------------------------------------------------------

/// The standard in-memory [`Recorder`]: accumulates spans under a
/// mutex. Safe to share with scoped worker threads.
#[derive(Default)]
pub struct Collector {
    spans: Mutex<Vec<Span>>,
}

impl Collector {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Number of spans collected so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("collector poisoned").len()
    }

    /// True when no spans have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain all collected spans, sorted by `(thread, seq)` — i.e. by
    /// per-thread open order, threads in first-use order.
    pub fn take(&self) -> Vec<Span> {
        let mut spans = std::mem::take(&mut *self.spans.lock().expect("collector poisoned"));
        spans.sort_by_key(|s| (s.thread, s.seq));
        spans
    }

    /// Copy of the collected spans (same order as [`Collector::take`])
    /// without draining.
    pub fn snapshot(&self) -> Vec<Span> {
        let mut spans = self.spans.lock().expect("collector poisoned").clone();
        spans.sort_by_key(|s| (s.thread, s.seq));
        spans
    }
}

impl Recorder for Collector {
    fn record(&self, span: Span) {
        self.spans.lock().expect("collector poisoned").push(span);
    }
}

/// A recorder that forwards every span to two sinks — used to capture a
/// profiled section privately while an outer recorder keeps observing.
pub struct Tee(
    /// First sink.
    pub Arc<dyn Recorder>,
    /// Second sink.
    pub Arc<dyn Recorder>,
);

impl Recorder for Tee {
    fn record(&self, span: Span) {
        self.0.record(span.clone());
        self.1.record(span);
    }
}

// ---- span trees ----------------------------------------------------------

/// One node of a reconstructed span tree. Identity is `(cat, name,
/// args, children)` — timestamps and durations are carried for display
/// but excluded from [`SpanTree::render`] so trees of deterministic
/// workloads compare byte-for-byte across runs.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span category.
    pub cat: &'static str,
    /// Span name.
    pub name: String,
    /// Stringified arguments, in attachment order.
    pub args: Vec<(String, String)>,
    /// Wall-clock duration (display only; not part of tree identity).
    pub dur_ns: u64,
    /// Child spans, in per-thread open order (or canonical order after
    /// [`SpanTree::canonicalize`]).
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A canonical content key: the rendered subtree. Used to sort
    /// siblings scheduling-independently.
    fn key(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0, false);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize, with_times: bool) {
        for _ in 0..indent {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        out.push_str("  [");
        out.push_str(self.cat);
        out.push(']');
        for (key, value) in &self.args {
            out.push(' ');
            out.push_str(key);
            out.push('=');
            out.push_str(value);
        }
        if with_times {
            out.push_str(&format!("  ({})", format_ns(self.dur_ns)));
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, indent + 1, with_times);
        }
    }
}

/// A forest of spans reconstructed from a flat capture.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// Root spans (depth 0 on their owning thread), thread by thread.
    pub roots: Vec<SpanNode>,
}

impl SpanTree {
    /// Rebuild the forest from captured spans. Within a thread, spans
    /// are ordered by begin sequence and nested by recorded depth —
    /// both deterministic for a deterministic workload. Spans opened on
    /// worker threads (whose stacks are independent) appear as roots.
    pub fn build(spans: &[Span]) -> SpanTree {
        let mut sorted: Vec<&Span> = spans.iter().collect();
        sorted.sort_by_key(|s| (s.thread, s.seq));
        let mut roots: Vec<SpanNode> = Vec::new();
        // Stack of (depth, index-path) per thread; rebuilt on thread switch.
        let mut stack: Vec<(u32, usize)> = Vec::new();
        let mut current_thread = None;
        for span in sorted {
            if current_thread != Some(span.thread) {
                current_thread = Some(span.thread);
                stack.clear();
            }
            while let Some((depth, _)) = stack.last() {
                if *depth >= span.depth {
                    stack.pop();
                } else {
                    break;
                }
            }
            let node = SpanNode {
                cat: span.cat,
                name: span.name.clone(),
                args: span
                    .args
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                dur_ns: span.dur_ns,
                children: Vec::new(),
            };
            // Walk the index path to the insertion point.
            let siblings = {
                let mut level: &mut Vec<SpanNode> = &mut roots;
                for (_, index) in &stack {
                    level = &mut level[*index].children;
                }
                level
            };
            siblings.push(node);
            stack.push((span.depth, siblings.len() - 1));
        }
        SpanTree { roots }
    }

    /// Sort sibling subtrees (recursively, roots included) by content,
    /// erasing thread-scheduling order. Two runs of the same
    /// deterministic workload render identically after this, whatever
    /// the thread count.
    pub fn canonicalize(&mut self) {
        fn sort(nodes: &mut [SpanNode]) {
            for node in nodes.iter_mut() {
                sort(&mut node.children);
            }
            nodes.sort_by_cached_key(SpanNode::key);
        }
        sort(&mut self.roots);
    }

    /// Indented text rendering *without* timestamps or durations: the
    /// deterministic identity of the tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for root in &self.roots {
            root.render_into(&mut out, 0, false);
        }
        out
    }

    /// Indented text rendering with per-span durations (for PROFILE
    /// reports; not deterministic across runs).
    pub fn render_with_times(&self) -> String {
        let mut out = String::new();
        for root in &self.roots {
            root.render_into(&mut out, 0, true);
        }
        out
    }
}

/// Human formatting for a nanosecond duration.
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

// ---- Chrome trace_event output ------------------------------------------

fn escape_json(text: &str, out: &mut String) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render captured spans as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object form), loadable in `chrome://tracing`
/// and Perfetto. Every span becomes a complete (`"ph":"X"`) event;
/// timestamps are microseconds relative to the process trace epoch;
/// `tid` is the dense thread ordinal. Argument values are emitted as
/// strings so the vendored minimal JSON reader can round-trip them.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut sorted: Vec<&Span> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.thread, s.seq));
    let mut out = String::from("{\"traceEvents\":[");
    for (index, span) in sorted.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&span.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape_json(span.cat, &mut out);
        out.push_str("\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&span.thread.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&format!(
            "{}.{:03}",
            span.start_ns / 1000,
            span.start_ns % 1000
        ));
        out.push_str(",\"dur\":");
        out.push_str(&format!("{}.{:03}", span.dur_ns / 1000, span.dur_ns % 1000));
        out.push_str(",\"args\":{");
        for (arg_index, (key, value)) in span.args.iter().enumerate() {
            if arg_index > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(key, &mut out);
            out.push_str("\":\"");
            escape_json(&value.to_string(), &mut out);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

// ---- metrics registry ----------------------------------------------------

/// Power-of-two histogram: bucket `i` counts observations in
/// `[2^(i-1), 2^i)` (bucket 0 counts zeros).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        let index = (64 - value.leading_zeros()) as usize;
        self.buckets[index] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, count)| **count > 0)
            .map(|(index, count)| (bucket_upper(index), *count))
            .collect()
    }

    /// Copy into the registry-independent snapshot form.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            max: self.max,
            buckets: self.nonzero_buckets(),
        }
    }
}

/// Inclusive ("le") upper bound of power-of-two bucket `index`: bucket
/// 0 holds only zeros; bucket i holds `[2^(i-1), 2^i)`.
fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(i64),
    Histogram(Box<Histogram>),
}

/// The process-wide metrics registry. All mutation entry points are
/// no-ops while tracing is disabled, preserving the zero-cost-off
/// contract.
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<BTreeMap<&'static str, Metric>>,
}

fn registry() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(Metrics::default)
}

/// Add `delta` to the counter `name` (no-op unless tracing is enabled).
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut inner = registry().inner.lock().expect("metrics poisoned");
    if let Metric::Counter(total) = inner.entry(name).or_insert(Metric::Counter(0)) {
        *total += delta;
    }
}

/// Set the gauge `name` (no-op unless tracing is enabled).
pub fn gauge_set(name: &'static str, value: i64) {
    if !enabled() {
        return;
    }
    let mut inner = registry().inner.lock().expect("metrics poisoned");
    inner.insert(name, Metric::Gauge(value));
}

/// Record one observation (typically a latency in nanoseconds) into the
/// power-of-two histogram `name` (no-op unless tracing is enabled).
pub fn observe_ns(name: &'static str, value: u64) {
    observe(name, value);
}

/// Record one observation of an arbitrary magnitude (row counts,
/// estimate errors, …) into the power-of-two histogram `name` (no-op
/// unless tracing is enabled). [`observe_ns`] is the
/// nanosecond-flavored alias.
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let mut inner = registry().inner.lock().expect("metrics poisoned");
    if let Metric::Histogram(histogram) = inner
        .entry(name)
        .or_insert_with(|| Metric::Histogram(Box::default()))
    {
        histogram.observe(value);
    }
}

/// Clear every metric.
pub fn metrics_reset() {
    registry().inner.lock().expect("metrics poisoned").clear();
}

/// Snapshot the recorder-gated registry into the shared form.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let inner = registry().inner.lock().expect("metrics poisoned");
    let mut snapshot = MetricsSnapshot::default();
    for (name, metric) in inner.iter() {
        match metric {
            Metric::Counter(total) => snapshot.counters.push((name.to_string(), *total)),
            Metric::Gauge(value) => snapshot.gauges.push((name.to_string(), *value)),
            Metric::Histogram(histogram) => snapshot
                .histograms
                .push((name.to_string(), histogram.snapshot())),
        }
    }
    snapshot
}

/// Snapshot the recorder-gated registry as a JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{name:{"count":..,"sum":..,"max":..,"buckets":[[le,count],..]}}}`.
pub fn metrics_snapshot_json() -> String {
    metrics_snapshot().to_json()
}

// ---- metrics snapshot (shared JSON shape) -------------------------------

/// A registry-independent histogram snapshot: total count, saturating
/// sum, max, and the non-empty `(inclusive upper bound, count)` buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)` pairs,
    /// ascending by bound.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`
    /// (0 when the histogram is empty). Power-of-two buckets make this
    /// an upper estimate within 2x of the true quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (upper, count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return (*upper).min(self.max);
            }
        }
        self.max
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A point-in-time copy of a metrics registry — either the
/// recorder-gated one ([`metrics_snapshot`]) or the always-on live one
/// ([`live_metrics_snapshot`]) — that renders to the stable JSON shape
/// consumed by the stats wire frame and the CLI.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time gauges by name.
    pub gauges: Vec<(String, i64)>,
    /// Power-of-two histograms by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Fold `other` into `self` and restore name order. Entries with
    /// the same name are kept from `self` (first writer wins).
    pub fn merge(&mut self, other: MetricsSnapshot) {
        fn fold<T>(into: &mut Vec<(String, T)>, from: Vec<(String, T)>) {
            for (name, value) in from {
                if !into.iter().any(|(existing, _)| *existing == name) {
                    into.push((name, value));
                }
            }
            into.sort_by(|a, b| a.0.cmp(&b.0));
        }
        fold(&mut self.counters, other.counters);
        fold(&mut self.gauges, other.gauges);
        fold(&mut self.histograms, other.histograms);
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(existing, _)| existing == name)
            .map(|(_, histogram)| histogram)
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(existing, _)| existing == name)
            .map(|(_, total)| *total)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(existing, _)| existing == name)
            .map(|(_, value)| *value)
    }

    /// Render as a JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{"count":..,"sum":..,"max":..,"buckets":[[le,count],..]}}}`.
    /// Names are escaped, so arbitrary strings stay parseable.
    pub fn to_json(&self) -> String {
        let mut counters = String::new();
        for (index, (name, total)) in self.counters.iter().enumerate() {
            if index > 0 {
                counters.push(',');
            }
            counters.push('"');
            escape_json(name, &mut counters);
            counters.push_str(&format!("\":{total}"));
        }
        let mut gauges = String::new();
        for (index, (name, value)) in self.gauges.iter().enumerate() {
            if index > 0 {
                gauges.push(',');
            }
            gauges.push('"');
            escape_json(name, &mut gauges);
            gauges.push_str(&format!("\":{value}"));
        }
        let mut histograms = String::new();
        for (index, (name, histogram)) in self.histograms.iter().enumerate() {
            if index > 0 {
                histograms.push(',');
            }
            histograms.push('"');
            escape_json(name, &mut histograms);
            histograms.push_str(&format!(
                "\":{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                histogram.count, histogram.sum, histogram.max
            ));
            for (bucket_index, (upper, count)) in histogram.buckets.iter().enumerate() {
                if bucket_index > 0 {
                    histograms.push(',');
                }
                histograms.push_str(&format!("[{upper},{count}]"));
            }
            histograms.push_str("]}");
        }
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}"
        )
    }
}

/// Escape `text` for embedding inside a JSON string literal (quotes
/// not included). Shared by every hand-rolled JSON emitter in the
/// workspace so escaping bugs have one home.
pub fn escape_json_str(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    escape_json(text, &mut out);
    out
}

// ---- always-on live metrics ---------------------------------------------
//
// Unlike the recorder-gated registry above, these record even when no
// `Recorder` is installed: a production server needs frame counts,
// queue depth, and stage latencies at all times, not only while
// profiling. The design keeps the hot path lock-free:
//
//   * counters are sharded `AtomicU64`s (indexed by thread ordinal) so
//     concurrent connection threads never contend on one cache line;
//   * histograms are fixed arrays of atomics (pow2 buckets, same shape
//     as `Histogram`);
//   * metrics are `static`s registered lazily into a global list on
//     first touch — one mutex acquisition per metric per process, then
//     never again (a relaxed flag short-circuits).
//
// `set_live_metrics(false)` is the kill switch used by the E19 bench
// to measure the overhead A/B; the gate in CI holds it at ≤2% of E17
// pipelined throughput.

static LIVE_ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn the always-on live metrics path on or off (default: on). Only
/// the E19 overhead bench and tests should ever turn it off.
pub fn set_live_metrics(on: bool) {
    LIVE_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the live metrics path is recording.
pub fn live_metrics_enabled() -> bool {
    LIVE_ENABLED.load(Ordering::Relaxed)
}

/// Shards per [`LiveCounter`]. Eight covers the writer, the ack pumps,
/// and a handful of reader threads without false sharing mattering.
const LIVE_SHARDS: usize = 8;

/// One cache line per shard so concurrent `add`s don't ping-pong.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

enum LiveMetric {
    Counter(&'static LiveCounter),
    Gauge(&'static LiveGauge),
    Histogram(&'static LiveHistogram),
}

fn live_registry() -> &'static Mutex<Vec<LiveMetric>> {
    static LIVE_REGISTRY: OnceLock<Mutex<Vec<LiveMetric>>> = OnceLock::new();
    LIVE_REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn live_register(flag: &AtomicBool, metric: impl FnOnce() -> LiveMetric) {
    if flag.load(Ordering::Relaxed) {
        return;
    }
    let mut registry = live_registry().lock().expect("live registry poisoned");
    if !flag.load(Ordering::Relaxed) {
        registry.push(metric());
        flag.store(true, Ordering::Relaxed);
    }
}

/// A monotonically increasing counter, sharded across cache lines.
/// Declare as a `static` and call [`LiveCounter::add`] from any thread.
pub struct LiveCounter {
    name: &'static str,
    registered: AtomicBool,
    shards: [PaddedU64; LIVE_SHARDS],
}

impl LiveCounter {
    /// Const-construct (for `static` declarations).
    pub const fn new(name: &'static str) -> LiveCounter {
        LiveCounter {
            name,
            registered: AtomicBool::new(false),
            shards: [const { PaddedU64(AtomicU64::new(0)) }; LIVE_SHARDS],
        }
    }

    /// Add `delta`. Lock-free after the first call process-wide.
    pub fn add(&'static self, delta: u64) {
        if !live_metrics_enabled() {
            return;
        }
        live_register(&self.registered, || LiveMetric::Counter(self));
        let shard = thread_ord() as usize % LIVE_SHARDS;
        self.shards[shard].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current total across shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for shard in &self.shards {
            shard.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time gauge (queue depth, connection count). Declare as a
/// `static` and call [`LiveGauge::set`] / [`LiveGauge::add`].
pub struct LiveGauge {
    name: &'static str,
    registered: AtomicBool,
    value: AtomicI64,
}

impl LiveGauge {
    /// Const-construct (for `static` declarations).
    pub const fn new(name: &'static str) -> LiveGauge {
        LiveGauge {
            name,
            registered: AtomicBool::new(false),
            value: AtomicI64::new(0),
        }
    }

    /// Set the current value.
    pub fn set(&'static self, value: i64) {
        if !live_metrics_enabled() {
            return;
        }
        live_register(&self.registered, || LiveMetric::Gauge(self));
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adjust the current value by `delta` (connection open/close).
    pub fn add(&'static self, delta: i64) {
        if !live_metrics_enabled() {
            return;
        }
        live_register(&self.registered, || LiveMetric::Gauge(self));
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A power-of-two histogram of atomics: same bucket layout as
/// [`Histogram`], safe to observe into from any thread without locks.
pub struct LiveHistogram {
    name: &'static str,
    registered: AtomicBool,
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl LiveHistogram {
    /// Const-construct (for `static` declarations).
    pub const fn new(name: &'static str) -> LiveHistogram {
        LiveHistogram {
            name,
            registered: AtomicBool::new(false),
            buckets: [const { AtomicU64::new(0) }; 65],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation (typically nanoseconds).
    pub fn observe(&'static self, value: u64) {
        if !live_metrics_enabled() {
            return;
        }
        live_register(&self.registered, || LiveMetric::Histogram(self));
        let index = (64 - value.leading_zeros()) as usize;
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Copy into the registry-independent snapshot form. Concurrent
    /// `observe` calls may straddle the copy; each bucket read is
    /// itself consistent, which is all the JSON consumers need.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (index, bucket) in self.buckets.iter().enumerate() {
            let count = bucket.load(Ordering::Relaxed);
            if count > 0 {
                buckets.push((bucket_upper(index), count));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Snapshot every live metric touched so far, sorted by name.
pub fn live_metrics_snapshot() -> MetricsSnapshot {
    let registry = live_registry().lock().expect("live registry poisoned");
    let mut snapshot = MetricsSnapshot::default();
    for metric in registry.iter() {
        match metric {
            LiveMetric::Counter(counter) => snapshot
                .counters
                .push((counter.name.to_string(), counter.get())),
            LiveMetric::Gauge(gauge) => snapshot.gauges.push((gauge.name.to_string(), gauge.get())),
            LiveMetric::Histogram(histogram) => snapshot
                .histograms
                .push((histogram.name.to_string(), histogram.snapshot())),
        }
    }
    snapshot.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snapshot.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snapshot.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    snapshot
}

/// [`live_metrics_snapshot`] rendered as JSON.
pub fn live_metrics_snapshot_json() -> String {
    live_metrics_snapshot().to_json()
}

/// Zero every live metric (the metrics stay registered). For tests and
/// the E19 bench; production servers never reset.
pub fn live_metrics_reset() {
    let registry = live_registry().lock().expect("live registry poisoned");
    for metric in registry.iter() {
        match metric {
            LiveMetric::Counter(counter) => counter.reset(),
            LiveMetric::Gauge(gauge) => gauge.reset(),
            LiveMetric::Histogram(histogram) => histogram.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share the process-global recorder slot; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = lock();
        uninstall();
        let mut span = span("test", "never");
        assert!(!span.is_live());
        span.arg("k", 1u64); // no-op, no panic
    }

    #[test]
    fn spans_nest_and_merge_deterministically() {
        let _guard = lock();
        let collector = Arc::new(Collector::new());
        install(collector.clone());
        {
            let mut outer = span("test", "outer");
            outer.arg("n", 2u64);
            {
                let _a = span("test", "child-a");
            }
            {
                let _b = span("test", "child-b");
            }
        }
        uninstall();
        let spans = collector.take();
        assert_eq!(spans.len(), 3);
        let tree = SpanTree::build(&spans);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].name, "outer");
        assert_eq!(tree.roots[0].children.len(), 2);
        assert_eq!(tree.roots[0].children[0].name, "child-a");
        let rendered = tree.render();
        assert!(rendered.contains("outer  [test] n=2"), "{rendered}");
        assert!(
            !rendered.contains("ns"),
            "durations must stay out: {rendered}"
        );
    }

    #[test]
    fn scoped_worker_threads_get_their_own_roots() {
        let _guard = lock();
        let collector = Arc::new(Collector::new());
        install(collector.clone());
        {
            let _outer = span("test", "driver");
            std::thread::scope(|scope| {
                for index in 0..2 {
                    scope.spawn(move || {
                        let mut worker = span("test", "worker");
                        worker.arg("chunk", index as u64);
                    });
                }
            });
        }
        uninstall();
        let spans = collector.take();
        assert_eq!(spans.len(), 3);
        let mut tree = SpanTree::build(&spans);
        // Worker spans are roots of their own threads; the driver span
        // has no children.
        assert_eq!(tree.roots.len(), 3);
        tree.canonicalize();
        let rendered = tree.render();
        assert!(rendered.contains("chunk=0") && rendered.contains("chunk=1"));
    }

    #[test]
    fn canonicalize_erases_sibling_order() {
        let make = |first: &str, second: &str| {
            let spans = vec![
                Span {
                    cat: "t",
                    name: first.into(),
                    start_ns: 0,
                    dur_ns: 1,
                    thread: 0,
                    seq: 0,
                    depth: 0,
                    args: vec![],
                },
                Span {
                    cat: "t",
                    name: second.into(),
                    start_ns: 1,
                    dur_ns: 1,
                    thread: 1,
                    seq: 0,
                    depth: 0,
                    args: vec![],
                },
            ];
            let mut tree = SpanTree::build(&spans);
            tree.canonicalize();
            tree.render()
        };
        assert_eq!(make("a", "b"), make("b", "a"));
    }

    #[test]
    fn chrome_json_shape() {
        let spans = vec![Span {
            cat: "match",
            name: "match/find".into(),
            start_ns: 1_234_567,
            dur_ns: 89_012,
            thread: 0,
            seq: 0,
            depth: 0,
            args: vec![("matchings", ArgValue::UInt(3))],
        }];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ts\":1234.567"), "{json}");
        assert!(json.contains("\"matchings\":\"3\""), "{json}");
    }

    #[test]
    fn metrics_roundtrip() {
        let _guard = lock();
        let collector = Arc::new(Collector::new());
        install(collector);
        metrics_reset();
        counter_add("test.count", 2);
        counter_add("test.count", 3);
        gauge_set("test.gauge", -7);
        observe_ns("test.lat", 0);
        observe_ns("test.lat", 1000);
        observe_ns("test.lat", 1500);
        let json = metrics_snapshot_json();
        uninstall();
        metrics_reset();
        assert!(json.contains("\"test.count\":5"), "{json}");
        assert!(json.contains("\"test.gauge\":-7"), "{json}");
        assert!(json.contains("\"count\":3"), "{json}");
        // 1000 lands in [512, 1024) (le 1023), 1500 in [1024, 2048).
        assert!(json.contains("[1023,1]"), "{json}");
        assert!(json.contains("[2047,1]"), "{json}");
        assert!(json.contains("[0,1]"), "{json}");
    }

    #[test]
    fn metrics_are_noops_when_disabled() {
        let _guard = lock();
        uninstall();
        metrics_reset();
        counter_add("test.off", 1);
        observe_ns("test.off.lat", 5);
        gauge_set("test.off.gauge", 5);
        assert_eq!(
            metrics_snapshot_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn histogram_bucket_bounds() {
        let mut histogram = Histogram::default();
        histogram.observe(0);
        histogram.observe(1);
        histogram.observe(2);
        histogram.observe(u64::MAX);
        let buckets = histogram.nonzero_buckets();
        assert_eq!(buckets[0], (0, 1)); // zeros land in bucket 0 (le 0)
        assert_eq!(buckets[1], (1, 1)); // [1, 2) → le 1
        assert_eq!(buckets[2], (3, 1)); // [2, 4) → le 3
        assert_eq!(buckets[3], (u64::MAX, 1));
        assert_eq!(histogram.count(), 4);
    }

    #[test]
    fn tee_duplicates_spans() {
        let _guard = lock();
        let a = Arc::new(Collector::new());
        let b = Arc::new(Collector::new());
        install(Arc::new(Tee(a.clone(), b.clone())));
        {
            let _span = span("test", "tee");
        }
        uninstall();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn live_metrics_record_without_a_recorder() {
        let _guard = lock();
        uninstall(); // explicitly no recorder: live metrics still record
        static HITS: LiveCounter = LiveCounter::new("test.live.hits");
        static DEPTH_GAUGE: LiveGauge = LiveGauge::new("test.live.depth");
        static LAT: LiveHistogram = LiveHistogram::new("test.live.lat");
        live_metrics_reset();
        HITS.add(2);
        HITS.incr();
        DEPTH_GAUGE.set(10);
        DEPTH_GAUGE.add(-3);
        LAT.observe(1000);
        LAT.observe(1500);
        assert_eq!(HITS.get(), 3);
        assert_eq!(DEPTH_GAUGE.get(), 7);
        let snapshot = live_metrics_snapshot();
        assert_eq!(snapshot.counter("test.live.hits"), Some(3));
        assert_eq!(snapshot.gauge("test.live.depth"), Some(7));
        let lat = snapshot.histogram("test.live.lat").expect("lat registered");
        assert_eq!(lat.count, 2);
        assert_eq!(lat.max, 1500);
        assert_eq!(lat.sum, 2500);
        let json = live_metrics_snapshot_json();
        assert!(json.contains("\"test.live.hits\":3"), "{json}");
        live_metrics_reset();
        assert_eq!(HITS.get(), 0);
        // Reset keeps registration: the name still appears, zeroed.
        assert_eq!(live_metrics_snapshot().counter("test.live.hits"), Some(0));
    }

    #[test]
    fn live_metrics_kill_switch() {
        let _guard = lock();
        static OFF_HITS: LiveCounter = LiveCounter::new("test.live.off");
        live_metrics_reset();
        set_live_metrics(false);
        OFF_HITS.add(5);
        set_live_metrics(true);
        assert_eq!(OFF_HITS.get(), 0);
        OFF_HITS.add(5);
        assert_eq!(OFF_HITS.get(), 5);
        live_metrics_reset();
    }

    #[test]
    fn live_counter_shards_sum_across_threads() {
        let _guard = lock();
        static SHARDED: LiveCounter = LiveCounter::new("test.live.sharded");
        live_metrics_reset();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        SHARDED.incr();
                    }
                });
            }
        });
        assert_eq!(SHARDED.get(), 8000);
        live_metrics_reset();
    }

    #[test]
    fn histogram_snapshot_quantiles() {
        let mut histogram = Histogram::default();
        for _ in 0..90 {
            histogram.observe(100); // le 127
        }
        for _ in 0..10 {
            histogram.observe(10_000); // le 16383
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.quantile(0.5), 127);
        assert_eq!(snapshot.quantile(0.99), 10_000); // capped at max
        assert_eq!(snapshot.quantile(1.0), 10_000);
        assert_eq!(snapshot.mean(), (90 * 100 + 10 * 10_000) / 100);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn metrics_snapshot_merge_prefers_first() {
        let mut base = MetricsSnapshot {
            counters: vec![("b".into(), 1), ("a".into(), 2)],
            ..Default::default()
        };
        base.merge(MetricsSnapshot {
            counters: vec![("a".into(), 99), ("c".into(), 3)],
            ..Default::default()
        });
        assert_eq!(
            base.counters,
            vec![("a".into(), 2), ("b".into(), 1), ("c".into(), 3)]
        );
    }

    #[test]
    fn escape_json_str_handles_controls() {
        assert_eq!(escape_json_str("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json_str("\u{1}"), "\\u0001");
    }
}
