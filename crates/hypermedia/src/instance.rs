//! The hyper-media object base instance of Figures 2–3.
//!
//! The instance contains:
//!
//! * a *Music History* document (created Jan 12, modified Jan 14,
//!   comment "Author: Jones") linking to *Rock*, *Classical Music* and
//!   *Jazz* documents;
//! * two versions of the Rock document — the old one created Jan 12,
//!   the new one created Jan 14 — connected by a `Version` node; both
//!   link to *The Doors*, and the new version additionally links to
//!   *Pinkfloyd*;
//! * a `Reference` node recording that *The Beatles* is a reference
//!   occurring in the *Jazz* document;
//! * *Classical Music* linking to *Mozart*;
//! * the Figure 3 content: Pinkfloyd's two data items (a sound clip and
//!   a text) and The Doors' two data items (a graphic and a text), each
//!   modeled as `Info ← isa ← Data ← isa ← Sound/Text/Graphics` chains
//!   with their media attributes.
//!
//! Printable nodes are shared: the instance contains exactly one
//! `Jan 12, 1990` date node, as the paper stresses ("in reality, only
//! one such node appears in the object base instance").

use crate::scheme::build_scheme;
use good_core::instance::Instance;
use good_core::value::Value;
use good_graph::NodeId;

/// Handles to the named nodes of Figures 2–3, for tests and figures.
#[derive(Debug, Clone)]
pub struct InstanceHandles {
    /// The Music History info node.
    pub music_history: NodeId,
    /// The *new* Rock version (created Jan 14) — the node the Figure 4
    /// pattern matches.
    pub rock_new: NodeId,
    /// The *old* Rock version (created Jan 12).
    pub rock_old: NodeId,
    /// The Version node connecting the two Rock versions.
    pub version: NodeId,
    /// The Classical Music info node.
    pub classical: NodeId,
    /// The Jazz info node.
    pub jazz: NodeId,
    /// The Doors info node (marked ② in Figure 2).
    pub doors: NodeId,
    /// The Pinkfloyd info node (marked ① in Figure 2).
    pub pinkfloyd: NodeId,
    /// The Beatles info node.
    pub beatles: NodeId,
    /// The Mozart info node.
    pub mozart: NodeId,
    /// The Reference node (Beatles in Jazz).
    pub reference: NodeId,
    /// Pinkfloyd's two content infos (sound, text), per Figure 3.
    pub pinkfloyd_contents: [NodeId; 2],
    /// The Doors' two content infos (graphics, text), per Figure 3.
    pub doors_contents: [NodeId; 2],
}

/// Build the Figures 2–3 instance. Returns the instance plus handles to
/// its named nodes.
pub fn build_instance() -> (Instance, InstanceHandles) {
    let mut db = Instance::new(build_scheme());
    let jan12 = Value::date(1990, 1, 12);
    let jan14 = Value::date(1990, 1, 14);

    let named_info = |db: &mut Instance, name: &str, created: &Value| -> NodeId {
        let info = db.add_object("Info").expect("Info in scheme");
        let name_node = db.add_printable("String", name).expect("String in scheme");
        db.add_edge(info, "name", name_node).expect("name edge");
        let date_node = db
            .add_printable("Date", created.clone())
            .expect("Date in scheme");
        db.add_edge(info, "created", date_node)
            .expect("created edge");
        info
    };

    // ---- Figure 2: the document graph -----------------------------------
    let music_history = named_info(&mut db, "Music History", &jan12);
    let modified = db.add_printable("Date", jan14.clone()).expect("date");
    db.add_edge(music_history, "modified", modified)
        .expect("modified edge");
    let comment = db.add_object("Comment").expect("Comment");
    let comment_text = db.add_printable("String", "Author: Jones").expect("string");
    db.add_edge(comment, "is", comment_text).expect("is edge");
    db.add_edge(music_history, "comment", comment)
        .expect("comment edge");

    let rock_new = named_info(&mut db, "Rock", &jan14);
    // The old Rock version shares the printable name node "Rock".
    let rock_old = {
        let info = db.add_object("Info").expect("Info");
        let name_node = db.add_printable("String", "Rock").expect("shared name");
        db.add_edge(info, "name", name_node).expect("name edge");
        let date_node = db
            .add_printable("Date", jan12.clone())
            .expect("shared date");
        db.add_edge(info, "created", date_node)
            .expect("created edge");
        info
    };
    let version = db.add_object("Version").expect("Version");
    db.add_edge(version, "new", rock_new).expect("new edge");
    db.add_edge(version, "old", rock_old).expect("old edge");

    let classical = named_info(&mut db, "Classical Music", &jan12);
    let jazz = named_info(&mut db, "Jazz", &jan12);
    let doors = named_info(&mut db, "The Doors", &jan12);
    let pinkfloyd = named_info(&mut db, "Pinkfloyd", &jan14);
    let beatles = named_info(&mut db, "The Beatles", &jan12);
    let mozart = named_info(&mut db, "Mozart", &jan12);

    db.add_edge(music_history, "links-to", rock_new)
        .expect("link");
    db.add_edge(music_history, "links-to", classical)
        .expect("link");
    db.add_edge(music_history, "links-to", jazz).expect("link");
    db.add_edge(rock_new, "links-to", doors).expect("link");
    db.add_edge(rock_new, "links-to", pinkfloyd).expect("link");
    // Both Rock versions link to The Doors and Pinkfloyd — Figure 8
    // needs four matchings ("there are four matchings of the source
    // pattern"), i.e. each of the two Rock versions links to two infos
    // with creation dates.
    db.add_edge(rock_old, "links-to", doors).expect("link");
    db.add_edge(rock_old, "links-to", pinkfloyd).expect("link");
    db.add_edge(classical, "links-to", mozart).expect("link");

    // The Beatles is a reference occurring in the Jazz document.
    let reference = db.add_object("Reference").expect("Reference");
    db.add_edge(reference, "isa", beatles).expect("isa edge");
    db.add_edge(reference, "in", jazz).expect("in edge");

    // ---- Figure 3: content of Pinkfloyd (①) and The Doors (②) ----------
    // Each content item: Info ← isa ← Data ← isa ← <medium>.
    let content_info = |db: &mut Instance, medium: &str| -> (NodeId, NodeId) {
        let info = db.add_object("Info").expect("Info");
        let data = db.add_object("Data").expect("Data");
        db.add_edge(data, "isa", info).expect("isa");
        let media = db.add_object(medium).expect("medium class");
        db.add_edge(media, "isa", data).expect("isa");
        (info, media)
    };

    // Pinkfloyd: a sound clip and a text.
    let (floyd_sound_info, floyd_sound) = content_info(&mut db, "Sound");
    let freq = db.add_printable("Number", 1000i64).expect("number");
    db.add_edge(floyd_sound, "frequency", freq)
        .expect("frequency");
    let stream = db
        .add_printable("Bitstream", Value::bytes(vec![0b0100_1101, 0b0111_0000]))
        .expect("bitstream");
    db.add_edge(floyd_sound, "data", stream).expect("data");

    let (floyd_text_info, floyd_text) = content_info(&mut db, "Text");
    let words = db.add_printable("Number", 15_000i64).expect("number");
    db.add_edge(floyd_text, "#words", words).expect("#words");
    let long = db
        .add_printable("Longstring", "Pinkfloyd was created…")
        .expect("longstring");
    db.add_edge(floyd_text, "data", long).expect("data");

    db.add_edge(pinkfloyd, "links-to", floyd_sound_info)
        .expect("link");
    db.add_edge(pinkfloyd, "links-to", floyd_text_info)
        .expect("link");

    // The Doors: a graphic and a text.
    let (doors_gfx_info, doors_gfx) = content_info(&mut db, "Graphics");
    let width = db.add_printable("Number", 2000i64).expect("number");
    let height = db.add_printable("Number", 64i64).expect("number");
    db.add_edge(doors_gfx, "width", width).expect("width");
    db.add_edge(doors_gfx, "height", height).expect("height");
    let bitmap = db
        .add_printable("Bitmap", Value::bytes(vec![0b0101_1000, 0b1000_0000]))
        .expect("bitmap");
    db.add_edge(doors_gfx, "data", bitmap).expect("data");

    let (doors_text_info, doors_text) = content_info(&mut db, "Text");
    let doors_words = db.add_printable("Number", 1500i64).expect("number");
    db.add_edge(doors_text, "#words", doors_words)
        .expect("#words");
    let doors_long = db
        .add_printable("Longstring", "The Doors are a…")
        .expect("longstring");
    db.add_edge(doors_text, "data", doors_long).expect("data");

    db.add_edge(doors, "links-to", doors_gfx_info)
        .expect("link");
    db.add_edge(doors, "links-to", doors_text_info)
        .expect("link");

    let handles = InstanceHandles {
        music_history,
        rock_new,
        rock_old,
        version,
        classical,
        jazz,
        doors,
        pinkfloyd,
        beatles,
        mozart,
        reference,
        pinkfloyd_contents: [floyd_sound_info, floyd_text_info],
        doors_contents: [doors_gfx_info, doors_text_info],
    };
    (db, handles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use good_core::label::Label;

    #[test]
    fn instance_validates() {
        let (db, _) = build_instance();
        db.validate().unwrap();
    }

    #[test]
    fn printable_dates_are_shared() {
        // "The printable node with label Date and value Jan 12, 1990 is
        // repeated seven times [in the figure]. In reality, only one
        // such node appears."
        let (db, _) = build_instance();
        assert_eq!(db.label_count(&"Date".into()), 2); // Jan 12 and Jan 14
        let jan12 = db
            .find_printable(&"Date".into(), &Value::date(1990, 1, 12))
            .unwrap();
        // Many infos share it as created date.
        assert!(db.sources(jan12, &Label::new("created")).count() >= 6);
    }

    #[test]
    fn rock_versions_share_their_name_node() {
        let (db, h) = build_instance();
        let new_name = db.functional_target(h.rock_new, &"name".into()).unwrap();
        let old_name = db.functional_target(h.rock_old, &"name".into()).unwrap();
        assert_eq!(new_name, old_name);
        assert_eq!(db.print_value(new_name), Some(&Value::str("Rock")));
    }

    #[test]
    fn version_node_connects_old_and_new() {
        let (db, h) = build_instance();
        assert_eq!(
            db.functional_target(h.version, &"new".into()),
            Some(h.rock_new)
        );
        assert_eq!(
            db.functional_target(h.version, &"old".into()),
            Some(h.rock_old)
        );
        // Both versions preserve the Doors link.
        assert!(db.has_edge(h.rock_new, &"links-to".into(), h.doors));
        assert!(db.has_edge(h.rock_old, &"links-to".into(), h.doors));
    }

    #[test]
    fn doors_has_no_comment() {
        // "The info node with name The Doors has no comment associated
        // with it. This is a convenient way to allow for incomplete
        // information."
        let (db, h) = build_instance();
        assert!(db.functional_target(h.doors, &"comment".into()).is_none());
        assert!(db
            .functional_target(h.music_history, &"comment".into())
            .is_some());
    }

    #[test]
    fn beatles_reference_in_jazz() {
        let (db, h) = build_instance();
        assert_eq!(
            db.functional_target(h.reference, &"isa".into()),
            Some(h.beatles)
        );
        let containers: Vec<NodeId> = db.targets(h.reference, &"in".into()).collect();
        assert_eq!(containers, vec![h.jazz]);
    }

    #[test]
    fn figure3_content_chains() {
        let (db, h) = build_instance();
        // Pinkfloyd links to its two content infos.
        for content in h.pinkfloyd_contents {
            assert!(db.has_edge(h.pinkfloyd, &"links-to".into(), content));
            // Each content info has a Data node isa-ing it.
            assert_eq!(db.sources(content, &Label::new("isa")).count(), 1);
        }
        // One Sound node with frequency 1000.
        let sound = db.nodes_with_label(&"Sound".into()).next().unwrap();
        let freq = db.functional_target(sound, &"frequency".into()).unwrap();
        assert_eq!(db.print_value(freq), Some(&Value::int(1000)));
        // One Graphics node with width and height.
        let gfx = db.nodes_with_label(&"Graphics".into()).next().unwrap();
        assert!(db.functional_target(gfx, &"width".into()).is_some());
        assert!(db.functional_target(gfx, &"height".into()).is_some());
        // Two Text nodes.
        assert_eq!(db.label_count(&"Text".into()), 2);
    }

    #[test]
    fn comment_is_a_string() {
        let (db, h) = build_instance();
        let comment = db
            .functional_target(h.music_history, &"comment".into())
            .unwrap();
        let text = db.functional_target(comment, &"is".into()).unwrap();
        assert_eq!(db.print_value(text), Some(&Value::str("Author: Jones")));
    }

    #[test]
    fn instance_is_deterministic() {
        let (a, _) = build_instance();
        let (b, _) = build_instance();
        assert!(a.isomorphic_to(&b));
    }

    #[test]
    fn serde_roundtrip() {
        let (db, _) = build_instance();
        let json = serde_json::to_string(&db).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert!(back.isomorphic_to(&db));
    }
}
