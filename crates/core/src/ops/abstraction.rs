//! Abstraction (`AB`, Section 3.5).
//!
//! `AB[J, S, I, n, K, α, β]` groups objects by set equality of one
//! multivalued property: for each matching `i`, the node `i(n)` belongs
//! to the equivalence class of all nodes sharing its `β`-successor set,
//! and each class realized by some matching receives one `K`-labeled
//! set object connected to its members by `α` edges.
//!
//! We implement the formal definition's *iff* condition literally: a
//! group node `p` gets an `α` edge to **every** node `m` whose `β`-set
//! equals the class's set — with `m` ranging over nodes of `n`'s label
//! (the label restriction is forced by the instance invariant that all
//! `α`-successors of `p` carry equal labels, and by the scheme triple
//! `(K, α, λ(n))` that the minimal scheme extension introduces).
//!
//! Abstraction "is always well defined" — this operation cannot fail
//! once its inputs validate. It is the duplicate eliminator that lifts
//! the core language to the nested relational algebra (Section 4.3).

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::label::{EdgeKind, Label};
use crate::matching::find_matchings;
use crate::ops::OpReport;
use crate::pattern::Pattern;
use good_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// An abstraction operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Abstraction {
    /// The source pattern `J`.
    pub pattern: Pattern,
    /// The pattern node `n` whose images are grouped.
    pub node: NodeId,
    /// The object label `K` of the created set objects.
    pub group_label: Label,
    /// The multivalued label `α` connecting set objects to members.
    pub member_edge: Label,
    /// The multivalued label `β` whose target-set equality defines the
    /// grouping (drawn dashed in the paper's figures).
    pub key_edge: Label,
}

impl Abstraction {
    /// Construct an abstraction.
    pub fn new(
        pattern: Pattern,
        node: NodeId,
        group_label: impl Into<Label>,
        member_edge: impl Into<Label>,
        key_edge: impl Into<Label>,
    ) -> Self {
        Abstraction {
            pattern,
            node,
            group_label: group_label.into(),
            member_edge: member_edge.into(),
            key_edge: key_edge.into(),
        }
    }

    /// Apply to `db`, evolving scheme and instance.
    pub fn apply(&self, db: &mut Instance) -> Result<OpReport> {
        let positive = self
            .pattern
            .graph()
            .node(self.node)
            .map(|data| !data.negated)
            .unwrap_or(false);
        if !positive {
            return Err(GoodError::NodeNotInPattern(format!("{:?}", self.node)));
        }
        let node_label = self
            .pattern
            .node_label(self.node)
            .ok_or_else(|| GoodError::NodeNotInPattern(format!("{:?}", self.node)))?
            .clone();
        // β must be a multivalued label of the scheme.
        match db.scheme().edge_kind(&self.key_edge) {
            Some(EdgeKind::Multivalued) => {}
            Some(EdgeKind::Functional) => {
                return Err(GoodError::EdgeKindMismatch {
                    label: self.key_edge.clone(),
                    registered: EdgeKind::Functional,
                    used: EdgeKind::Multivalued,
                })
            }
            None => return Err(GoodError::UnknownEdgeLabel(self.key_edge.clone())),
        }

        let matchings = find_matchings(&self.pattern, db)?;

        // Minimal scheme extension: K ∈ OL, α ∈ MEL, (K, α, λ(n)) ∈ P.
        db.scheme_mut().add_object_label(self.group_label.clone())?;
        db.scheme_mut()
            .add_multivalued_label(self.member_edge.clone())?;
        db.scheme_mut().add_triple(
            self.group_label.clone(),
            self.member_edge.clone(),
            node_label.clone(),
        )?;

        // β-sets realized by matchings.
        let realized: BTreeSet<BTreeSet<NodeId>> = matchings
            .iter()
            .map(|m| db.target_set(m.image(self.node), &self.key_edge))
            .collect();

        // Equivalence classes: every λ(n)-labeled node with that β-set.
        let mut class_of: BTreeMap<&BTreeSet<NodeId>, Vec<NodeId>> =
            realized.iter().map(|set| (set, Vec::new())).collect();
        for candidate in db.nodes_with_label(&node_label).collect::<Vec<_>>() {
            let key = db.target_set(candidate, &self.key_edge);
            if let Some(members) = class_of.get_mut(&key) {
                members.push(candidate);
            }
        }

        // Minimality: reuse an existing K node whose α-successor set is
        // already exactly the class.
        let mut existing: BTreeMap<BTreeSet<NodeId>, NodeId> = BTreeMap::new();
        for group in db.nodes_with_label(&self.group_label).collect::<Vec<_>>() {
            existing.insert(db.target_set(group, &self.member_edge), group);
        }

        let mut report = OpReport {
            matchings: matchings.len(),
            ..OpReport::default()
        };
        for (_, members) in class_of {
            let member_set: BTreeSet<NodeId> = members.iter().copied().collect();
            if existing.contains_key(&member_set) {
                continue;
            }
            let group = db.add_object(self.group_label.clone())?;
            for member in &member_set {
                db.add_edge(group, self.member_edge.clone(), *member)?;
                report.edges_added += 1;
            }
            existing.insert(member_set, group);
            report.created_nodes.push(group);
        }
        db.debug_assert_indexes();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{Scheme, SchemeBuilder};
    use crate::value::ValueType;

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .object("Version")
            .printable("String", ValueType::Str)
            .functional("Info", "name", "String")
            .functional("Version", "old", "Info")
            .functional("Version", "new", "Info")
            .multivalued("Info", "links-to", "Info")
            .build()
    }

    /// The Figure 17 shape: four versioned infos; the first two link to
    /// the same pair of targets, the last two to distinct sets.
    fn versions_instance() -> (Instance, Vec<NodeId>) {
        let mut db = Instance::new(scheme());
        let targets: Vec<NodeId> = (0..4).map(|_| db.add_object("Info").unwrap()).collect();
        let mut versioned = Vec::new();
        // info0 and info1 both link to {t0, t1}; info2 links to {t1, t2};
        // info3 links to {t3}.
        let link_sets: [&[usize]; 4] = [&[0, 1], &[0, 1], &[1, 2], &[3]];
        for links in link_sets {
            let info = db.add_object("Info").unwrap();
            for &t in links {
                db.add_edge(info, "links-to", targets[t]).unwrap();
            }
            versioned.push(info);
        }
        // Chain them with version nodes: v(old=info_k, new=info_{k+1}).
        for window in versioned.windows(2) {
            let version = db.add_object("Version").unwrap();
            db.add_edge(version, "old", window[0]).unwrap();
            db.add_edge(version, "new", window[1]).unwrap();
        }
        (db, versioned)
    }

    /// Figures 18–19: abstract versioned infos over their links-to sets.
    fn figure18() -> Abstraction {
        let mut p = Pattern::new();
        let version = p.node("Version");
        let info = p.node("Info");
        p.edge(version, "old", info);
        Abstraction::new(p, info, "Same-Info", "contains", "links-to")
    }

    #[test]
    fn figure18_groups_by_link_sets() {
        let (mut db, versioned) = versions_instance();
        // Also abstract over the "new" side to cover all four infos: the
        // paper uses two tagging node additions; here two abstractions
        // with the same labels compose because of group reuse.
        let report = figure18().apply(&mut db).unwrap();
        // Matched: versioned[0..3] as old sides. β-sets: {t0,t1} (twice)
        // and {t1,t2}. Two groups.
        assert_eq!(report.matchings, 3);
        assert_eq!(report.created_nodes.len(), 2);
        // The {t0,t1} group contains both info0 and info1.
        let contains = Label::new("contains");
        let group_sizes: Vec<usize> = db
            .nodes_with_label(&"Same-Info".into())
            .map(|g| db.targets(g, &contains).count())
            .collect();
        let mut sorted = group_sizes.clone();
        sorted.sort();
        assert_eq!(sorted, vec![1, 2]);
        // info0 and info1 are in the same group.
        let g0: Vec<NodeId> = db.sources(versioned[0], &contains).collect();
        let g1: Vec<NodeId> = db.sources(versioned[1], &contains).collect();
        assert_eq!(g0, g1);
        assert_eq!(g0.len(), 1);
        db.validate().unwrap();
    }

    #[test]
    fn abstraction_is_idempotent() {
        let (mut db, _) = versions_instance();
        figure18().apply(&mut db).unwrap();
        let before = (db.node_count(), db.edge_count());
        let report = figure18().apply(&mut db).unwrap();
        assert_eq!(report.created_nodes.len(), 0);
        assert_eq!((db.node_count(), db.edge_count()), before);
    }

    #[test]
    fn members_include_unmatched_nodes_with_equal_sets() {
        // The iff condition: a node with the same β-set joins the group
        // even if the pattern did not match it.
        let (mut db, _) = versions_instance();
        let targets: Vec<NodeId> = db.nodes_with_label(&"Info".into()).collect();
        // Build an extra info (never an `old` version) linking to the
        // same set as versioned[0] ({t0, t1} = first two targets).
        let extra = db.add_object("Info").unwrap();
        db.add_edge(extra, "links-to", targets[0]).unwrap();
        db.add_edge(extra, "links-to", targets[1]).unwrap();
        figure18().apply(&mut db).unwrap();
        let contains = Label::new("contains");
        let groups_of_extra: Vec<NodeId> = db.sources(extra, &contains).collect();
        assert_eq!(groups_of_extra.len(), 1);
        assert_eq!(db.targets(groups_of_extra[0], &contains).count(), 3);
    }

    #[test]
    fn empty_beta_sets_group_together() {
        // Nodes with no β-edges share the empty set.
        let mut db = Instance::new(scheme());
        let a = db.add_object("Info").unwrap();
        let b = db.add_object("Info").unwrap();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let ab = Abstraction::new(p, info, "Group", "member", "links-to");
        let report = ab.apply(&mut db).unwrap();
        assert_eq!(report.created_nodes.len(), 1);
        let group = report.created_nodes[0];
        let members: BTreeSet<NodeId> = db.target_set(group, &"member".into());
        assert_eq!(members, BTreeSet::from([a, b]));
    }

    #[test]
    fn key_edge_must_be_multivalued() {
        let (mut db, _) = versions_instance();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let ab = Abstraction::new(p.clone(), info, "G", "m", "name");
        assert!(matches!(
            ab.apply(&mut db),
            Err(GoodError::EdgeKindMismatch { .. })
        ));
        let ab = Abstraction::new(p, info, "G", "m", "nope");
        assert!(matches!(
            ab.apply(&mut db),
            Err(GoodError::UnknownEdgeLabel(_))
        ));
    }

    #[test]
    fn node_must_be_in_pattern() {
        let (mut db, _) = versions_instance();
        let mut foreign = Pattern::new();
        let f = foreign.node("Info");
        let ab = Abstraction::new(Pattern::new(), f, "G", "m", "links-to");
        assert!(matches!(
            ab.apply(&mut db),
            Err(GoodError::NodeNotInPattern(_))
        ));
    }

    #[test]
    fn no_matchings_creates_no_groups() {
        let mut db = Instance::new(scheme());
        let mut p = Pattern::new();
        let version = p.node("Version");
        let info = p.node("Info");
        p.edge(version, "old", info);
        let report = Abstraction::new(p, info, "G", "m", "links-to")
            .apply(&mut db)
            .unwrap();
        assert_eq!(report.matchings, 0);
        assert!(report.created_nodes.is_empty());
        // Scheme still minimally extended.
        assert!(db.scheme().is_object_label(&"G".into()));
    }
}
