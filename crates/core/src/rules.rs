//! A rule-based layer over the basic operations (Section 5).
//!
//! "Although GOOD programs are written in a procedural way, the basic
//! operations … have a partly declarative nature. Indeed, the pattern
//! of such an operation can be seen as the (declarative) condition part
//! of a rule, while the bold or outlined part corresponds to a rule's
//! action. This simple mechanism for visualization of rules can provide
//! a basis for the development of graph-based, rule-based,
//! object-oriented database languages" — the G-Log direction (paper
//! reference 24).
//!
//! [`RuleSet`] takes that step: a set of operations interpreted as
//! rules and applied **to a fixpoint** (each round applies every rule
//! once, in order; the set saturates when a full round changes
//! nothing). Because node/edge additions are idempotent per matching
//! restriction, *additive* rule sets behave like Datalog programs:
//! saturation exists and is reached in finitely many rounds (bounded by
//! the number of derivable facts). Deletion rules make fixpoints
//! non-monotone, as in Datalog¬; the engine still detects saturation
//! and oscillating sets are caught by the fuel bound.

use crate::error::Result;
use crate::instance::Instance;
use crate::ops::OpReport;
use crate::program::{Env, Operation};
use serde::{Deserialize, Serialize};

/// A named rule: one operation interpreted as condition ⇒ action.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rule {
    /// Diagnostic name.
    pub name: String,
    /// The operation (its pattern is the condition, its bold/outlined
    /// part the action).
    pub op: Operation,
}

impl Rule {
    /// Construct a rule.
    pub fn new(name: impl Into<String>, op: Operation) -> Self {
        Rule {
            name: name.into(),
            op,
        }
    }
}

/// What a saturation run did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SaturationReport {
    /// Number of full rounds executed (including the final, quiescent
    /// one).
    pub rounds: usize,
    /// Per-rule totals across all rounds, in rule order.
    pub per_rule: Vec<(String, OpReport)>,
}

/// A set of rules with fixpoint semantics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn new() -> Self {
        RuleSet::default()
    }

    /// Append a rule.
    pub fn push(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Build from rules.
    pub fn from_rules(rules: impl IntoIterator<Item = Rule>) -> Self {
        RuleSet {
            rules: rules.into_iter().collect(),
        }
    }

    /// The rules in application order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Apply every rule once, in order. Returns true if anything
    /// changed.
    pub fn step(
        &self,
        db: &mut Instance,
        env: &mut Env,
        report: &mut SaturationReport,
    ) -> Result<bool> {
        let mut changed = false;
        for (index, rule) in self.rules.iter().enumerate() {
            let rule_report = rule.op.apply(db, env)?;
            changed |= !rule_report.created_nodes.is_empty()
                || rule_report.edges_added > 0
                || rule_report.nodes_deleted > 0
                || rule_report.edges_deleted > 0;
            if report.per_rule.len() <= index {
                report
                    .per_rule
                    .push((rule.name.clone(), OpReport::default()));
            }
            report.per_rule[index].1.absorb(&rule_report);
        }
        Ok(changed)
    }

    /// Run rounds until a full round changes nothing (saturation).
    pub fn saturate(&self, db: &mut Instance, env: &mut Env) -> Result<SaturationReport> {
        let mut report = SaturationReport::default();
        loop {
            report.rounds += 1;
            if !self.step(db, env, &mut report)? {
                return Ok(report);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GoodError;
    use crate::label::Label;
    use crate::ops::{EdgeAddition, NodeAddition, NodeDeletion};
    use crate::pattern::Pattern;
    use crate::scheme::{Scheme, SchemeBuilder};
    use good_graph::NodeId;
    use std::collections::BTreeSet;

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Person")
            .multivalued("Person", "parent", "Person")
            .multivalued("Person", "ancestor", "Person")
            .multivalued("Person", "same-gen", "Person")
            .build()
    }

    fn family() -> (Instance, Vec<NodeId>) {
        // A binary tree of depth 2: 0 -> (1, 2), 1 -> (3, 4).
        let mut db = Instance::new(scheme());
        let people: Vec<NodeId> = (0..5).map(|_| db.add_object("Person").unwrap()).collect();
        for (child, parent) in [(1, 0), (2, 0), (3, 1), (4, 1)] {
            db.add_edge(people[child], "parent", people[parent])
                .unwrap();
        }
        (db, people)
    }

    fn pairs(db: &Instance, label: &str) -> BTreeSet<(NodeId, NodeId)> {
        let label = Label::new(label);
        db.graph()
            .edges()
            .filter(|e| e.payload.label == label)
            .map(|e| (e.src, e.dst))
            .collect()
    }

    /// The classic Datalog ancestor program as two GOOD rules.
    fn ancestor_rules() -> RuleSet {
        // ancestor(x,y) :- parent(x,y).
        let mut base = Pattern::new();
        let x = base.node("Person");
        let y = base.node("Person");
        base.edge(x, "parent", y);
        let rule1 = Rule::new(
            "base",
            Operation::EdgeAdd(EdgeAddition::multivalued(base, x, "ancestor", y)),
        );
        // ancestor(x,z) :- ancestor(x,y), parent(y,z).
        let mut ind = Pattern::new();
        let x = ind.node("Person");
        let y = ind.node("Person");
        let z = ind.node("Person");
        ind.edge(x, "ancestor", y);
        ind.edge(y, "parent", z);
        let rule2 = Rule::new(
            "inductive",
            Operation::EdgeAdd(EdgeAddition::multivalued(ind, x, "ancestor", z)),
        );
        RuleSet::from_rules([rule1, rule2])
    }

    #[test]
    fn ancestor_program_saturates_to_transitive_closure() {
        let (mut db, _) = family();
        let report = ancestor_rules().saturate(&mut db, &mut Env::new()).unwrap();
        let parent = Label::new("parent");
        let expected: BTreeSet<(NodeId, NodeId)> =
            good_graph::algo::transitive_closure_by(db.graph(), |e| e.label == parent)
                .into_iter()
                .flat_map(|(src, dsts)| dsts.into_iter().map(move |dst| (src, dst)))
                .collect();
        assert_eq!(pairs(&db, "ancestor"), expected);
        assert_eq!(pairs(&db, "ancestor").len(), 6); // 4 direct + (3,0) + (4,0)
                                                     // Rules run in order within a round, so the inductive rule
                                                     // already sees the base facts: one productive round plus the
                                                     // quiescent one.
        assert_eq!(report.rounds, 2);
        db.validate().unwrap();
    }

    #[test]
    fn saturation_is_idempotent() {
        let (mut db, _) = family();
        let rules = ancestor_rules();
        rules.saturate(&mut db, &mut Env::new()).unwrap();
        let snapshot = db.clone();
        let second = rules.saturate(&mut db, &mut Env::new()).unwrap();
        assert_eq!(second.rounds, 1);
        assert!(db.isomorphic_to(&snapshot));
    }

    #[test]
    fn same_generation_program() {
        // same-gen(x,x)? GOOD edges are simple, so encode the classic
        // version without reflexivity:
        // same-gen(x,y) :- parent(x,p), parent(y,p), x != y is not
        // expressible (no inequality), so we accept x == y loops being
        // absent only because self-edges require (x,x) matchings —
        // which DO occur; the engine handles self-loops fine.
        let mut siblings = Pattern::new();
        let x = siblings.node("Person");
        let p = siblings.node("Person");
        let y = siblings.node("Person");
        siblings.edge(x, "parent", p);
        siblings.edge(y, "parent", p);
        let rule1 = Rule::new(
            "siblings",
            Operation::EdgeAdd(EdgeAddition::multivalued(siblings, x, "same-gen", y)),
        );
        // same-gen(x,y) :- parent(x,px), same-gen(px,py), parent(y,py).
        let mut up = Pattern::new();
        let x = up.node("Person");
        let px = up.node("Person");
        let py = up.node("Person");
        let y = up.node("Person");
        up.edge(x, "parent", px);
        up.edge(px, "same-gen", py);
        up.edge(y, "parent", py);
        let rule2 = Rule::new(
            "cousins",
            Operation::EdgeAdd(EdgeAddition::multivalued(up, x, "same-gen", y)),
        );
        let (mut db, people) = family();
        RuleSet::from_rules([rule1, rule2])
            .saturate(&mut db, &mut Env::new())
            .unwrap();
        let same_gen = pairs(&db, "same-gen");
        // Siblings: (1,2),(2,1),(3,4),(4,3) plus reflexive pairs for
        // everyone with a parent; cousins of 3/4 are none (2 has no
        // children). Check the interesting facts:
        assert!(same_gen.contains(&(people[1], people[2])));
        assert!(same_gen.contains(&(people[3], people[4])));
        assert!(same_gen.contains(&(people[1], people[1]))); // reflexive via shared parent
        assert!(!same_gen.contains(&(people[1], people[3]))); // different generations
        db.validate().unwrap();
    }

    #[test]
    fn stratified_negation_via_crossed_patterns() {
        // After computing ancestors, flag exactly the roots: people
        // with NO ancestor — a crossed-pattern (Datalog¬) rule. Running
        // it after saturation of the positive rules is stratification.
        let (mut db, people) = family();
        let mut env = Env::new();
        ancestor_rules().saturate(&mut db, &mut env).unwrap();

        let mut rootless = Pattern::new();
        let person = rootless.node("Person");
        let any = rootless.negated_node("Person");
        rootless.negated_edge(person, "ancestor", any);
        let flag_roots = Rule::new(
            "roots",
            Operation::NodeAdd(NodeAddition::new(
                rootless,
                "Root",
                [(Label::new("is"), person)],
            )),
        );
        RuleSet::from_rules([flag_roots])
            .saturate(&mut db, &mut env)
            .unwrap();
        assert_eq!(db.label_count(&"Root".into()), 1);
        let root = db.nodes_with_label(&"Root".into()).next().unwrap();
        assert_eq!(db.functional_target(root, &"is".into()), Some(people[0]));
    }

    #[test]
    fn rules_with_node_additions_saturate() {
        // Mark every person with an ancestor: flag(x) :- ancestor(x,y).
        let (mut db, _) = family();
        let mut rules = ancestor_rules();
        let mut flagged = Pattern::new();
        let x = flagged.node("Person");
        let y = flagged.node("Person");
        flagged.edge(x, "ancestor", y);
        rules.push(Rule::new(
            "flag",
            Operation::NodeAdd(NodeAddition::new(flagged, "Flag", [(Label::new("of"), x)])),
        ));
        rules.saturate(&mut db, &mut Env::new()).unwrap();
        // Everyone except the root has an ancestor.
        assert_eq!(db.label_count(&"Flag".into()), 4);
    }

    #[test]
    fn oscillating_rule_sets_hit_the_fuel_bound() {
        // add(x): create a Flag for every person; del: delete all flags.
        let mut add_pattern = Pattern::new();
        let person = add_pattern.node("Person");
        let add = Rule::new(
            "add",
            Operation::NodeAdd(NodeAddition::new(
                add_pattern,
                "Flag",
                [(Label::new("of"), person)],
            )),
        );
        let mut del_pattern = Pattern::new();
        let flag = del_pattern.node("Flag");
        let del = Rule::new(
            "del",
            Operation::NodeDel(NodeDeletion::new(del_pattern, flag)),
        );
        let (mut db, _) = family();
        let mut env = Env::with_fuel(100);
        let err = RuleSet::from_rules([add, del])
            .saturate(&mut db, &mut env)
            .unwrap_err();
        assert!(matches!(err, GoodError::OutOfFuel { .. }));
    }

    #[test]
    fn per_rule_reports_accumulate() {
        let (mut db, _) = family();
        let report = ancestor_rules().saturate(&mut db, &mut Env::new()).unwrap();
        assert_eq!(report.per_rule.len(), 2);
        assert_eq!(report.per_rule[0].0, "base");
        let base_added = report.per_rule[0].1.edges_added;
        let inductive_added = report.per_rule[1].1.edges_added;
        assert_eq!(base_added, 4);
        assert_eq!(inductive_added, 2);
    }

    #[test]
    fn empty_rule_set_saturates_immediately() {
        let (mut db, _) = family();
        let report = RuleSet::new().saturate(&mut db, &mut Env::new()).unwrap();
        assert_eq!(report.rounds, 1);
    }
}
