//! Plan-rendering golden tests: `Plan::render` for the canonical
//! chain, star, and triangle patterns (profiled against fixed
//! deterministic instances) must be byte-identical to the checked-in
//! files under `tests/goldens/`.
//!
//! The goldens pin the whole explain surface — binding order, access
//! paths, cardinality estimates, actual row counts, the
//! expand-vs-generic-join decision, and the sequential/parallel
//! footer — so planner changes show up as reviewable diffs.
//!
//! When an intentional planner or rendering change lands, regenerate
//! with
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p good-bench --test plan_goldens
//! ```
//!
//! and commit the diff.

use good_bench::{chain_pattern, hub_instance, instance_of, triangle_pattern};
use good_core::prelude::*;
use std::path::PathBuf;

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

/// A star pattern: one center Info linking out to three leaf Infos.
fn star_pattern() -> Pattern {
    let mut pattern = Pattern::new();
    let center = pattern.node("Info");
    for _ in 0..3 {
        let leaf = pattern.node("Info");
        pattern.edge(center, "links-to", leaf);
    }
    pattern
}

/// The plan renderings under golden test, as `(file name, contents)`.
/// A pinned sequential config keeps the footer machine-independent
/// (the default config resolves threads from the host CPU count).
fn plan_renderings() -> Vec<(&'static str, String)> {
    let config = MatchConfig {
        threads: 1,
        parallel_threshold: 128,
    };
    let hub = hub_instance(120, 6);
    let random = instance_of(100);

    let (chain, _) = chain_pattern(3);
    let (triangle, _) = triangle_pattern();
    let star = star_pattern();

    vec![
        (
            "plan-chain.txt",
            explain_plan_profiled(&chain, &random, config)
                .expect("chain plan")
                .render(),
        ),
        (
            "plan-star.txt",
            explain_plan_profiled(&star, &random, config)
                .expect("star plan")
                .render(),
        ),
        (
            "plan-triangle.txt",
            explain_plan_profiled(&triangle, &hub, config)
                .expect("triangle plan")
                .render(),
        ),
    ]
}

#[test]
fn plan_renderings_match_the_checked_in_goldens() {
    let update = std::env::var_os("UPDATE_GOLDENS").is_some();
    let dir = goldens_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create goldens dir");
    }
    for (name, contents) in plan_renderings() {
        let path = dir.join(name);
        if update {
            std::fs::write(&path, &contents).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|err| {
            panic!(
                "missing golden {name}: {err}\n\
                 regenerate with UPDATE_GOLDENS=1 cargo test -p good-bench --test plan_goldens"
            )
        });
        assert!(
            golden == contents,
            "plan rendering {name} drifted from its golden.\n\
             If the change is intentional, regenerate with\n\
             UPDATE_GOLDENS=1 cargo test -p good-bench --test plan_goldens\n\
             --- golden ---\n{golden}\n--- current ---\n{contents}"
        );
    }
}

#[test]
fn plan_renderings_are_deterministic() {
    // Goldens are only meaningful if regeneration is byte-stable.
    assert_eq!(plan_renderings(), plan_renderings());
}

#[test]
fn triangle_golden_uses_the_generic_join() {
    // The hub instance is exactly the shape the WCOJ path exists for;
    // keep the golden honest about the strategy decision.
    let (triangle, _) = triangle_pattern();
    let choice = plan(&triangle, &hub_instance(120, 6));
    assert!(matches!(choice.strategy, JoinStrategy::GenericJoin));
}
