//! Durability tests: create/execute/reopen, crash recovery, atomicity,
//! checkpointing, and corruption detection.

use good_core::label::Label;
use good_core::ops::{EdgeAddition, NodeAddition};
use good_core::pattern::Pattern;
use good_core::program::{Operation, Program};
use good_core::scheme::{Scheme, SchemeBuilder};
use good_core::value::ValueType;
use good_store::{Store, StoreError};
use std::io::Write;
use std::path::PathBuf;

fn scheme() -> Scheme {
    SchemeBuilder::new()
        .object("Info")
        .printable("String", ValueType::Str)
        .functional("Info", "name", "String")
        .multivalued("Info", "links-to", "Info")
        .build()
}

/// A unique journal path per test.
fn journal_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "good-store-test-{name}-{}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// A program adding one Tag per Info.
fn tag_program(tag: &str) -> Program {
    let mut pattern = Pattern::new();
    let info = pattern.node("Info");
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        pattern,
        tag,
        [(Label::new(format!("{tag}-of")), info)],
    ))])
}

/// A program creating one unconditional Info seed.
fn seed_program(class: &str) -> Program {
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        Pattern::new(),
        class,
        [],
    ))])
}

#[test]
fn create_execute_reopen() {
    let path = journal_path("basic");
    {
        let mut store = Store::create(&path, scheme()).unwrap();
        store.execute(&seed_program("Info")).unwrap();
        store.execute(&tag_program("Tag")).unwrap();
        assert_eq!(store.instance().label_count(&"Tag".into()), 1);
    }
    let store = Store::open(&path).unwrap();
    assert!(!store.recovered_torn_tail());
    assert_eq!(store.instance().label_count(&"Info".into()), 1);
    assert_eq!(store.instance().label_count(&"Tag".into()), 1);
    store.instance().validate().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn replay_is_bit_identical() {
    let path = journal_path("replay");
    let before = {
        let mut store = Store::create(&path, scheme()).unwrap();
        store.execute(&seed_program("Info")).unwrap();
        store.execute(&seed_program("Info2")).unwrap();
        store.execute(&tag_program("Tag")).unwrap();
        store.instance().clone()
    };
    let store = Store::open(&path).unwrap();
    // Replay reproduces exact node ids, not just isomorphism.
    for node in before.graph().node_ids() {
        assert_eq!(store.instance().node_label(node), before.node_label(node));
    }
    assert!(store.instance().isomorphic_to(&before));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn failed_programs_change_nothing() {
    let path = journal_path("atomic");
    let mut store = Store::create(&path, scheme()).unwrap();
    store.execute(&seed_program("Info")).unwrap();
    store.execute(&seed_program("Partner")).unwrap();
    let records = store.record_count();
    let nodes = store.instance().node_count();

    // A program whose second op fails: EA with an unknown-node pattern
    // label (validation failure).
    let bad = {
        let mut pattern = Pattern::new();
        let a = pattern.node("Nope");
        let b = pattern.node("Info");
        Program::from_ops([
            Operation::NodeAdd(NodeAddition::new(Pattern::new(), "Junk", [])),
            Operation::EdgeAdd(EdgeAddition::multivalued(pattern, a, "links-to", b)),
        ])
    };
    assert!(store.execute(&bad).is_err());
    // Neither the instance nor the journal advanced — even though the
    // program's FIRST op had succeeded on the scratch copy.
    assert_eq!(store.record_count(), records);
    assert_eq!(store.instance().node_count(), nodes);
    assert_eq!(store.instance().label_count(&"Junk".into()), 0);

    // The journal on disk agrees.
    drop(store);
    let store = Store::open(&path).unwrap();
    assert_eq!(store.instance().label_count(&"Junk".into()), 0);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_tail_is_recovered_and_truncated() {
    let path = journal_path("torn");
    {
        let mut store = Store::create(&path, scheme()).unwrap();
        store.execute(&seed_program("Info")).unwrap();
    }
    // Simulate a crash mid-append: half a JSON record, no newline.
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        file.write_all(b"{\"Apply\":{\"ops\":[{\"NodeAdd\":{\"pat")
            .unwrap();
    }
    let mut store = Store::open(&path).unwrap();
    assert!(store.recovered_torn_tail());
    assert_eq!(store.instance().label_count(&"Info".into()), 1);
    // The tail was truncated: new appends produce a clean journal.
    store.execute(&seed_program("After")).unwrap();
    drop(store);
    let store = Store::open(&path).unwrap();
    assert!(!store.recovered_torn_tail());
    assert_eq!(store.instance().label_count(&"After".into()), 1);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corruption_in_the_middle_is_an_error() {
    let path = journal_path("corrupt");
    {
        let mut store = Store::create(&path, scheme()).unwrap();
        store.execute(&seed_program("Info")).unwrap();
        store.execute(&seed_program("Info2")).unwrap();
    }
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    lines[1] = "{\"Apply\": GARBAGE}";
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();
    match Store::open(&path) {
        Err(StoreError::Corrupt { line, .. }) => assert_eq!(line, 2),
        other => panic!("expected corruption error, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checkpoint_compacts_and_preserves_state_and_methods() {
    let path = journal_path("checkpoint");
    let mut store = Store::create(&path, scheme()).unwrap();
    store.execute(&seed_program("Info")).unwrap();
    for index in 0..10 {
        store.execute(&tag_program(&format!("Tag{index}"))).unwrap();
    }
    // Register a method so we can check it survives.
    let method = {
        let mut p = Pattern::new();
        let head = p.method_head("Mark");
        let recv = p.node("Info");
        p.edge(head, good_core::label::receiver_label(), recv);
        let na = NodeAddition::new(p, "Mark", [(Label::new("on"), recv)]);
        let mut interface = Scheme::new();
        interface.add_object_label("Mark").unwrap();
        interface.add_functional_label("on").unwrap();
        interface.add_object_label("Info").unwrap();
        interface.add_triple("Mark", "on", "Info").unwrap();
        good_core::method::Method::new(
            good_core::method::MethodSpec::new("Mark", "Info", []),
            vec![Operation::NodeAdd(na)],
            interface,
        )
    };
    store.register_method(method).unwrap();

    let size_before = std::fs::metadata(&path).unwrap().len();
    let snapshot = store.instance().clone();
    store.checkpoint().unwrap();
    let size_after = std::fs::metadata(&path).unwrap().len();
    assert!(size_after < size_before, "{size_after} !< {size_before}");
    assert!(store.instance().isomorphic_to(&snapshot));

    // Reopen: state and the method both survive; calling it works.
    let mut store = Store::open(&path).unwrap();
    assert!(store.instance().isomorphic_to(&snapshot));
    let call_program = {
        let mut p = Pattern::new();
        let info = p.node("Info");
        Program::from_ops([Operation::Call(good_core::method::MethodCall::new(
            "Mark",
            p,
            info,
            [],
        ))])
    };
    store.execute(&call_program).unwrap();
    assert_eq!(store.instance().label_count(&"Mark".into()), 1);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn create_refuses_to_clobber() {
    let path = journal_path("clobber");
    let _store = Store::create(&path, scheme()).unwrap();
    assert!(matches!(
        Store::create(&path, scheme()),
        Err(StoreError::Io(_))
    ));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn query_through_the_store() {
    let path = journal_path("query");
    let mut store = Store::create(&path, scheme()).unwrap();
    store.execute(&seed_program("Info")).unwrap();
    let mut pattern = Pattern::new();
    pattern.node("Info");
    assert_eq!(store.query(&pattern).unwrap().len(), 1);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn opening_a_missing_file_is_an_io_error() {
    let path = journal_path("missing");
    assert!(matches!(Store::open(&path), Err(StoreError::Io(_))));
}

#[test]
fn second_snapshot_mid_journal_is_corruption() {
    let path = journal_path("double-snapshot");
    {
        let mut store = Store::create(&path, scheme()).unwrap();
        store.execute(&seed_program("Info")).unwrap();
    }
    // Append another full snapshot record by duplicating line 1.
    let text = std::fs::read_to_string(&path).unwrap();
    let first = text.lines().next().unwrap().to_string();
    let forged = format!("{text}{first}\n{first}\n");
    std::fs::write(&path, forged).unwrap();
    assert!(matches!(
        Store::open(&path),
        Err(StoreError::Corrupt { .. })
    ));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn execute_group_commits_all_and_survives_reopen() {
    let path = journal_path("group");
    {
        let mut store = Store::create(&path, scheme()).unwrap();
        store.execute(&seed_program("Info")).unwrap();
        let programs = vec![tag_program("A"), tag_program("B"), tag_program("C")];
        let outcomes = store.execute_group(&programs).unwrap();
        assert!(outcomes.iter().all(|outcome| outcome.is_ok()));
        // snapshot + apply + 3 batch records + 1 commit marker.
        assert_eq!(store.record_count(), 6);
    }
    let store = Store::open(&path).unwrap();
    assert!(!store.recovered_torn_tail());
    assert_eq!(store.record_count(), 6);
    for tag in ["A", "B", "C"] {
        assert_eq!(store.instance().label_count(&tag.into()), 1);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn execute_group_isolates_per_program_failures() {
    let path = journal_path("group-mixed");
    let mut store = Store::create(&path, scheme()).unwrap();
    store.execute(&seed_program("Info")).unwrap();
    let bad = {
        let mut pattern = Pattern::new();
        let a = pattern.node("Nope");
        let b = pattern.node("Info");
        Program::from_ops([Operation::EdgeAdd(EdgeAddition::multivalued(
            pattern, a, "links-to", b,
        ))])
    };
    let programs = vec![tag_program("Good1"), bad, tag_program("Good2")];
    let outcomes = store.execute_group(&programs).unwrap();
    assert!(outcomes[0].is_ok());
    assert!(outcomes[1].is_err());
    assert!(outcomes[2].is_ok());
    // The two survivors form the group: 2 batch records + commit.
    assert_eq!(store.record_count(), 5);
    drop(store);
    let store = Store::open(&path).unwrap();
    assert_eq!(store.instance().label_count(&"Good1".into()), 1);
    assert_eq!(store.instance().label_count(&"Good2".into()), 1);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn empty_group_performs_no_journal_io() {
    let path = journal_path("group-empty");
    let mut store = Store::create(&path, scheme()).unwrap();
    store.execute(&seed_program("Info")).unwrap();
    let size_before = std::fs::metadata(&path).unwrap().len();
    let outcomes = store.execute_group(&[]).unwrap();
    assert!(outcomes.is_empty());
    assert_eq!(store.record_count(), 2);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), size_before);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn single_program_group_journals_as_plain_apply() {
    let path = journal_path("group-single");
    let mut store = Store::create(&path, scheme()).unwrap();
    store.execute(&seed_program("Info")).unwrap();
    store.execute_group(&[tag_program("Solo")]).unwrap();
    // Plain Apply, no batch framing: record count advances by one.
    assert_eq!(store.record_count(), 3);
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(!text.contains("BatchCommit"));
    drop(store);
    let store = Store::open(&path).unwrap();
    assert_eq!(store.instance().label_count(&"Solo".into()), 1);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn crash_between_batch_records_recovers_to_batch_boundary() {
    let path = journal_path("group-torn");
    {
        let mut store = Store::create(&path, scheme()).unwrap();
        store.execute(&seed_program("Info")).unwrap();
    }
    // Simulate a crash after the batch records landed but before the
    // commit marker: every line is intact and newline-terminated, yet
    // the group never committed.
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        for tag in ["LostA", "LostB"] {
            let line = serde_json::to_string(&good_store::LogRecord::BatchApply(tag_program(tag)))
                .unwrap();
            writeln!(file, "{line}").unwrap();
        }
    }
    let mut store = Store::open(&path).unwrap();
    assert!(store.recovered_torn_tail());
    assert_eq!(store.instance().label_count(&"LostA".into()), 0);
    assert_eq!(store.instance().label_count(&"LostB".into()), 0);
    // The truncated journal accepts clean appends again.
    store.execute(&seed_program("After")).unwrap();
    drop(store);
    let store = Store::open(&path).unwrap();
    assert!(!store.recovered_torn_tail());
    assert_eq!(store.instance().label_count(&"After".into()), 1);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn empty_journal_is_missing_snapshot() {
    let path = journal_path("empty");
    std::fs::write(&path, "").unwrap();
    assert!(matches!(
        Store::open(&path),
        Err(StoreError::MissingSnapshot)
    ));
    std::fs::remove_file(&path).unwrap();
}
