//! Object base instances.
//!
//! Section 2 of the paper: an instance over a scheme `S` is a finite
//! labeled graph `I = (N, E)` whose node labels come from `OL ∪ POL`,
//! whose printable nodes carry a print constant, and whose edges conform
//! to the triple set `P`, subject to three invariants:
//!
//! 1. all `λ`-successors of a node carry the same node label;
//! 2. functional `λ` admits at most one `λ`-successor per node;
//! 3. printable nodes are unique per (label, print value) — "if
//!    `λ(n1) = λ(n2)` is in `POL` and `print(n1) = print(n2)` then
//!    `n1 = n2`".
//!
//! [`Instance`] enforces all of this *at mutation time*, maintains label
//! and printable-value indexes for the matcher, and owns its scheme
//! because the GOOD operations evolve scheme and instance together.

use crate::error::{GoodError, Result};
use crate::label::{EdgeKind, Label, NodeKind};
use crate::persist::{PMap, PSet, SharedMap};
use crate::scheme::Scheme;
use crate::stats::InstanceStats;
use crate::value::Value;
use good_graph::dot::{DotEdge, DotNode};
use good_graph::{EdgeId, Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Payload of an instance node: its class label, plus the print constant
/// for printable nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeData {
    /// The node's class label.
    pub label: Label,
    /// The print constant (exactly for printable nodes).
    pub print: Option<Value>,
}

/// Payload of an instance edge: its edge label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeData {
    /// The edge's label.
    pub label: Label,
}

/// Per-key postings of the adjacency index: anchor node → sorted
/// neighbour set.
type Postings = PMap<NodeId, PSet<NodeId>>;

/// Batched deletions at least this large (and dooming a sizable graph
/// fraction) rebuild the adjacency index wholesale instead of
/// unindexing edge by edge.
const BULK_REBUILD_MIN: usize = 64;

/// The label-pair adjacency index: for every edge `(s, λ, t)` it
/// records postings under `(label, λ)` keys so the matcher can derive
/// candidate sets from index lookups and intersections instead of
/// scanning whole label extents or edge lists.
///
/// Four views are maintained (all sets sorted for determinism):
///
/// * `sources[(λ(s), λ)][t]` — the `λ(s)`-labeled sources reaching `t`
///   via `λ` (candidates for a pattern node whose out-edge target is
///   already bound);
/// * `targets[(λ(t), λ)][s]` — the `λ(t)`-labeled targets `s` reaches
///   via `λ` (the symmetric in-edge case);
/// * `out_support[(λ(s), λ)]` — every `λ(s)`-labeled node with at least
///   one outgoing `λ` edge;
/// * `in_support[(λ(t), λ)]` — every `λ(t)`-labeled node with at least
///   one incoming `λ` edge (support sets are intersected to seed
///   candidates for pattern nodes with no bound neighbour).
///
/// The maps are nested (`node label → edge label → …`) rather than
/// keyed by a `(Label, Label)` tuple so the read path can probe with
/// two borrowed `&Label`s — a tuple key would force two `String`
/// clones per lookup, and `has_edge` sits in the matcher's innermost
/// loop.
///
/// Every level is a persistent [`PMap`]/[`PSet`], so cloning the index
/// is a few `Arc` bumps and indexing one edge path-copies only the
/// O(log n) nodes around the touched postings — the property that
/// makes snapshot publishes O(delta) (see `crate::snapshot`).
#[derive(Debug, Clone, Default, PartialEq)]
struct AdjacencyIndex {
    sources: SharedMap<Label, SharedMap<Label, Postings>>,
    targets: SharedMap<Label, SharedMap<Label, Postings>>,
    out_support: SharedMap<Label, SharedMap<Label, PSet<NodeId>>>,
    in_support: SharedMap<Label, SharedMap<Label, PSet<NodeId>>>,
}

/// Borrowed-key probe of a nested index map — no allocation.
fn nested_get<'a, T>(
    map: &'a SharedMap<Label, SharedMap<Label, T>>,
    node_label: &Label,
    edge: &Label,
) -> Option<&'a T> {
    map.get(node_label)?.get(edge)
}

/// Remove the `(node_label, edge)` entry of a nested index map,
/// pruning the outer entry when its inner map empties. `prune` decides
/// what to do with the inner value; returning `true` drops it.
fn nested_prune<T: Clone>(
    map: &mut SharedMap<Label, SharedMap<Label, T>>,
    node_label: &Label,
    edge: &Label,
    prune: impl FnOnce(&mut T) -> bool,
) {
    let Some(inner) = map.get_mut(node_label) else {
        return;
    };
    if let Some(value) = inner.get_mut(edge) {
        if prune(value) {
            inner.remove(edge);
        }
    }
    if inner.is_empty() {
        map.remove(node_label);
    }
}

impl AdjacencyIndex {
    /// Index the edge `(src, λ, dst)`.
    fn insert(
        &mut self,
        src: NodeId,
        src_label: &Label,
        edge: &Label,
        dst: NodeId,
        dst_label: &Label,
    ) {
        self.sources
            .get_or_insert_with(src_label, SharedMap::new)
            .get_or_insert_with(edge, PMap::new)
            .get_or_insert_with(&dst, PSet::new)
            .insert(src);
        self.targets
            .get_or_insert_with(dst_label, SharedMap::new)
            .get_or_insert_with(edge, PMap::new)
            .get_or_insert_with(&src, PSet::new)
            .insert(dst);
        self.out_support
            .get_or_insert_with(src_label, SharedMap::new)
            .get_or_insert_with(edge, PSet::new)
            .insert(src);
        self.in_support
            .get_or_insert_with(dst_label, SharedMap::new)
            .get_or_insert_with(edge, PSet::new)
            .insert(dst);
    }

    /// Unindex the edge `(src, λ, dst)`. The `src_has_out` / `dst_has_in`
    /// flags say whether the endpoints still carry *other* `λ` edges in
    /// the graph (computed by the caller after the graph mutation), which
    /// decides whether they stay in the support sets. Empty containers
    /// are pruned so the index stays equal to a fresh rebuild.
    fn remove(
        &mut self,
        (src, src_label): (NodeId, &Label),
        edge: &Label,
        (dst, dst_label): (NodeId, &Label),
        src_has_out: bool,
        dst_has_in: bool,
    ) {
        nested_prune(&mut self.sources, src_label, edge, |postings| {
            if let Some(set) = postings.get_mut(&dst) {
                set.remove(&src);
                if set.is_empty() {
                    postings.remove(&dst);
                }
            }
            postings.is_empty()
        });
        nested_prune(&mut self.targets, dst_label, edge, |postings| {
            if let Some(set) = postings.get_mut(&src) {
                set.remove(&dst);
                if set.is_empty() {
                    postings.remove(&src);
                }
            }
            postings.is_empty()
        });
        if !src_has_out {
            nested_prune(&mut self.out_support, src_label, edge, |set| {
                set.remove(&src);
                set.is_empty()
            });
        }
        if !dst_has_in {
            nested_prune(&mut self.in_support, dst_label, edge, |set| {
                set.remove(&dst);
                set.is_empty()
            });
        }
    }

    /// Build the index of `graph` from scratch (deserialization and the
    /// validation audit).
    fn build(graph: &Graph<NodeData, EdgeData>) -> Self {
        let mut index = AdjacencyIndex::default();
        for edge in graph.edges() {
            let src_label = &graph.node(edge.src).expect("live").label;
            let dst_label = &graph.node(edge.dst).expect("live").label;
            index.insert(
                edge.src,
                src_label,
                &edge.payload.label,
                edge.dst,
                dst_label,
            );
        }
        index
    }

    /// A structure-unsharing copy: every persistent node at every level
    /// is rebuilt. Models the pre-persistent clone cost (E16 baseline).
    fn deep_clone(&self) -> Self {
        fn unshare_set(set: &PSet<NodeId>) -> PSet<NodeId> {
            set.iter().copied().collect()
        }
        fn unshare<T: Clone>(
            map: &SharedMap<Label, SharedMap<Label, T>>,
            inner: impl Fn(&T) -> T,
        ) -> SharedMap<Label, SharedMap<Label, T>> {
            map.iter()
                .map(|(label, by_edge)| {
                    (
                        label.clone(),
                        by_edge
                            .iter()
                            .map(|(edge, value)| (edge.clone(), inner(value)))
                            .collect(),
                    )
                })
                .collect()
        }
        let unshare_postings = |postings: &Postings| -> Postings {
            postings
                .iter()
                .map(|(anchor, set)| (*anchor, unshare_set(set)))
                .collect()
        };
        AdjacencyIndex {
            sources: unshare(&self.sources, unshare_postings),
            targets: unshare(&self.targets, unshare_postings),
            out_support: unshare(&self.out_support, unshare_set),
            in_support: unshare(&self.in_support, unshare_set),
        }
    }

    /// Rough heap footprint in bytes across all four nested views.
    fn approx_bytes(&self) -> usize {
        fn set_bytes(set: &PSet<NodeId>) -> usize {
            set.approx_bytes()
        }
        fn nested_bytes<T>(
            map: &SharedMap<Label, SharedMap<Label, T>>,
            inner: impl Fn(&T) -> usize,
        ) -> usize {
            map.approx_bytes()
                + map
                    .values()
                    .map(|by_edge| {
                        by_edge.approx_bytes() + by_edge.values().map(&inner).sum::<usize>()
                    })
                    .sum::<usize>()
        }
        let postings_bytes = |postings: &Postings| -> usize {
            postings.approx_bytes() + postings.values().map(set_bytes).sum::<usize>()
        };
        nested_bytes(&self.sources, postings_bytes)
            + nested_bytes(&self.targets, postings_bytes)
            + nested_bytes(&self.out_support, set_bytes)
            + nested_bytes(&self.in_support, set_bytes)
    }
}

/// # Example
///
/// ```
/// use good_core::instance::Instance;
/// use good_core::scheme::SchemeBuilder;
/// use good_core::value::{Value, ValueType};
///
/// let scheme = SchemeBuilder::new()
///     .object("Info")
///     .printable("String", ValueType::Str)
///     .functional("Info", "name", "String")
///     .build();
/// let mut db = Instance::new(scheme);
/// let info = db.add_object("Info")?;
/// let name = db.add_printable("String", "Rock")?;   // deduplicated
/// db.add_edge(info, "name", name)?;
/// assert_eq!(db.find_printable(&"String".into(), &Value::str("Rock")), Some(name));
/// db.validate()?;
/// # Ok::<(), good_core::error::GoodError>(())
/// ```
/// An object base instance over an owned [`Scheme`].
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(try_from = "InstanceData", into = "InstanceData")]
pub struct Instance {
    scheme: Scheme,
    graph: Graph<NodeData, EdgeData>,
    /// label → live nodes with that label (sorted for determinism).
    label_index: SharedMap<Label, PSet<NodeId>>,
    /// printable label → value → the unique node carrying it. Nested
    /// rather than keyed by `(Label, Value)` so lookups probe with two
    /// borrows instead of cloning a tuple key; the outer level is
    /// label-keyed (scheme-bounded), so it hash-probes.
    printable_index: SharedMap<Label, PMap<Value, NodeId>>,
    /// (node label, edge label) → postings, for the matcher.
    adjacency: AdjacencyIndex,
    /// Per-triple cardinality statistics for the planner, maintained
    /// incrementally alongside the adjacency index.
    stats: InstanceStats,
}

/// Serialized form: scheme + graph; indexes are rebuilt on load.
#[derive(Serialize, Deserialize)]
struct InstanceData {
    scheme: Scheme,
    graph: Graph<NodeData, EdgeData>,
}

impl From<Instance> for InstanceData {
    fn from(instance: Instance) -> Self {
        InstanceData {
            scheme: instance.scheme,
            graph: instance.graph,
        }
    }
}

impl TryFrom<InstanceData> for Instance {
    type Error = GoodError;
    fn try_from(data: InstanceData) -> Result<Self> {
        Instance::from_parts(data.scheme, data.graph)
    }
}

impl Instance {
    /// An empty instance over `scheme`.
    pub fn new(scheme: Scheme) -> Self {
        Instance {
            scheme,
            graph: Graph::new(),
            label_index: SharedMap::new(),
            printable_index: SharedMap::new(),
            adjacency: AdjacencyIndex::default(),
            stats: InstanceStats::default(),
        }
    }

    /// Rebuild an instance from a scheme and a raw graph, validating all
    /// invariants and reconstructing the indexes. This is the
    /// deserialization / recovery path (E13), so the indexes are built
    /// from borrows in a single pass over the live nodes — no per-node
    /// payload clones, no id buffering.
    pub fn from_parts(scheme: Scheme, graph: Graph<NodeData, EdgeData>) -> Result<Self> {
        let adjacency = AdjacencyIndex::build(&graph);
        let stats = InstanceStats::build(&graph);
        let mut label_index: SharedMap<Label, PSet<NodeId>> = SharedMap::new();
        let mut printable_index: SharedMap<Label, PMap<Value, NodeId>> = SharedMap::new();
        for node in graph.nodes() {
            let data = node.payload;
            label_index
                .get_or_insert_with(&data.label, PSet::new)
                .insert(node.id);
            if let Some(value) = &data.print {
                let prior = printable_index
                    .get_or_insert_with(&data.label, PMap::new)
                    .insert(value.clone(), node.id);
                if prior.is_some() {
                    return Err(GoodError::InvariantViolation(format!(
                        "duplicate printable node {} = {value}",
                        data.label
                    )));
                }
            }
        }
        let instance = Instance {
            scheme,
            graph,
            label_index,
            printable_index,
            adjacency,
            stats,
        };
        // Content must be audited on every load (the bytes are
        // untrusted), but the derived indexes were built three lines up
        // from this very graph — re-deriving them to compare is pure
        // overhead in release, so the index audit is debug-only here.
        instance.validate_semantics()?;
        #[cfg(debug_assertions)]
        instance.validate_indexes()?;
        Ok(instance)
    }

    /// A structure-unsharing clone: the graph arenas and every level of
    /// every index are rebuilt node by node, sharing nothing with
    /// `self`. This is exactly the work the pre-persistent
    /// representation did on *every* snapshot publish; benches (E16)
    /// use it as the baseline that `clone()` is measured against.
    pub fn deep_clone(&self) -> Self {
        Instance {
            scheme: self.scheme.clone(),
            graph: self.graph.deep_clone(),
            label_index: self
                .label_index
                .iter()
                .map(|(label, set)| (label.clone(), set.iter().copied().collect()))
                .collect(),
            printable_index: self
                .printable_index
                .iter()
                .map(|(label, values)| {
                    (
                        label.clone(),
                        values
                            .iter()
                            .map(|(value, node)| (value.clone(), *node))
                            .collect(),
                    )
                })
                .collect(),
            adjacency: self.adjacency.deep_clone(),
            stats: self.stats.deep_clone(),
        }
    }

    /// Rough heap footprint of the graph arenas and all indexes in
    /// bytes, counting every persistent node once (shared nodes are
    /// *not* deduplicated, so this is the retained size of an unshared
    /// copy). Feeds the MVCC ring's byte-based retention policy.
    pub fn approx_bytes(&self) -> usize {
        self.graph.approx_bytes()
            + self.label_index.approx_bytes()
            + self
                .label_index
                .values()
                .map(PSet::approx_bytes)
                .sum::<usize>()
            + self.printable_index.approx_bytes()
            + self
                .printable_index
                .values()
                .map(PMap::approx_bytes)
                .sum::<usize>()
            + self.adjacency.approx_bytes()
            + self.stats.approx_bytes()
    }

    // ---- accessors --------------------------------------------------------

    /// The instance's scheme.
    #[inline]
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Mutable scheme access — crate-internal: only the GOOD operations
    /// may evolve the scheme, and they keep instance and scheme in sync.
    #[inline]
    pub(crate) fn scheme_mut(&mut self) -> &mut Scheme {
        &mut self.scheme
    }

    /// Register a derived multivalued triple `(src, edge, dst)` on this
    /// instance's scheme — the same "minimal scheme extension" an edge
    /// addition performs, exposed for engines that materialize derived
    /// edges (compiled property paths) outside the operation layer.
    /// Registering a triple never invalidates existing data, so every
    /// instance invariant is preserved.
    pub fn extend_multivalued(
        &mut self,
        src: impl Into<Label>,
        edge: impl Into<Label>,
        dst: impl Into<Label>,
    ) -> Result<()> {
        self.scheme.add_multivalued(src, edge, dst)
    }

    /// The underlying graph (read-only).
    #[inline]
    pub fn graph(&self) -> &Graph<NodeData, EdgeData> {
        &self.graph
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// True if `node` is live.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.graph.contains_node(node)
    }

    /// The label of a live node.
    pub fn node_label(&self, node: NodeId) -> Option<&Label> {
        self.graph.node(node).map(|data| &data.label)
    }

    /// The print value of a live printable node.
    pub fn print_value(&self, node: NodeId) -> Option<&Value> {
        self.graph.node(node).and_then(|data| data.print.as_ref())
    }

    /// All live nodes with the given label, in deterministic (id) order.
    pub fn nodes_with_label<'a>(&'a self, label: &Label) -> impl Iterator<Item = NodeId> + 'a {
        self.label_index
            .get(label)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Number of live nodes with the given label.
    pub fn label_count(&self, label: &Label) -> usize {
        self.label_index.get(label).map_or(0, PSet::len)
    }

    /// The unique printable node holding `value` under `label`, if any.
    pub fn find_printable(&self, label: &Label, value: &Value) -> Option<NodeId> {
        self.printable_index
            .get(label)
            .and_then(|values| values.get(value))
            .copied()
    }

    /// The target of the (at most one) functional `λ`-edge leaving
    /// `node`.
    pub fn functional_target(&self, node: NodeId, label: &Label) -> Option<NodeId> {
        self.graph
            .out_edges(node)
            .find(|edge| &edge.payload.label == label)
            .map(|edge| edge.dst)
    }

    /// All `λ`-successors of `node`, in edge insertion order.
    pub fn targets<'a>(
        &'a self,
        node: NodeId,
        label: &'a Label,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.graph
            .out_edges(node)
            .filter(move |edge| &edge.payload.label == label)
            .map(|edge| edge.dst)
    }

    /// All `λ`-predecessors of `node`.
    pub fn sources<'a>(
        &'a self,
        node: NodeId,
        label: &'a Label,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.graph
            .in_edges(node)
            .filter(move |edge| &edge.payload.label == label)
            .map(|edge| edge.src)
    }

    /// Out-degree of `node` over all edge labels (0 if absent).
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.graph.out_degree(node)
    }

    /// In-degree of `node` over all edge labels (0 if absent).
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.graph.in_degree(node)
    }

    /// The `λ`-successor set of `node` as a sorted set — the paper's
    /// `{r : (m, β, r) ∈ E}`, which abstraction groups by.
    pub fn target_set(&self, node: NodeId, label: &Label) -> BTreeSet<NodeId> {
        self.targets(node, label).collect()
    }

    /// True if the edge `(src, λ, dst)` is present. Low-degree sources
    /// are scanned directly — cheaper than the two label hashes an index
    /// probe costs — while high-degree ones go through the adjacency
    /// index so the check stays degree-independent.
    pub fn has_edge(&self, src: NodeId, label: &Label, dst: NodeId) -> bool {
        const SCAN_LIMIT: usize = 8;
        if self.graph.out_degree(src) <= SCAN_LIMIT {
            return self
                .graph
                .out_edges(src)
                .any(|edge| edge.dst == dst && &edge.payload.label == label);
        }
        let Some(src_label) = self.node_label(src) else {
            return false;
        };
        nested_get(&self.adjacency.sources, src_label, label)
            .and_then(|postings| postings.get(&dst))
            .is_some_and(|set| set.contains(&src))
    }

    /// Index postings: the sorted set of `src_label`-labeled nodes with a
    /// `λ`-edge *into* `dst`. `None` means no such edge exists.
    pub fn indexed_sources(
        &self,
        src_label: &Label,
        edge: &Label,
        dst: NodeId,
    ) -> Option<&PSet<NodeId>> {
        nested_get(&self.adjacency.sources, src_label, edge).and_then(|postings| postings.get(&dst))
    }

    /// Index postings: the sorted set of `dst_label`-labeled nodes `src`
    /// reaches via a `λ`-edge. `None` means no such edge exists.
    pub fn indexed_targets(
        &self,
        dst_label: &Label,
        edge: &Label,
        src: NodeId,
    ) -> Option<&PSet<NodeId>> {
        nested_get(&self.adjacency.targets, dst_label, edge).and_then(|postings| postings.get(&src))
    }

    /// The sorted set of `label`-labeled nodes with at least one outgoing
    /// `λ`-edge. A complete over-approximation of the candidates for a
    /// pattern node with an unanchored outgoing `λ`-edge.
    pub fn out_support(&self, label: &Label, edge: &Label) -> Option<&PSet<NodeId>> {
        nested_get(&self.adjacency.out_support, label, edge)
    }

    /// The sorted set of `label`-labeled nodes with at least one incoming
    /// `λ`-edge.
    pub fn in_support(&self, label: &Label, edge: &Label) -> Option<&PSet<NodeId>> {
        nested_get(&self.adjacency.in_support, label, edge)
    }

    /// Per-triple cardinality statistics (edge counts and degree
    /// histograms per `(source label, edge label, target label)`),
    /// maintained incrementally — probing them never scans the graph.
    #[inline]
    pub fn stats(&self) -> &InstanceStats {
        &self.stats
    }

    /// Number of distinct print values currently held under a printable
    /// label — the planner's domain size for value-anchored probes.
    pub fn printable_value_count(&self, label: &Label) -> usize {
        self.printable_index.get(label).map_or(0, PMap::len)
    }

    /// The id of the edge `(src, λ, dst)`, if present.
    pub fn edge_between(&self, src: NodeId, label: &Label, dst: NodeId) -> Option<EdgeId> {
        self.graph
            .out_edges(src)
            .find(|edge| edge.dst == dst && &edge.payload.label == label)
            .map(|edge| edge.id)
    }

    // ---- mutation -----------------------------------------------------------

    /// Add an object node of class `label`.
    pub fn add_object(&mut self, label: impl Into<Label>) -> Result<NodeId> {
        let label = label.into();
        match self.scheme.node_kind(&label) {
            Some(NodeKind::Object) => {}
            Some(NodeKind::Printable) => {
                return Err(GoodError::PrintMismatch {
                    label,
                    kind: NodeKind::Printable,
                })
            }
            None => return Err(GoodError::UnknownNodeLabel(label)),
        }
        let id = self.graph.add_node(NodeData {
            label: label.clone(),
            print: None,
        });
        self.label_index
            .get_or_insert_with(&label, PSet::new)
            .insert(id);
        Ok(id)
    }

    /// Add (or retrieve) the printable node of class `label` holding
    /// `value`. Printable nodes are deduplicated, as required by the
    /// instance definition.
    pub fn add_printable(
        &mut self,
        label: impl Into<Label>,
        value: impl Into<Value>,
    ) -> Result<NodeId> {
        let label = label.into();
        let value = value.into();
        let expected = match self.scheme.node_kind(&label) {
            Some(NodeKind::Printable) => self.scheme.printable_type(&label).expect("printable"),
            Some(NodeKind::Object) => {
                return Err(GoodError::PrintMismatch {
                    label,
                    kind: NodeKind::Object,
                })
            }
            None => return Err(GoodError::UnknownNodeLabel(label)),
        };
        if value.value_type() != expected {
            return Err(GoodError::ValueTypeMismatch {
                label,
                expected,
                value,
            });
        }
        if let Some(existing) = self
            .printable_index
            .get(&label)
            .and_then(|values| values.get(&value))
        {
            return Ok(*existing);
        }
        let id = self.graph.add_node(NodeData {
            label: label.clone(),
            print: Some(value.clone()),
        });
        self.label_index
            .get_or_insert_with(&label, PSet::new)
            .insert(id);
        self.printable_index
            .get_or_insert_with(&label, PMap::new)
            .insert(value, id);
        Ok(id)
    }

    /// Add the edge `(src, λ, dst)`, enforcing every invariant.
    ///
    /// Edge sets are *sets*: re-adding an existing edge returns the
    /// existing id. Violations of functionality or target-label
    /// consistency are errors — the paper's "the result is not defined".
    pub fn add_edge(
        &mut self,
        src: NodeId,
        label: impl Into<Label>,
        dst: NodeId,
    ) -> Result<EdgeId> {
        let label = label.into();
        let src_data = self
            .graph
            .node(src)
            .ok_or_else(|| GoodError::DanglingNode(format!("{src:?}")))?
            .clone();
        let dst_data = self
            .graph
            .node(dst)
            .ok_or_else(|| GoodError::DanglingNode(format!("{dst:?}")))?
            .clone();
        let kind = self
            .scheme
            .edge_kind(&label)
            .ok_or_else(|| GoodError::UnknownEdgeLabel(label.clone()))?;
        if !self.scheme.allows(&src_data.label, &label, &dst_data.label) {
            return Err(GoodError::EdgeNotInScheme {
                src: src_data.label,
                edge: label,
                dst: dst_data.label,
            });
        }
        // Set semantics: identical edge already present → reuse.
        if let Some(existing) = self.edge_between(src, &label, dst) {
            return Ok(existing);
        }
        // Invariants over existing λ-successors of src.
        for edge in self.graph.out_edges(src) {
            if edge.payload.label != label {
                continue;
            }
            if kind == EdgeKind::Functional {
                return Err(GoodError::FunctionalConflict {
                    edge: label,
                    src: format!("{}({src:?})", src_data.label),
                });
            }
            let existing_label = self.graph.node(edge.dst).expect("live").label.clone();
            if existing_label != dst_data.label {
                return Err(GoodError::TargetLabelConflict {
                    edge: label,
                    existing: existing_label,
                    new: dst_data.label,
                });
            }
        }
        let id = self.graph.add_edge(
            src,
            dst,
            EdgeData {
                label: label.clone(),
            },
        );
        self.adjacency
            .insert(src, &src_data.label, &label, dst, &dst_data.label);
        // Post-insert degrees of the touched endpoints, restricted to
        // this triple's shape, read off the adjacency index in O(1) —
        // no scan. The old degrees are one less by construction.
        let new_out = self
            .indexed_targets(&dst_data.label, &label, src)
            .map_or(0, PSet::len) as u64;
        let new_in = self
            .indexed_sources(&src_data.label, &label, dst)
            .map_or(0, PSet::len) as u64;
        self.stats
            .record_added(&src_data.label, &label, &dst_data.label, new_out, new_in);
        Ok(id)
    }

    /// Delete a node with all incident edges. Deleting a dead node is a
    /// no-op returning `false`.
    pub fn delete_node(&mut self, node: NodeId) -> bool {
        if !self.graph.contains_node(node) {
            return false;
        }
        // Capture the incident edge triples before the cascade removes
        // them: the index updates need the endpoint labels, which are
        // unreachable once the node is dead. Self-loops show up in both
        // edge lists, so the in-pass skips them.
        let mut incident: Vec<(NodeId, Label, Label, NodeId, Label)> = Vec::new();
        for edge in self.graph.out_edges(node) {
            let dst_label = self.graph.node(edge.dst).expect("live").label.clone();
            let src_label = self.graph.node(node).expect("live").label.clone();
            incident.push((
                node,
                src_label,
                edge.payload.label.clone(),
                edge.dst,
                dst_label,
            ));
        }
        for edge in self.graph.in_edges(node) {
            if edge.src == node {
                continue;
            }
            let src_label = self.graph.node(edge.src).expect("live").label.clone();
            let dst_label = self.graph.node(node).expect("live").label.clone();
            incident.push((
                edge.src,
                src_label,
                edge.payload.label.clone(),
                node,
                dst_label,
            ));
        }
        if !self.remove_node_untracked(node) {
            return false;
        }
        for (src, src_label, edge_label, dst, dst_label) in incident {
            self.unindex_edge(src, &src_label, &edge_label, dst, &dst_label);
        }
        true
    }

    /// Remove a node from the graph plus the label/printable indexes,
    /// leaving the adjacency index stale. Callers either unindex the
    /// captured incident edges afterwards (`delete_node`) or rebuild the
    /// whole index (the bulk path of `delete_nodes`).
    fn remove_node_untracked(&mut self, node: NodeId) -> bool {
        let Some(data) = self.graph.remove_node(node) else {
            return false;
        };
        if let Some(set) = self.label_index.get_mut(&data.label) {
            set.remove(&node);
            if set.is_empty() {
                self.label_index.remove(&data.label);
            }
        }
        if let Some(value) = &data.print {
            if let Some(values) = self.printable_index.get_mut(&data.label) {
                values.remove(value);
                if values.is_empty() {
                    self.printable_index.remove(&data.label);
                }
            }
        }
        true
    }

    /// Delete every node in `nodes` with all incident edges, returning
    /// how many were live. The batched entry point for the node-deletion
    /// operation: dead ids (already deleted earlier in the batch) are
    /// skipped silently. Batches that doom a sizable fraction of the
    /// graph skip per-edge unindexing and rebuild the adjacency index
    /// once — O(surviving edges) instead of O(doomed edges × degree).
    pub fn delete_nodes(&mut self, nodes: impl IntoIterator<Item = NodeId>) -> usize {
        let doomed: Vec<NodeId> = nodes.into_iter().collect();
        if doomed.len() >= BULK_REBUILD_MIN && doomed.len() * 8 >= self.graph.node_count() {
            good_trace::counter_add("instance.node_del.bulk_rebuild", 1);
            let removed = doomed
                .into_iter()
                .filter(|node| self.remove_node_untracked(*node))
                .count();
            self.adjacency = AdjacencyIndex::build(&self.graph);
            self.stats = InstanceStats::build(&self.graph);
            removed
        } else {
            good_trace::counter_add("instance.node_del.incremental", 1);
            doomed
                .into_iter()
                .filter(|node| self.delete_node(*node))
                .count()
        }
    }

    /// Delete an edge by id. Deleting a dead edge is a no-op returning
    /// `false`.
    pub fn delete_edge(&mut self, edge: EdgeId) -> bool {
        let Some(edge_ref) = self.graph.edge_ref(edge) else {
            return false;
        };
        let (src, dst) = (edge_ref.src, edge_ref.dst);
        let edge_label = edge_ref.payload.label.clone();
        let src_label = self.graph.node(src).expect("live").label.clone();
        let dst_label = self.graph.node(dst).expect("live").label.clone();
        if self.graph.remove_edge(edge).is_none() {
            return false;
        }
        self.unindex_edge(src, &src_label, &edge_label, dst, &dst_label);
        true
    }

    /// Unindex one removed edge, rechecking endpoint support against the
    /// (already mutated) graph.
    fn unindex_edge(
        &mut self,
        src: NodeId,
        src_label: &Label,
        edge_label: &Label,
        dst: NodeId,
        dst_label: &Label,
    ) {
        let src_has_out = self
            .graph
            .out_edges(src)
            .any(|e| &e.payload.label == edge_label);
        let dst_has_in = self
            .graph
            .in_edges(dst)
            .any(|e| &e.payload.label == edge_label);
        self.adjacency.remove(
            (src, src_label),
            edge_label,
            (dst, dst_label),
            src_has_out,
            dst_has_in,
        );
        // Post-removal degrees read off the just-updated adjacency
        // index (the old degrees are one more); this stays O(1) even
        // when an endpoint is already dead, because the postings —
        // not the graph — are the source of truth here.
        let new_out = self
            .indexed_targets(dst_label, edge_label, src)
            .map_or(0, PSet::len) as u64;
        let new_in = self
            .indexed_sources(src_label, edge_label, dst)
            .map_or(0, PSet::len) as u64;
        self.stats
            .record_removed(src_label, edge_label, dst_label, new_out, new_in);
    }

    /// Delete the edge `(src, λ, dst)` if present.
    pub fn delete_edge_between(&mut self, src: NodeId, label: &Label, dst: NodeId) -> bool {
        match self.edge_between(src, label, dst) {
            Some(edge) => self.delete_edge(edge),
            None => false,
        }
    }

    /// Delete every edge triple in `triples`, returning how many were
    /// present. The batched entry point for the edge-deletion operation:
    /// triples are grouped by source so each source's out-edge list is
    /// scanned once, instead of once per doomed triple.
    pub fn delete_edges_between(
        &mut self,
        triples: impl IntoIterator<Item = (NodeId, Label, NodeId)>,
    ) -> usize {
        let mut by_src: BTreeMap<NodeId, Vec<(Label, NodeId)>> = BTreeMap::new();
        for (src, label, dst) in triples {
            by_src.entry(src).or_default().push((label, dst));
        }
        let mut doomed: Vec<EdgeId> = Vec::new();
        for (src, pairs) in &by_src {
            for edge in self.graph.out_edges(*src) {
                if pairs
                    .iter()
                    .any(|(label, dst)| edge.dst == *dst && &edge.payload.label == label)
                {
                    doomed.push(edge.id);
                }
            }
        }
        if doomed.len() >= BULK_REBUILD_MIN && doomed.len() * 2 >= self.graph.edge_count() {
            good_trace::counter_add("instance.edge_del.bulk_rebuild", 1);
            let removed = doomed
                .into_iter()
                .filter(|edge| self.graph.remove_edge(*edge).is_some())
                .count();
            self.adjacency = AdjacencyIndex::build(&self.graph);
            self.stats = InstanceStats::build(&self.graph);
            removed
        } else {
            good_trace::counter_add("instance.edge_del.incremental", 1);
            doomed
                .into_iter()
                .filter(|edge| self.delete_edge(*edge))
                .count()
        }
    }

    /// Restrict this instance to `scheme`: remove every node whose label
    /// is unknown to `scheme` and every edge whose triple is not in its
    /// `P` — "the largest subinstance of I that is an instance over S′"
    /// (footnote 4, the method-interface semantics).
    pub fn restrict_to_scheme(&mut self, scheme: &Scheme) {
        let doomed_nodes: Vec<NodeId> = self
            .graph
            .nodes()
            .filter(|n| !scheme.is_node_label(&n.payload.label))
            .map(|n| n.id)
            .collect();
        for node in doomed_nodes {
            self.delete_node(node);
        }
        let doomed_edges: Vec<EdgeId> = self
            .graph
            .edges()
            .filter(|e| {
                let src = &self.graph.node(e.src).expect("live").label;
                let dst = &self.graph.node(e.dst).expect("live").label;
                !scheme.allows(src, &e.payload.label, dst)
            })
            .map(|e| e.id)
            .collect();
        for edge in doomed_edges {
            self.delete_edge(edge);
        }
        self.scheme = scheme.clone();
    }

    // ---- validation -----------------------------------------------------

    /// Check every instance invariant from Section 2. The mutators make
    /// violations unrepresentable; this is the independent auditor used
    /// by tests and deserialization. Equivalent to
    /// [`Instance::validate_semantics`] followed by
    /// [`Instance::validate_indexes`].
    pub fn validate(&self) -> Result<()> {
        self.validate_semantics()?;
        self.validate_indexes()
    }

    /// The *semantic* half of [`Instance::validate`]: scheme
    /// consistency, node label/print invariants, printable uniqueness,
    /// and edge conformance — everything that can be wrong about the
    /// graph *content*. Runs in O(nodes + edges); does not touch the
    /// derived indexes, so it is safe on paths where the indexes were
    /// just built (deserialization, recovery).
    pub fn validate_semantics(&self) -> Result<()> {
        self.scheme.validate()?;
        for node in self.graph.nodes() {
            let data = node.payload;
            match self.scheme.node_kind(&data.label) {
                Some(NodeKind::Object) => {
                    if data.print.is_some() {
                        return Err(GoodError::InvariantViolation(format!(
                            "object node {} carries a print value",
                            data.label
                        )));
                    }
                }
                Some(NodeKind::Printable) => {
                    let Some(value) = &data.print else {
                        return Err(GoodError::InvariantViolation(format!(
                            "printable node {} lacks a print value",
                            data.label
                        )));
                    };
                    let expected = self.scheme.printable_type(&data.label).expect("printable");
                    if value.value_type() != expected {
                        return Err(GoodError::InvariantViolation(format!(
                            "printable node {} holds a {} value, expected {expected}",
                            data.label,
                            value.value_type()
                        )));
                    }
                }
                None => return Err(GoodError::UnknownNodeLabel(data.label.clone())),
            }
        }
        // Printable uniqueness.
        let mut seen: HashMap<(&Label, &Value), NodeId> = HashMap::new();
        for node in self.graph.nodes() {
            if let Some(value) = &node.payload.print {
                if let Some(previous) = seen.insert((&node.payload.label, value), node.id) {
                    return Err(GoodError::InvariantViolation(format!(
                        "printable nodes {previous:?} and {:?} share value {value}",
                        node.id
                    )));
                }
            }
        }
        // Edge conformance + per-(node, label) invariants.
        for node in self.graph.node_ids() {
            let mut by_label: HashMap<&Label, Vec<NodeId>> = HashMap::new();
            for edge in self.graph.out_edges(node) {
                by_label
                    .entry(&edge.payload.label)
                    .or_default()
                    .push(edge.dst);
            }
            let src_label = &self.graph.node(node).expect("live").label;
            for (label, targets) in by_label {
                let kind = self
                    .scheme
                    .edge_kind(label)
                    .ok_or_else(|| GoodError::UnknownEdgeLabel(label.clone()))?;
                if kind == EdgeKind::Functional && targets.len() > 1 {
                    return Err(GoodError::InvariantViolation(format!(
                        "functional edge {label} leaves {src_label} {} times",
                        targets.len()
                    )));
                }
                let mut distinct = BTreeSet::new();
                let mut seen_targets = BTreeSet::new();
                for target in &targets {
                    // Edge sets are sets: a parallel duplicate of the same
                    // triple would double-count in the adjacency postings.
                    if !seen_targets.insert(*target) {
                        return Err(GoodError::InvariantViolation(format!(
                            "duplicate parallel edge ({src_label}, {label}) to {target:?}"
                        )));
                    }
                    let dst_label = &self.graph.node(*target).expect("live").label;
                    distinct.insert(dst_label.clone());
                    if !self.scheme.allows(src_label, label, dst_label) {
                        return Err(GoodError::InvariantViolation(format!(
                            "edge ({src_label}, {label}, {dst_label}) not in P"
                        )));
                    }
                }
                if distinct.len() > 1 {
                    return Err(GoodError::InvariantViolation(format!(
                        "{label}-successors carry different labels: {distinct:?}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The *index* half of [`Instance::validate`]: the incrementally
    /// maintained label and adjacency indexes must agree with a fresh
    /// scan/rebuild. This is the expensive audit (it rebuilds the
    /// adjacency index); release hot paths reach it only through
    /// [`Instance::debug_assert_indexes`], which compiles it out.
    pub fn validate_indexes(&self) -> Result<()> {
        // Index integrity.
        for (label, set) in self.label_index.iter() {
            for node in set.iter() {
                let data = self.graph.node(*node).ok_or_else(|| {
                    GoodError::InvariantViolation(format!("index points at dead node {node:?}"))
                })?;
                if &data.label != label {
                    return Err(GoodError::InvariantViolation(format!(
                        "index label mismatch for {node:?}"
                    )));
                }
            }
        }
        // Adjacency index integrity: the incrementally maintained index
        // must be exactly what a fresh rebuild produces (empty containers
        // are pruned on removal precisely so this comparison is equality).
        let rebuilt = AdjacencyIndex::build(&self.graph);
        if rebuilt != self.adjacency {
            return Err(GoodError::InvariantViolation(
                "adjacency index out of sync with graph".into(),
            ));
        }
        // Planner statistics obey the same contract: the incremental
        // figures must equal a from-scratch rebuild, exactly.
        if InstanceStats::build(&self.graph) != self.stats {
            return Err(GoodError::InvariantViolation(
                "planner statistics out of sync with graph".into(),
            ));
        }
        Ok(())
    }

    /// Debug-build audit that every index agrees with the graph; compiled
    /// out in release builds. The GOOD operations call this after each
    /// batched mutation pass.
    #[inline]
    pub fn debug_assert_indexes(&self) {
        #[cfg(debug_assertions)]
        self.validate().expect("instance indexes out of sync");
    }

    // ---- comparison & rendering -------------------------------------------

    /// Are two instances isomorphic (equal up to the choice of node
    /// identities)? Node keys are (label, print value); edge keys are
    /// labels.
    pub fn isomorphic_to(&self, other: &Instance) -> bool {
        good_graph::iso::isomorphic(
            &self.graph,
            &other.graph,
            |n| (n.label.clone(), n.print.clone()),
            |n| (n.label.clone(), n.print.clone()),
            |e| e.label.clone(),
            |e| e.label.clone(),
        )
    }

    /// Render as Graphviz DOT in the paper's conventions.
    pub fn to_dot(&self, title: &str) -> String {
        let scheme = &self.scheme;
        good_graph::dot::to_dot(
            &self.graph,
            title,
            |_, data| {
                let mut label = data.label.as_str().to_string();
                if let Some(value) = &data.print {
                    label.push('\n');
                    label.push_str(&value.to_string());
                }
                if scheme.is_printable_label(&data.label) {
                    DotNode::oval(label)
                } else {
                    DotNode::boxed(label)
                }
            },
            |data| DotEdge {
                label: data.label.as_str().into(),
                double_arrow: scheme.edge_kind(&data.label) == Some(EdgeKind::Multivalued),
                bold: false,
                dashed: false,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeBuilder;
    use crate::value::ValueType;

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .object("Version")
            .printable("String", ValueType::Str)
            .printable("Date", ValueType::Date)
            .functional("Info", "name", "String")
            .functional("Info", "created", "Date")
            .functional("Version", "old", "Info")
            .functional("Version", "new", "Info")
            .multivalued("Info", "links-to", "Info")
            .build()
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut db = Instance::new(scheme());
        let info = db.add_object("Info").unwrap();
        let name = db.add_printable("String", "Rock").unwrap();
        db.add_edge(info, "name", name).unwrap();
        assert_eq!(db.node_count(), 2);
        assert_eq!(db.edge_count(), 1);
        assert_eq!(db.functional_target(info, &"name".into()), Some(name));
        db.validate().unwrap();
    }

    #[test]
    fn printable_nodes_are_deduplicated() {
        let mut db = Instance::new(scheme());
        let a = db.add_printable("Date", Value::date(1990, 1, 12)).unwrap();
        let b = db.add_printable("Date", Value::date(1990, 1, 12)).unwrap();
        assert_eq!(a, b);
        assert_eq!(db.node_count(), 1);
        let c = db.add_printable("Date", Value::date(1990, 1, 14)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn printable_value_type_checked() {
        let mut db = Instance::new(scheme());
        assert!(matches!(
            db.add_printable("Date", "not a date"),
            Err(GoodError::ValueTypeMismatch { .. })
        ));
    }

    #[test]
    fn object_vs_printable_confusion_rejected() {
        let mut db = Instance::new(scheme());
        assert!(matches!(
            db.add_object("String"),
            Err(GoodError::PrintMismatch { .. })
        ));
        assert!(matches!(
            db.add_printable("Info", "x"),
            Err(GoodError::PrintMismatch { .. })
        ));
        assert!(matches!(
            db.add_object("Nope"),
            Err(GoodError::UnknownNodeLabel(_))
        ));
    }

    #[test]
    fn edges_must_conform_to_scheme() {
        let mut db = Instance::new(scheme());
        let version = db.add_object("Version").unwrap();
        let name = db.add_printable("String", "x").unwrap();
        assert!(matches!(
            db.add_edge(version, "name", name),
            Err(GoodError::EdgeNotInScheme { .. })
        ));
        let info = db.add_object("Info").unwrap();
        assert!(matches!(
            db.add_edge(info, "unknown", name),
            Err(GoodError::UnknownEdgeLabel(_))
        ));
    }

    #[test]
    fn functional_edges_are_single_valued() {
        let mut db = Instance::new(scheme());
        let info = db.add_object("Info").unwrap();
        let a = db.add_printable("String", "a").unwrap();
        let b = db.add_printable("String", "b").unwrap();
        db.add_edge(info, "name", a).unwrap();
        assert!(matches!(
            db.add_edge(info, "name", b),
            Err(GoodError::FunctionalConflict { .. })
        ));
        // Idempotent re-add of the same edge succeeds.
        db.add_edge(info, "name", a).unwrap();
        assert_eq!(db.edge_count(), 1);
    }

    #[test]
    fn multivalued_edges_are_sets() {
        let mut db = Instance::new(scheme());
        let a = db.add_object("Info").unwrap();
        let b = db.add_object("Info").unwrap();
        let e1 = db.add_edge(a, "links-to", b).unwrap();
        let e2 = db.add_edge(a, "links-to", b).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(db.edge_count(), 1);
        let c = db.add_object("Info").unwrap();
        db.add_edge(a, "links-to", c).unwrap();
        assert_eq!(db.targets(a, &"links-to".into()).count(), 2);
    }

    #[test]
    fn target_label_consistency_enforced() {
        // A scheme where comment may point at String or Number —
        // per-node, the successors must still agree on one label.
        let s = SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .printable("Number", ValueType::Int)
            .multivalued("Info", "comment", "String")
            .multivalued("Info", "comment", "Number")
            .build();
        let mut db = Instance::new(s);
        let info = db.add_object("Info").unwrap();
        let text = db.add_printable("String", "hello").unwrap();
        let num = db.add_printable("Number", 5i64).unwrap();
        db.add_edge(info, "comment", text).unwrap();
        assert!(matches!(
            db.add_edge(info, "comment", num),
            Err(GoodError::TargetLabelConflict { .. })
        ));
        // A different Info node may use the other label.
        let info2 = db.add_object("Info").unwrap();
        db.add_edge(info2, "comment", num).unwrap();
        db.validate().unwrap();
    }

    #[test]
    fn delete_node_cleans_indexes() {
        let mut db = Instance::new(scheme());
        let info = db.add_object("Info").unwrap();
        let name = db.add_printable("String", "Rock").unwrap();
        db.add_edge(info, "name", name).unwrap();
        assert!(db.delete_node(name));
        assert_eq!(db.edge_count(), 0);
        assert_eq!(
            db.find_printable(&"String".into(), &Value::str("Rock")),
            None
        );
        assert_eq!(db.label_count(&"String".into()), 0);
        // Deleting again is a no-op.
        assert!(!db.delete_node(name));
        db.validate().unwrap();
        // The value can be re-added afterwards.
        db.add_printable("String", "Rock").unwrap();
    }

    #[test]
    fn delete_edge_between() {
        let mut db = Instance::new(scheme());
        let a = db.add_object("Info").unwrap();
        let b = db.add_object("Info").unwrap();
        db.add_edge(a, "links-to", b).unwrap();
        assert!(db.delete_edge_between(a, &"links-to".into(), b));
        assert!(!db.delete_edge_between(a, &"links-to".into(), b));
        assert_eq!(db.edge_count(), 0);
    }

    #[test]
    fn incomplete_information_is_fine() {
        // "There could even be info nodes without any outgoing edges."
        let mut db = Instance::new(scheme());
        db.add_object("Info").unwrap();
        db.validate().unwrap();
    }

    #[test]
    fn restrict_to_scheme_drops_foreign_parts() {
        let mut db = Instance::new(scheme());
        let info = db.add_object("Info").unwrap();
        let name = db.add_printable("String", "x").unwrap();
        db.add_edge(info, "name", name).unwrap();
        // Extend the scheme with a temporary class and tag the node.
        db.scheme_mut().add_object_label("Temp").unwrap();
        db.scheme_mut().add_functional("Temp", "t", "Info").unwrap();
        let temp = db.add_object("Temp").unwrap();
        db.add_edge(temp, "t", info).unwrap();
        let original = scheme();
        db.restrict_to_scheme(&original);
        assert_eq!(db.label_count(&"Temp".into()), 0);
        assert_eq!(db.node_count(), 2);
        assert_eq!(db.edge_count(), 1);
        assert_eq!(db.scheme(), &original);
        db.validate().unwrap();
    }

    #[test]
    fn isomorphism_up_to_node_identity() {
        let build = |names: [&str; 2]| {
            let mut db = Instance::new(scheme());
            let a = db.add_object("Info").unwrap();
            let b = db.add_object("Info").unwrap();
            let na = db.add_printable("String", names[0]).unwrap();
            let nb = db.add_printable("String", names[1]).unwrap();
            db.add_edge(a, "name", na).unwrap();
            db.add_edge(b, "name", nb).unwrap();
            db.add_edge(a, "links-to", b).unwrap();
            db
        };
        let x = build(["Rock", "Jazz"]);
        let y = build(["Rock", "Jazz"]);
        let z = build(["Rock", "Blues"]);
        assert!(x.isomorphic_to(&y));
        assert!(!x.isomorphic_to(&z));
    }

    #[test]
    fn adjacency_index_answers_queries() {
        let mut db = Instance::new(scheme());
        let a = db.add_object("Info").unwrap();
        let b = db.add_object("Info").unwrap();
        let c = db.add_object("Info").unwrap();
        db.add_edge(a, "links-to", c).unwrap();
        db.add_edge(b, "links-to", c).unwrap();
        db.add_edge(a, "links-to", b).unwrap();
        let info: Label = "Info".into();
        let links: Label = "links-to".into();
        // Sources of c via links-to: {a, b}.
        let sources = db.indexed_sources(&info, &links, c).unwrap();
        assert_eq!(sources.iter().copied().collect::<Vec<_>>(), vec![a, b]);
        // Targets of a via links-to: {b, c}.
        let targets = db.indexed_targets(&info, &links, a).unwrap();
        assert_eq!(targets.iter().copied().collect::<Vec<_>>(), vec![b, c]);
        // Supports.
        let out = db.out_support(&info, &links).unwrap();
        assert_eq!(out.iter().copied().collect::<Vec<_>>(), vec![a, b]);
        let inn = db.in_support(&info, &links).unwrap();
        assert_eq!(inn.iter().copied().collect::<Vec<_>>(), vec![b, c]);
        assert!(db.has_edge(a, &links, c));
        assert!(!db.has_edge(c, &links, a));
        db.validate().unwrap();
    }

    #[test]
    fn adjacency_index_tracks_deletions() {
        let mut db = Instance::new(scheme());
        let a = db.add_object("Info").unwrap();
        let b = db.add_object("Info").unwrap();
        let c = db.add_object("Info").unwrap();
        db.add_edge(a, "links-to", b).unwrap();
        db.add_edge(a, "links-to", c).unwrap();
        let info: Label = "Info".into();
        let links: Label = "links-to".into();
        db.delete_edge_between(a, &links, b);
        // a still supports out (edge to c survives); b lost in-support.
        assert!(db.out_support(&info, &links).unwrap().contains(&a));
        assert!(db.indexed_sources(&info, &links, b).is_none());
        db.validate().unwrap();
        // Node deletion cascades out of the index too.
        db.delete_node(c);
        assert!(db.out_support(&info, &links).is_none());
        assert!(db.in_support(&info, &links).is_none());
        db.validate().unwrap();
    }

    #[test]
    fn adjacency_index_survives_self_loop_deletion() {
        let mut db = Instance::new(scheme());
        let a = db.add_object("Info").unwrap();
        let b = db.add_object("Info").unwrap();
        db.add_edge(a, "links-to", a).unwrap();
        db.add_edge(a, "links-to", b).unwrap();
        db.validate().unwrap();
        db.delete_node(a);
        db.validate().unwrap();
        let info: Label = "Info".into();
        let links: Label = "links-to".into();
        assert!(db.out_support(&info, &links).is_none());
    }

    #[test]
    fn batched_deletion_helpers() {
        let mut db = Instance::new(scheme());
        let a = db.add_object("Info").unwrap();
        let b = db.add_object("Info").unwrap();
        let c = db.add_object("Info").unwrap();
        let links: Label = "links-to".into();
        db.add_edge(a, "links-to", b).unwrap();
        db.add_edge(a, "links-to", c).unwrap();
        db.add_edge(b, "links-to", c).unwrap();
        let removed = db.delete_edges_between(vec![
            (a, links.clone(), b),
            (a, links.clone(), c),
            (a, links.clone(), b), // duplicate: counted once
        ]);
        assert_eq!(removed, 2);
        assert_eq!(db.edge_count(), 1);
        db.validate().unwrap();
        let gone = db.delete_nodes(vec![a, b, b]);
        assert_eq!(gone, 2);
        assert_eq!(db.node_count(), 1);
        db.validate().unwrap();
    }

    #[test]
    fn serde_roundtrip_rebuilds_indexes() {
        let mut db = Instance::new(scheme());
        let info = db.add_object("Info").unwrap();
        let name = db.add_printable("String", "Rock").unwrap();
        db.add_edge(info, "name", name).unwrap();
        let json = serde_json::to_string(&db).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert!(back.isomorphic_to(&db));
        assert!(back
            .find_printable(&"String".into(), &Value::str("Rock"))
            .is_some());
    }

    #[test]
    fn dot_contains_print_values() {
        let mut db = Instance::new(scheme());
        let info = db.add_object("Info").unwrap();
        let name = db.add_printable("String", "Rock").unwrap();
        db.add_edge(info, "name", name).unwrap();
        let dot = db.to_dot("instance");
        assert!(dot.contains("String\\nRock"));
        assert!(dot.contains("shape=box"));
    }
}
