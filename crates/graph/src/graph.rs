//! The directed labeled multigraph.
//!
//! [`Graph<N, E>`] stores node payloads `N` and edge payloads `E` in
//! generational arenas and maintains per-node incidence lists for both
//! directions, so the matcher in `good-core` can walk edges forwards and
//! backwards without scanning.
//!
//! Parallel edges are allowed at this layer (the same `(src, dst)` pair
//! may carry any number of edges); it is `good-core`'s instance layer
//! that enforces GOOD's edge invariants.

use crate::arena::{Arena, ArenaId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) ArenaId);

/// Identifier of an edge in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub(crate) ArenaId);

impl NodeId {
    /// Dense slot index, usable as a key for side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0.index()
    }
}

impl EdgeId {
    /// Dense slot index, usable as a key for side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0.index()
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{:?}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{:?}", self.0)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeSlot<N> {
    payload: N,
    out_edges: Vec<EdgeId>,
    in_edges: Vec<EdgeId>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EdgeSlot<E> {
    payload: E,
    src: NodeId,
    dst: NodeId,
}

/// A borrowed view of a node: its id, payload and degree information.
#[derive(Debug, Clone, Copy)]
pub struct NodeRef<'g, N> {
    /// The node's identifier.
    pub id: NodeId,
    /// The node's payload.
    pub payload: &'g N,
    /// Number of outgoing edges.
    pub out_degree: usize,
    /// Number of incoming edges.
    pub in_degree: usize,
}

/// A borrowed view of an edge: its id, payload and endpoints.
#[derive(Debug, Clone, Copy)]
pub struct EdgeRef<'g, E> {
    /// The edge's identifier.
    pub id: EdgeId,
    /// The edge's payload.
    pub payload: &'g E,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// # Example
///
/// ```
/// use good_graph::Graph;
///
/// let mut graph: Graph<&str, &str> = Graph::new();
/// let info = graph.add_node("Info");
/// let date = graph.add_node("Date");
/// let edge = graph.add_edge(info, date, "created");
/// assert_eq!(graph.endpoints(edge), Some((info, date)));
/// graph.remove_node(date);           // cascades to the edge
/// assert_eq!(graph.edge_count(), 0);
/// assert!(graph.contains_node(info));
/// ```
/// A directed multigraph with payloads on nodes and edges.
///
/// Both arenas live in persistent tries, so `clone()` is O(1) and a
/// clone shares all storage with the original until either side writes.
#[derive(Debug, Clone, Serialize)]
pub struct Graph<N, E> {
    nodes: Arena<NodeSlot<N>>,
    edges: Arena<EdgeSlot<E>>,
}

// Manual impl because the arena's deserializer needs `Clone` payloads
// (it rebuilds the persistent slot trie by `push`).
impl<N: Deserialize + Clone, E: Deserialize + Clone> Deserialize for Graph<N, E> {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        let entries = serde::__private::expect_map(content, "Graph")?;
        Ok(Graph {
            nodes: Deserialize::from_content(serde::__private::map_field(
                entries, "nodes", "Graph",
            )?)?,
            edges: Deserialize::from_content(serde::__private::map_field(
                entries, "edges", "Graph",
            )?)?,
        })
    }
}

impl<N, E> Default for Graph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> Graph<N, E> {
    /// Create an empty graph.
    pub fn new() -> Self {
        Graph {
            nodes: Arena::new(),
            edges: Arena::new(),
        }
    }

    /// Create an empty graph with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Graph {
            nodes: Arena::with_capacity(nodes),
            edges: Arena::with_capacity(edges),
        }
    }

    /// Number of live nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Exclusive upper bound on node slot indexes (for dense side tables).
    #[inline]
    pub fn node_index_bound(&self) -> usize {
        self.nodes.index_bound()
    }

    /// Number of live nodes and edges together (diagnostic).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0 && self.edge_count() == 0
    }
}

/// Mutation requires `Clone` payloads: writes path-copy any trie nodes
/// shared with live snapshots.
impl<N: Clone, E: Clone> Graph<N, E> {
    /// Add a node carrying `payload`.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        NodeId(self.nodes.insert(NodeSlot {
            payload,
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        }))
    }

    /// Add an edge `src -> dst` carrying `payload`.
    ///
    /// # Panics
    /// Panics if either endpoint is not a live node — connecting dead
    /// nodes is always a logic error in the layers above.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, payload: E) -> EdgeId {
        assert!(
            self.nodes.contains(src.0),
            "add_edge: source {src:?} is not live"
        );
        assert!(
            self.nodes.contains(dst.0),
            "add_edge: destination {dst:?} is not live"
        );
        let id = EdgeId(self.edges.insert(EdgeSlot { payload, src, dst }));
        self.nodes
            .get_mut(src.0)
            .expect("checked above")
            .out_edges
            .push(id);
        self.nodes
            .get_mut(dst.0)
            .expect("checked above")
            .in_edges
            .push(id);
        id
    }

    /// Remove an edge, returning its payload if it was live.
    pub fn remove_edge(&mut self, id: EdgeId) -> Option<E> {
        let slot = self.edges.remove(id.0)?;
        if let Some(src) = self.nodes.get_mut(slot.src.0) {
            src.out_edges.retain(|&e| e != id);
        }
        if let Some(dst) = self.nodes.get_mut(slot.dst.0) {
            dst.in_edges.retain(|&e| e != id);
        }
        Some(slot.payload)
    }

    /// Remove a node and all incident edges, returning its payload if it
    /// was live.
    pub fn remove_node(&mut self, id: NodeId) -> Option<N> {
        let slot = self.nodes.remove(id.0)?;
        for edge in slot.out_edges.iter().chain(slot.in_edges.iter()) {
            if let Some(removed) = self.edges.remove(edge.0) {
                // Detach the far endpoint (self-loops were already removed
                // from our own slot by taking it out of the arena).
                let far = if removed.src == id {
                    removed.dst
                } else {
                    removed.src
                };
                if far != id {
                    if let Some(far_slot) = self.nodes.get_mut(far.0) {
                        far_slot.out_edges.retain(|&e| e != *edge);
                        far_slot.in_edges.retain(|&e| e != *edge);
                    }
                }
            }
        }
        Some(slot.payload)
    }

    /// Mutable access to a node payload.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut N> {
        self.nodes.get_mut(id.0).map(|slot| &mut slot.payload)
    }

    /// Mutable access to an edge payload.
    #[inline]
    pub fn edge_mut(&mut self, id: EdgeId) -> Option<&mut E> {
        self.edges.get_mut(id.0).map(|slot| &mut slot.payload)
    }

    /// A structure-unsharing clone: rebuilds both arena tries so the
    /// result shares nothing with `self`. Models the pre-persistent
    /// O(graph) clone cost (E16's baseline).
    pub fn deep_clone(&self) -> Self {
        Graph {
            nodes: self.nodes.deep_clone(),
            edges: self.edges.deep_clone(),
        }
    }
}

impl<N, E> Graph<N, E> {
    /// True if `id` is a live node.
    #[inline]
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.nodes.contains(id.0)
    }

    /// True if `id` is a live edge.
    #[inline]
    pub fn contains_edge(&self, id: EdgeId) -> bool {
        self.edges.contains(id.0)
    }

    /// Shared access to a node payload.
    #[inline]
    pub fn node(&self, id: NodeId) -> Option<&N> {
        self.nodes.get(id.0).map(|slot| &slot.payload)
    }

    /// Shared access to an edge payload.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> Option<&E> {
        self.edges.get(id.0).map(|slot| &slot.payload)
    }

    /// The `(src, dst)` endpoints of an edge.
    #[inline]
    pub fn endpoints(&self, id: EdgeId) -> Option<(NodeId, NodeId)> {
        self.edges.get(id.0).map(|slot| (slot.src, slot.dst))
    }

    /// Full borrowed view of an edge.
    pub fn edge_ref(&self, id: EdgeId) -> Option<EdgeRef<'_, E>> {
        self.edges.get(id.0).map(|slot| EdgeRef {
            id,
            payload: &slot.payload,
            src: slot.src,
            dst: slot.dst,
        })
    }

    /// Full borrowed view of a node.
    pub fn node_ref(&self, id: NodeId) -> Option<NodeRef<'_, N>> {
        self.nodes.get(id.0).map(|slot| NodeRef {
            id,
            payload: &slot.payload,
            out_degree: slot.out_edges.len(),
            in_degree: slot.in_edges.len(),
        })
    }

    /// Iterate over all live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeRef<'_, N>> {
        self.nodes.iter().map(|(id, slot)| NodeRef {
            id: NodeId(id),
            payload: &slot.payload,
            out_degree: slot.out_edges.len(),
            in_degree: slot.in_edges.len(),
        })
    }

    /// Iterate over all live node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.ids().map(NodeId)
    }

    /// Iterate over all live edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'_, E>> {
        self.edges.iter().map(|(id, slot)| EdgeRef {
            id: EdgeId(id),
            payload: &slot.payload,
            src: slot.src,
            dst: slot.dst,
        })
    }

    /// Iterate over all live edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.ids().map(EdgeId)
    }

    /// Outgoing edges of `node` (empty iterator if the node is dead).
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> {
        self.nodes
            .get(node.0)
            .map(|slot| slot.out_edges.as_slice())
            .unwrap_or(&[])
            .iter()
            .filter_map(|&edge| self.edge_ref(edge))
    }

    /// Incoming edges of `node` (empty iterator if the node is dead).
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> {
        self.nodes
            .get(node.0)
            .map(|slot| slot.in_edges.as_slice())
            .unwrap_or(&[])
            .iter()
            .filter_map(|&edge| self.edge_ref(edge))
    }

    /// Out-degree of `node` (0 if dead).
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.nodes
            .get(node.0)
            .map_or(0, |slot| slot.out_edges.len())
    }

    /// In-degree of `node` (0 if dead).
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.nodes.get(node.0).map_or(0, |slot| slot.in_edges.len())
    }

    /// Successor node ids (with multiplicity, one per parallel edge).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(node).map(|edge| edge.dst)
    }

    /// Predecessor node ids (with multiplicity).
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(node).map(|edge| edge.src)
    }

    /// Rough heap footprint of the arena tries in bytes (payload
    /// indirections are not followed).
    pub fn approx_bytes(&self) -> usize {
        self.nodes.approx_bytes() + self.edges.approx_bytes()
    }

    /// Map payloads into a new graph with identical structure and ids.
    pub fn map<N2, E2>(
        &self,
        mut node_map: impl FnMut(NodeId, &N) -> N2,
        mut edge_map: impl FnMut(EdgeId, &E) -> E2,
    ) -> Graph<N2, E2>
    where
        N2: Clone,
        E2: Clone,
    {
        // Rebuilding through the public API would renumber slots, so we
        // clone structurally: same arena shape is not guaranteed, but node
        // ids are remapped consistently and returned graphs are only used
        // where ids are re-derived. For id-stable mapping we instead
        // require payload transformation in place; this helper therefore
        // rebuilds and is documented as id-renumbering.
        let mut out = Graph::with_capacity(self.node_count(), self.edge_count());
        let mut remap = std::collections::HashMap::with_capacity(self.node_count());
        for node in self.nodes() {
            let new_id = out.add_node(node_map(node.id, node.payload));
            remap.insert(node.id, new_id);
        }
        for edge in self.edges() {
            out.add_edge(
                remap[&edge.src],
                remap[&edge.dst],
                edge_map(edge.id, edge.payload),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph<&'static str, &'static str>, Vec<NodeId>) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, "ab");
        g.add_edge(a, c, "ac");
        g.add_edge(b, d, "bd");
        g.add_edge(c, d, "cd");
        (g, vec![a, b, c, d])
    }

    #[test]
    fn build_and_query() {
        let (g, ids) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(ids[0]), 2);
        assert_eq!(g.in_degree(ids[3]), 2);
        let succ: Vec<_> = g.successors(ids[0]).collect();
        assert_eq!(succ.len(), 2);
        assert!(succ.contains(&ids[1]) && succ.contains(&ids[2]));
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g: Graph<(), &str> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, "x");
        g.add_edge(a, b, "x");
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(a), 2);
    }

    #[test]
    fn remove_edge_detaches_both_sides() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e = g.add_edge(a, b, ());
        assert_eq!(g.remove_edge(e), Some(()));
        assert_eq!(g.out_degree(a), 0);
        assert_eq!(g.in_degree(b), 0);
        assert_eq!(g.edge_count(), 0);
        // Double-remove is a no-op.
        assert_eq!(g.remove_edge(e), None);
    }

    #[test]
    fn remove_node_cascades_to_incident_edges() {
        let (mut g, ids) = diamond();
        g.remove_node(ids[1]); // remove "b"
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2); // ab and bd are gone
        assert_eq!(g.out_degree(ids[0]), 1);
        assert_eq!(g.in_degree(ids[3]), 1);
    }

    #[test]
    fn remove_node_with_self_loop() {
        let mut g: Graph<&str, ()> = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, a, ());
        g.add_edge(a, b, ());
        assert_eq!(g.remove_node(a), Some("a"));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.in_degree(b), 0);
        assert!(g.contains_node(b));
    }

    #[test]
    fn stale_node_id_is_rejected() {
        let mut g: Graph<u32, ()> = Graph::new();
        let a = g.add_node(1);
        g.remove_node(a);
        let b = g.add_node(2);
        assert_eq!(g.node(a), None);
        assert_eq!(g.node(b), Some(&2));
    }

    #[test]
    #[should_panic(expected = "add_edge: source")]
    fn add_edge_to_dead_node_panics() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.remove_node(a);
        g.add_edge(a, b, ());
    }

    #[test]
    fn endpoints_and_refs() {
        let mut g: Graph<&str, &str> = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e = g.add_edge(a, b, "ab");
        assert_eq!(g.endpoints(e), Some((a, b)));
        let r = g.edge_ref(e).unwrap();
        assert_eq!((*r.payload, r.src, r.dst), ("ab", a, b));
        let n = g.node_ref(a).unwrap();
        assert_eq!((n.out_degree, n.in_degree), (1, 0));
    }

    #[test]
    fn map_rebuilds_structure() {
        let (g, _) = diamond();
        let mapped = g.map(|_, n| n.to_uppercase(), |_, e| e.len());
        assert_eq!(mapped.node_count(), 4);
        assert_eq!(mapped.edge_count(), 4);
        assert!(mapped.nodes().any(|n| n.payload == "A"));
        assert!(mapped.edges().all(|e| *e.payload == 2));
    }

    #[test]
    fn serde_roundtrip_preserves_ids() {
        let (g, ids) = diamond();
        let json = serde_json::to_string(&g).unwrap();
        // Deserialize into owned payloads: borrowed (zero-copy) payload
        // deserialization is not part of the supported surface.
        let back: Graph<String, String> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.node_count(), 4);
        assert_eq!(back.node(ids[0]).map(String::as_str), Some("a"));
        assert_eq!(back.out_degree(ids[0]), 2);
    }
}
