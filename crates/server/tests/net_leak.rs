//! OS-resource leak check for the network front end, isolated in its
//! own test binary so `/proc/self` counts are not polluted by other
//! tests running in the same process.

use good_core::gen::bench_scheme;
use good_core::ops::NodeAddition;
use good_core::pattern::Pattern;
use good_core::program::{Operation, Program};
use good_server::client::Client;
use good_server::net::{NetConfig, NetServer};
use good_server::{Server, ServerConfig};
use good_store::vfs::{FaultPlan, FaultVfs, Vfs};
use good_store::Store;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn count(dir: &str) -> Option<usize> {
    std::fs::read_dir(dir).ok().map(|entries| entries.count())
}

fn start_net() -> NetServer {
    let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(FaultPlan::reliable(5)));
    let store =
        Store::create_with_vfs(vfs, "/leak/db.journal", bench_scheme()).expect("create store");
    let server = Server::start(store, ServerConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    NetServer::start(server, listener, NetConfig::default()).expect("start")
}

fn one_cycle(net: &NetServer, label: &str, polite: bool) {
    let mut client = Client::connect(net.local_addr()).expect("connect");
    client
        .submit_wait(&Program::from_ops([Operation::NodeAdd(NodeAddition::new(
            Pattern::new(),
            label,
            [],
        ))]))
        .expect("commit");
    if polite {
        client.goodbye().expect("goodbye");
    }
}

/// Threads and file descriptors return to baseline after heavy
/// connection churn and a full server lifecycle. Skipped quietly on
/// platforms without procfs.
#[test]
fn churn_and_shutdown_leak_no_threads_or_fds() {
    let (Some(_), Some(_)) = (count("/proc/self/task"), count("/proc/self/fd")) else {
        eprintln!("skipping: /proc not available");
        return;
    };

    // Warm-up lifecycle so lazy one-time allocations (TLS, runtime
    // buffers) don't count against the churn run.
    let net = start_net();
    one_cycle(&net, "Warm", true);
    net.shutdown().expect("warm shutdown");

    let threads_before = count("/proc/self/task").unwrap();
    let fds_before = count("/proc/self/fd").unwrap();

    let net = start_net();
    for i in 0..60 {
        // Mix polite goodbyes with abrupt drops; both must reclaim.
        one_cycle(&net, &format!("Churn{i}"), i % 2 == 0);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while net.active_connections() != 0 || net.server().session_count() != 0 {
        assert!(Instant::now() < deadline, "connections not reclaimed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let store = net.shutdown().expect("shutdown");
    assert_eq!(store.instance().node_count(), 60);
    drop(store);

    // Thread exit is asynchronous after join returns the handle count
    // to us; give the kernel a moment to reap.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let threads_after = count("/proc/self/task").unwrap();
        let fds_after = count("/proc/self/fd").unwrap();
        if threads_after <= threads_before && fds_after <= fds_before + 2 {
            return;
        }
        if Instant::now() >= deadline {
            panic!(
                "leak: threads {threads_before} -> {threads_after}, \
                 fds {fds_before} -> {fds_after}"
            );
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
