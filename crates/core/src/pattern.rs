//! Patterns — the declarative half of every GOOD operation.
//!
//! Section 3 of the paper: "a pattern is a graph used to describe
//! subgraphs in an object base instance over a given scheme. As such, a
//! pattern is syntactically itself an instance over that scheme."
//!
//! [`Pattern`] is that graph. Beyond the paper's core definition it also
//! carries the two *macro* annotations of Section 4.1 that the matcher
//! and macro compiler understand:
//!
//! * **crossed (negated) parts** — nodes and edges whose *absence* is
//!   required (Figure 26). The negation macro of
//!   [`crate::macros::negation`] compiles them away into core
//!   operations; the matcher can also evaluate them directly so the two
//!   routes can be tested against each other.
//! * **printable predicates** — "additional predicates on printable
//!   objects" in the style of QBE condition boxes, e.g. a date range
//!   (explicitly sanctioned as an extension by the paper).
//!
//! Method bodies additionally contain a diamond *method-head node*
//! (Section 3.6); it is represented here and rewritten into an ordinary
//! class node by the method machinery before matching.

use crate::error::{GoodError, Result};
use crate::label::{EdgeKind, Label, RECEIVER_EDGE};
use crate::scheme::Scheme;
use crate::value::Value;
use good_graph::dot::{DotEdge, DotNode, Shape};
use good_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A predicate over printable constants, attached to a pattern node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ValuePredicate {
    /// Exactly this value (equivalent to a print label on the node).
    Eq(Value),
    /// Anything but this value.
    Ne(Value),
    /// Strictly less than (same-type comparison).
    Lt(Value),
    /// Less than or equal.
    Le(Value),
    /// Strictly greater than.
    Gt(Value),
    /// Greater than or equal.
    Ge(Value),
    /// Inclusive range.
    Between(Value, Value),
    /// String containment (strings only).
    Contains(String),
    /// String prefix (strings only).
    StartsWith(String),
    /// Membership in an explicit list.
    OneOf(Vec<Value>),
    /// Conjunction: all sub-predicates must hold.
    All(Vec<ValuePredicate>),
}

impl ValuePredicate {
    /// Evaluate the predicate. Comparisons across different value
    /// domains are `false` (never an error — patterns are filters).
    pub fn matches(&self, value: &Value) -> bool {
        let same = |other: &Value| value.value_type() == other.value_type();
        match self {
            ValuePredicate::Eq(v) => value == v,
            ValuePredicate::Ne(v) => same(v) && value != v,
            ValuePredicate::Lt(v) => same(v) && value < v,
            ValuePredicate::Le(v) => same(v) && value <= v,
            ValuePredicate::Gt(v) => same(v) && value > v,
            ValuePredicate::Ge(v) => same(v) && value >= v,
            ValuePredicate::Between(lo, hi) => same(lo) && same(hi) && value >= lo && value <= hi,
            ValuePredicate::Contains(s) => value.as_str().is_some_and(|v| v.contains(s.as_str())),
            ValuePredicate::StartsWith(s) => {
                value.as_str().is_some_and(|v| v.starts_with(s.as_str()))
            }
            ValuePredicate::OneOf(values) => values.contains(value),
            ValuePredicate::All(predicates) => {
                predicates.iter().all(|predicate| predicate.matches(value))
            }
        }
    }
}

/// What a pattern node stands for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PatternNodeKind {
    /// An ordinary class node (object or printable label).
    Class(Label),
    /// The diamond method-head node of a method body (Section 3.6),
    /// tagged with the method name. Rewritten before matching.
    MethodHead(String),
}

/// Payload of a pattern node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternNode {
    /// Class label or method head.
    pub kind: PatternNodeKind,
    /// Required print value (printable nodes only).
    pub print: Option<Value>,
    /// Optional predicate on the print value (extension, Section 4.1).
    pub predicate: Option<ValuePredicate>,
    /// Crossed node: its absence (together with the other crossed parts)
    /// is required.
    pub negated: bool,
}

/// Payload of a pattern edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternEdge {
    /// The edge label.
    pub label: Label,
    /// Crossed edge: its absence is required.
    pub negated: bool,
}

/// # Example
///
/// The paper's Figure 4 pattern — "an info node, created on Jan 14,
/// 1990, with name Rock which is linked to another info node":
///
/// ```
/// use good_core::pattern::Pattern;
/// use good_core::value::Value;
///
/// let mut pattern = Pattern::new();
/// let info = pattern.node("Info");
/// let date = pattern.printable("Date", Value::date(1990, 1, 14));
/// let name = pattern.printable("String", "Rock");
/// let other = pattern.node("Info");
/// pattern.edge(info, "created", date);
/// pattern.edge(info, "name", name);
/// pattern.edge(info, "links-to", other);
/// assert_eq!(pattern.node_count(), 4);
/// ```
/// A pattern over a scheme.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Pattern {
    graph: Graph<PatternNode, PatternEdge>,
}

impl Pattern {
    /// The empty pattern — it has exactly one (empty) matching in any
    /// instance, which is how Figure 12 adds a single unconditional node.
    pub fn new() -> Self {
        Pattern::default()
    }

    /// Add a class node labeled `label`.
    pub fn node(&mut self, label: impl Into<Label>) -> NodeId {
        self.graph.add_node(PatternNode {
            kind: PatternNodeKind::Class(label.into()),
            print: None,
            predicate: None,
            negated: false,
        })
    }

    /// Add a printable class node that must match the exact `value`.
    pub fn printable(&mut self, label: impl Into<Label>, value: impl Into<Value>) -> NodeId {
        self.graph.add_node(PatternNode {
            kind: PatternNodeKind::Class(label.into()),
            print: Some(value.into()),
            predicate: None,
            negated: false,
        })
    }

    /// Add a printable class node constrained by `predicate`.
    pub fn predicate_node(&mut self, label: impl Into<Label>, predicate: ValuePredicate) -> NodeId {
        self.graph.add_node(PatternNode {
            kind: PatternNodeKind::Class(label.into()),
            print: None,
            predicate: Some(predicate),
            negated: false,
        })
    }

    /// Add a crossed (negated) class node.
    pub fn negated_node(&mut self, label: impl Into<Label>) -> NodeId {
        self.graph.add_node(PatternNode {
            kind: PatternNodeKind::Class(label.into()),
            print: None,
            predicate: None,
            negated: true,
        })
    }

    /// Add a method-head (diamond) node for method `name`.
    pub fn method_head(&mut self, name: impl Into<String>) -> NodeId {
        self.graph.add_node(PatternNode {
            kind: PatternNodeKind::MethodHead(name.into()),
            print: None,
            predicate: None,
            negated: false,
        })
    }

    /// Add an edge `src -λ→ dst`.
    pub fn edge(&mut self, src: NodeId, label: impl Into<Label>, dst: NodeId) {
        self.graph.add_edge(
            src,
            dst,
            PatternEdge {
                label: label.into(),
                negated: false,
            },
        );
    }

    /// Add a crossed (negated) edge `src -λ→ dst`.
    pub fn negated_edge(&mut self, src: NodeId, label: impl Into<Label>, dst: NodeId) {
        self.graph.add_edge(
            src,
            dst,
            PatternEdge {
                label: label.into(),
                negated: true,
            },
        );
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph<PatternNode, PatternEdge> {
        &self.graph
    }

    /// Crate-internal mutable access (the method machinery rewrites
    /// head nodes in place).
    pub(crate) fn graph_mut(&mut self) -> &mut Graph<PatternNode, PatternEdge> {
        &mut self.graph
    }

    /// Number of pattern nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The class label of a pattern node (`None` for method heads or
    /// dead ids).
    pub fn node_label(&self, node: NodeId) -> Option<&Label> {
        match self.graph.node(node).map(|n| &n.kind) {
            Some(PatternNodeKind::Class(label)) => Some(label),
            _ => None,
        }
    }

    /// True if the pattern has crossed nodes or edges.
    pub fn has_negation(&self) -> bool {
        self.graph.nodes().any(|n| n.payload.negated)
            || self.graph.edges().any(|e| e.payload.negated)
    }

    /// True if the pattern contains a method-head node.
    pub fn has_method_head(&self) -> bool {
        self.graph
            .nodes()
            .any(|n| matches!(n.payload.kind, PatternNodeKind::MethodHead(_)))
    }

    /// The ids of all *positive* (non-crossed) class nodes.
    pub fn positive_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .graph
            .nodes()
            .filter(|n| !n.payload.negated)
            .map(|n| n.id)
            .collect();
        nodes.sort();
        nodes
    }

    /// The pattern restricted to its positive part: crossed nodes,
    /// crossed edges, and edges incident to crossed nodes are dropped.
    /// Node ids are preserved (the subgraph reuses this graph's arena
    /// layout via cloning and deletion).
    pub fn positive_part(&self) -> Pattern {
        let mut out = self.clone();
        let doomed: Vec<NodeId> = out
            .graph
            .nodes()
            .filter(|n| n.payload.negated)
            .map(|n| n.id)
            .collect();
        for node in doomed {
            out.graph.remove_node(node);
        }
        let doomed_edges: Vec<_> = out
            .graph
            .edges()
            .filter(|e| e.payload.negated)
            .map(|e| e.id)
            .collect();
        for edge in doomed_edges {
            out.graph.remove_edge(edge);
        }
        out
    }

    /// The pattern with every crossed marker erased — the "complete
    /// pattern" the negation semantics tries to extend a matching to.
    pub fn unnegated(&self) -> Pattern {
        let mut out = self.clone();
        let nodes: Vec<NodeId> = out.graph.node_ids().collect();
        for node in nodes {
            out.graph.node_mut(node).expect("live").negated = false;
        }
        let edges: Vec<_> = out.graph.edge_ids().collect();
        for edge in edges {
            out.graph.edge_mut(edge).expect("live").negated = false;
        }
        out
    }

    /// Validate the pattern against `scheme`: labels known, print values
    /// well-typed, edges licensed by `P`, and functional edges
    /// single-valued per pattern node (a pattern is syntactically an
    /// instance).
    pub fn validate(&self, scheme: &Scheme) -> Result<()> {
        for node in self.graph.nodes() {
            match &node.payload.kind {
                PatternNodeKind::Class(label) => {
                    if !scheme.is_node_label(label) {
                        return Err(GoodError::UnknownNodeLabel(label.clone()));
                    }
                    if let Some(value) = &node.payload.print {
                        let Some(expected) = scheme.printable_type(label) else {
                            return Err(GoodError::InvalidPattern(format!(
                                "object node {label} carries a print value"
                            )));
                        };
                        if value.value_type() != expected {
                            return Err(GoodError::ValueTypeMismatch {
                                label: label.clone(),
                                expected,
                                value: value.clone(),
                            });
                        }
                    }
                    if node.payload.predicate.is_some() && !scheme.is_printable_label(label) {
                        return Err(GoodError::InvalidPattern(format!(
                            "predicate attached to non-printable node {label}"
                        )));
                    }
                }
                PatternNodeKind::MethodHead(_) => {
                    // Validated by the method machinery instead.
                }
            }
        }
        for edge in self.graph.edges() {
            let src = self.graph.node(edge.src).expect("live");
            let dst = self.graph.node(edge.dst).expect("live");
            let label = &edge.payload.label;
            match (&src.kind, &dst.kind) {
                (PatternNodeKind::Class(src_label), PatternNodeKind::Class(dst_label)) => {
                    if !scheme.is_edge_label(label) {
                        return Err(GoodError::UnknownEdgeLabel(label.clone()));
                    }
                    if !scheme.allows(src_label, label, dst_label) {
                        return Err(GoodError::EdgeNotInScheme {
                            src: src_label.clone(),
                            edge: label.clone(),
                            dst: dst_label.clone(),
                        });
                    }
                }
                (PatternNodeKind::MethodHead(_), _) => {
                    // Binding edges from the head are checked by the
                    // method machinery (parameter labels + $recv).
                    if label.as_str() != RECEIVER_EDGE && !scheme.is_edge_label(label) {
                        return Err(GoodError::UnknownEdgeLabel(label.clone()));
                    }
                }
                (_, PatternNodeKind::MethodHead(_)) => {
                    return Err(GoodError::InvalidPattern(
                        "edges may not point at a method-head node".into(),
                    ));
                }
            }
        }
        // Functional single-valuedness inside the pattern.
        for node in self.graph.node_ids() {
            let mut seen: HashMap<&Label, NodeId> = HashMap::new();
            for edge in self.graph.out_edges(node) {
                if edge.payload.negated {
                    continue;
                }
                if scheme.edge_kind(&edge.payload.label) == Some(EdgeKind::Functional) {
                    if let Some(prior) = seen.insert(&edge.payload.label, edge.dst) {
                        if prior != edge.dst {
                            return Err(GoodError::InvalidPattern(format!(
                                "pattern node has two {} (functional) edges to different nodes",
                                edge.payload.label
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Render as Graphviz DOT. Crossed parts are drawn dashed with an
    /// `✗` prefix; method heads are diamonds, as in the paper.
    pub fn to_dot(&self, title: &str, scheme: &Scheme) -> String {
        good_graph::dot::to_dot(
            &self.graph,
            title,
            |_, node| match &node.kind {
                PatternNodeKind::Class(label) => {
                    let mut text = label.as_str().to_string();
                    if let Some(value) = &node.print {
                        text.push('\n');
                        text.push_str(&value.to_string());
                    }
                    if node.negated {
                        text.insert_str(0, "✗ ");
                    }
                    let shape = if scheme.is_printable_label(label) {
                        Shape::Ellipse
                    } else {
                        Shape::Box
                    };
                    DotNode {
                        label: text,
                        shape,
                        bold: false,
                        doubled: false,
                    }
                }
                PatternNodeKind::MethodHead(name) => DotNode {
                    label: name.clone(),
                    shape: Shape::Diamond,
                    bold: false,
                    doubled: false,
                },
            },
            |edge| DotEdge {
                label: if edge.negated {
                    format!("✗ {}", edge.label)
                } else {
                    edge.label.as_str().to_string()
                },
                double_arrow: scheme.edge_kind(&edge.label) == Some(EdgeKind::Multivalued),
                bold: false,
                dashed: edge.negated,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeBuilder;
    use crate::value::ValueType;

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .printable("Date", ValueType::Date)
            .functional("Info", "name", "String")
            .functional("Info", "created", "Date")
            .functional("Info", "modified", "Date")
            .multivalued("Info", "links-to", "Info")
            .build()
    }

    /// The paper's Figure 4 pattern.
    fn figure4() -> Pattern {
        let mut p = Pattern::new();
        let info = p.node("Info");
        let date = p.printable("Date", Value::date(1990, 1, 14));
        let name = p.printable("String", "Rock");
        let other = p.node("Info");
        p.edge(info, "created", date);
        p.edge(info, "name", name);
        p.edge(info, "links-to", other);
        p
    }

    #[test]
    fn figure4_validates() {
        figure4().validate(&scheme()).unwrap();
    }

    #[test]
    fn unknown_labels_rejected() {
        let mut p = Pattern::new();
        p.node("Nope");
        assert!(matches!(
            p.validate(&scheme()),
            Err(GoodError::UnknownNodeLabel(_))
        ));

        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.node("Info");
        p.edge(a, "nope", b);
        assert!(matches!(
            p.validate(&scheme()),
            Err(GoodError::UnknownEdgeLabel(_))
        ));
    }

    #[test]
    fn edge_must_be_in_p() {
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.printable("String", "x");
        p.edge(a, "created", b); // created targets Date, not String
        assert!(matches!(
            p.validate(&scheme()),
            Err(GoodError::EdgeNotInScheme { .. })
        ));
    }

    #[test]
    fn print_value_type_checked() {
        let mut p = Pattern::new();
        p.printable("Date", "not a date");
        assert!(matches!(
            p.validate(&scheme()),
            Err(GoodError::ValueTypeMismatch { .. })
        ));
    }

    #[test]
    fn functional_fan_out_rejected() {
        let mut p = Pattern::new();
        let info = p.node("Info");
        let a = p.printable("String", "x");
        let b = p.printable("String", "y");
        p.edge(info, "name", a);
        p.edge(info, "name", b);
        assert!(matches!(
            p.validate(&scheme()),
            Err(GoodError::InvalidPattern(_))
        ));
    }

    #[test]
    fn multivalued_fan_out_allowed() {
        let mut p = Pattern::new();
        let info = p.node("Info");
        let a = p.node("Info");
        let b = p.node("Info");
        p.edge(info, "links-to", a);
        p.edge(info, "links-to", b);
        p.validate(&scheme()).unwrap();
    }

    #[test]
    fn positive_part_strips_crossed_elements() {
        let mut p = figure4();
        let info = p.positive_nodes()[0];
        let extra = p.negated_node("Info");
        p.edge(info, "links-to", extra);
        let date = p.printable("Date", Value::date(1990, 1, 12));
        p.negated_edge(info, "modified", date);
        assert!(p.has_negation());

        let positive = p.positive_part();
        assert!(!positive.has_negation());
        // crossed node gone, crossed edge gone, its incident edge gone,
        // but the (positive) date node survives even though it was only
        // attached by a crossed edge.
        assert_eq!(positive.node_count(), 5);
        assert_eq!(positive.graph().edge_count(), 3);

        let full = p.unnegated();
        assert!(!full.has_negation());
        assert_eq!(full.node_count(), 6);
        assert_eq!(full.graph().edge_count(), 5);
    }

    #[test]
    fn predicates_evaluate() {
        use ValuePredicate as P;
        assert!(P::Eq(Value::int(3)).matches(&Value::int(3)));
        assert!(!P::Eq(Value::int(3)).matches(&Value::int(4)));
        assert!(P::Ne(Value::int(3)).matches(&Value::int(4)));
        assert!(!P::Ne(Value::int(3)).matches(&Value::str("x"))); // cross-type: false
        assert!(P::Lt(Value::int(5)).matches(&Value::int(4)));
        assert!(P::Ge(Value::int(5)).matches(&Value::int(5)));
        assert!(
            P::Between(Value::date(1990, 1, 1), Value::date(1990, 1, 31))
                .matches(&Value::date(1990, 1, 14))
        );
        assert!(
            !P::Between(Value::date(1990, 1, 1), Value::date(1990, 1, 31))
                .matches(&Value::date(1990, 2, 1))
        );
        assert!(P::Contains("oyd".into()).matches(&Value::str("Pinkfloyd")));
        assert!(P::StartsWith("Pink".into()).matches(&Value::str("Pinkfloyd")));
        assert!(!P::StartsWith("Pink".into()).matches(&Value::int(9)));
        assert!(P::OneOf(vec![Value::int(1), Value::int(2)]).matches(&Value::int(2)));
        let conj = P::All(vec![P::Ge(Value::int(2)), P::Lt(Value::int(5))]);
        assert!(conj.matches(&Value::int(3)));
        assert!(!conj.matches(&Value::int(5)));
        assert!(P::All(vec![]).matches(&Value::int(0))); // empty conjunction is true
    }

    #[test]
    fn predicate_on_object_node_rejected() {
        let mut p = Pattern::new();
        p.predicate_node("Info", ValuePredicate::Eq(Value::int(1)));
        assert!(matches!(
            p.validate(&scheme()),
            Err(GoodError::InvalidPattern(_))
        ));
    }

    #[test]
    fn method_head_edges_validate() {
        let mut p = Pattern::new();
        let head = p.method_head("Update");
        let info = p.node("Info");
        let date = p.node("Date");
        p.edge(head, crate::label::Label::system(RECEIVER_EDGE), info);
        p.edge(head, "created", date); // any registered label is OK here
        p.validate(&scheme()).unwrap();
        assert!(p.has_method_head());

        // Edges INTO a method head are malformed.
        let mut bad = Pattern::new();
        let head = bad.method_head("Update");
        let info = bad.node("Info");
        bad.edge(info, "links-to", head);
        assert!(matches!(
            bad.validate(&scheme()),
            Err(GoodError::InvalidPattern(_))
        ));
    }

    #[test]
    fn dot_marks_negation() {
        let mut p = figure4();
        let info = p.positive_nodes()[0];
        let date = p.printable("Date", Value::date(1990, 1, 12));
        p.negated_edge(info, "modified", date);
        let dot = p.to_dot("pattern", &scheme());
        assert!(dot.contains("✗ modified"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn serde_roundtrip() {
        let p = figure4();
        let json = serde_json::to_string(&p).unwrap();
        let back: Pattern = serde_json::from_str(&json).unwrap();
        assert_eq!(back.node_count(), p.node_count());
        back.validate(&scheme()).unwrap();
    }
}
