//! The per-figure reproduction index (DESIGN.md F1–F31): one test per
//! paper artifact, spanning crates. These are intentionally terse —
//! deeper assertions live in `good-hypermedia`'s unit tests — and serve
//! as the canonical "is every figure reproduced?" checklist.

use good::hypermedia::{build_instance, build_versions_instance, figures};
use good::model::label::Label;
use good::model::matching::{find_matchings, find_matchings_naive};
use good::model::program::Env;
use good::model::value::Value;

#[test]
fn f1_scheme_builds_and_validates() {
    let scheme = good::hypermedia::build_scheme();
    scheme.validate().unwrap();
    assert!(!scheme.to_dot("fig1").is_empty());
}

#[test]
fn f2_f3_instance_validates_with_shared_printables() {
    let (db, _) = build_instance();
    db.validate().unwrap();
    assert_eq!(db.label_count(&Label::new("Date")), 2);
}

#[test]
fn f4_f5_pattern_has_two_matchings() {
    let (db, h) = build_instance();
    let (pattern, nodes) = figures::fig4_pattern();
    let matchings = find_matchings(&pattern, &db).unwrap();
    assert_eq!(matchings.len(), 2);
    let others: Vec<_> = matchings.iter().map(|m| m.image(nodes.other)).collect();
    assert!(others.contains(&h.doors) && others.contains(&h.pinkfloyd));
    assert_eq!(find_matchings_naive(&pattern, &db).unwrap(), matchings);
}

#[test]
fn f6_f7_node_addition_tags_targets() {
    let (mut db, _) = build_instance();
    let report = figures::fig6_node_addition().apply(&mut db).unwrap();
    assert_eq!(report.created_nodes.len(), 2);
    db.validate().unwrap();
}

#[test]
fn f8_aggregate_pairs() {
    let (mut db, _) = build_instance();
    let report = figures::fig8_node_addition().apply(&mut db).unwrap();
    assert_eq!((report.matchings, report.created_nodes.len()), (4, 4));
}

#[test]
fn f10_f11_edge_addition() {
    let (mut db, _) = build_instance();
    let report = figures::fig10_edge_addition().apply(&mut db).unwrap();
    assert_eq!(report.edges_added, 2);
    db.validate().unwrap();
}

#[test]
fn f12_f13_set_building() {
    let (mut db, h) = build_instance();
    let set = figures::figs12_13_build_set(&mut db, &mut Env::new()).unwrap();
    let members: Vec<_> = db.targets(set, &Label::new("contains")).collect();
    assert!(members.contains(&h.rock_new) && members.contains(&h.pinkfloyd));
}

#[test]
fn f14_f15_node_deletion_isolates_mozart() {
    let (mut db, h) = build_instance();
    figures::fig14_node_deletion().apply(&mut db).unwrap();
    assert!(!db.contains_node(h.classical));
    assert!(db.contains_node(h.mozart));
    assert_eq!(db.graph().in_degree(h.mozart), 0);
}

#[test]
fn f16_update_modified_date() {
    let (mut db, h) = build_instance();
    figures::fig16_update(&mut db, &mut Env::new()).unwrap();
    let date = db
        .functional_target(h.music_history, &Label::new("modified"))
        .unwrap();
    assert_eq!(db.print_value(date), Some(&Value::date(1990, 1, 16)));
}

#[test]
fn f17_f19_abstraction_groups() {
    let (mut db, h) = build_versions_instance();
    for ab in figures::fig18_abstractions() {
        ab.apply(&mut db).unwrap();
    }
    assert_eq!(db.label_count(&Label::new("Same-Info")), 3);
    let contains = Label::new("contains");
    let g0: Vec<_> = db.sources(h.documents[0], &contains).collect();
    let g1: Vec<_> = db.sources(h.documents[1], &contains).collect();
    assert_eq!(g0, g1);
}

#[test]
fn f20_f21_update_method() {
    let (mut db, h) = build_instance();
    db.add_printable("Date", Value::date(1990, 1, 16)).unwrap();
    let mut env = Env::new();
    env.register(figures::fig20_update_method());
    good::model::method::execute_call(&figures::fig21_update_call(), &mut db, &mut env).unwrap();
    let date = db
        .functional_target(h.music_history, &Label::new("modified"))
        .unwrap();
    assert_eq!(db.print_value(date), Some(&Value::date(1990, 1, 16)));
    assert_eq!(db.scheme(), &good::hypermedia::build_scheme());
}

#[test]
fn f22_remove_old_versions_recursion() {
    let (mut db, h) = build_instance();
    let mut env = Env::new();
    figures::remove_rock_old_versions(&mut db, &mut env, &h).unwrap();
    assert!(!db.contains_node(h.rock_old));
    assert!(!db.contains_node(h.version));
    assert!(db.contains_node(h.rock_new));
}

#[test]
fn f23_f25_elapsed_days_method() {
    let (mut db, h) = build_instance();
    figures::method_e_apply(&mut db, &mut Env::new()).unwrap();
    let days = db
        .functional_target(h.music_history, &Label::new("days-unmod"))
        .unwrap();
    assert_eq!(db.print_value(days), Some(&Value::int(2)));
    assert_eq!(db.label_count(&Label::new("Elapsed")), 0);
}

#[test]
fn f26_f27_negation_macro_equivalence() {
    let (mut db, _) = build_instance();
    let (pattern, _, _) = figures::fig26_pattern();
    let direct = find_matchings(&pattern, &db).unwrap();
    let expansion = figures::fig27_expansion();
    let via_macro = expansion.evaluate(&mut db, &mut Env::new()).unwrap();
    assert_eq!(via_macro, direct);
}

#[test]
fn f28_f29_transitive_closure_method() {
    let (mut db, h) = build_instance();
    let (method, call) = figures::figs28_29_closure();
    let mut env = Env::new();
    env.register(method);
    good::model::method::execute_call(&call, &mut db, &mut env).unwrap();
    let rec = Label::new("rec-links-to");
    assert!(db.has_edge(h.music_history, &rec, h.mozart));
    assert!(db.has_edge(h.music_history, &rec, h.pinkfloyd_contents[1]));
}

#[test]
fn f30_f31_inheritance_query() {
    let (db, h) = build_instance();
    let results = figures::fig30_query(&db).unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].0, h.reference);
    assert_eq!(
        db.print_value(results[0].1),
        Some(&Value::str("The Beatles"))
    );
}
