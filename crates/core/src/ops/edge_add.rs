//! Edge addition (`EA`, Section 3.2).
//!
//! `EA[J, S, I, {(m1, λ1, m1'), ..., (mn, λn, mn')}]` adds, for every
//! matching `i`, the edges `(i(mℓ), λℓ, i(mℓ'))`.
//!
//! The operation is **partial**: "the result of an edge addition is not
//! defined if the addition of the required edges would yield different
//! edges (i) with the same label and leaving the same node and (ii) that
//! either are functional, or arrive in nodes with different labels."
//! The paper notes that statically checking this is undecidable, so the
//! intended behaviour is a run-time check — we perform it *before*
//! mutating, so a failed edge addition leaves the instance untouched.

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::label::{EdgeKind, Label};
use crate::matching::find_matchings;
use crate::ops::OpReport;
use crate::pattern::Pattern;
use good_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One bold edge of an edge addition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeToAdd {
    /// Source pattern node.
    pub src: NodeId,
    /// Edge label (may be new to the scheme).
    pub label: Label,
    /// The label's multiplicity kind. Checked against the scheme when
    /// the label is already registered; used to register it otherwise
    /// (the paper's `S′` must know which universe the new label joins).
    pub kind: EdgeKind,
    /// Destination pattern node.
    pub dst: NodeId,
}

/// An edge addition operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeAddition {
    /// The source pattern `J`.
    pub pattern: Pattern,
    /// The bold edges to add per matching.
    pub edges: Vec<EdgeToAdd>,
}

impl EdgeAddition {
    /// Construct an edge addition.
    pub fn new(pattern: Pattern, edges: impl IntoIterator<Item = EdgeToAdd>) -> Self {
        EdgeAddition {
            pattern,
            edges: edges.into_iter().collect(),
        }
    }

    /// Convenience: a single functional bold edge.
    pub fn functional(pattern: Pattern, src: NodeId, label: impl Into<Label>, dst: NodeId) -> Self {
        EdgeAddition::new(
            pattern,
            [EdgeToAdd {
                src,
                label: label.into(),
                kind: EdgeKind::Functional,
                dst,
            }],
        )
    }

    /// Convenience: a single multivalued bold edge.
    pub fn multivalued(
        pattern: Pattern,
        src: NodeId,
        label: impl Into<Label>,
        dst: NodeId,
    ) -> Self {
        EdgeAddition::new(
            pattern,
            [EdgeToAdd {
                src,
                label: label.into(),
                kind: EdgeKind::Multivalued,
                dst,
            }],
        )
    }

    /// Apply to `db`, evolving scheme and instance. On error the
    /// instance graph is unchanged (the scheme may have been minimally
    /// extended, which is harmless and matches the paper: `S′` depends
    /// only on the operation).
    pub fn apply(&self, db: &mut Instance) -> Result<OpReport> {
        // Validate bold endpoints.
        for edge in &self.edges {
            for node in [edge.src, edge.dst] {
                let positive = self
                    .pattern
                    .graph()
                    .node(node)
                    .map(|data| !data.negated)
                    .unwrap_or(false);
                if !positive || self.pattern.node_label(node).is_none() {
                    return Err(GoodError::NodeNotInPattern(format!("{node:?}")));
                }
            }
        }

        let matchings = find_matchings(&self.pattern, db)?;

        // Minimal scheme extension.
        for edge in &self.edges {
            if let Some(registered) = db.scheme().edge_kind(&edge.label) {
                if registered != edge.kind {
                    return Err(GoodError::EdgeKindMismatch {
                        label: edge.label.clone(),
                        registered,
                        used: edge.kind,
                    });
                }
            } else {
                db.scheme_mut()
                    .add_edge_label(edge.label.clone(), edge.kind)?;
            }
            let src_label = self
                .pattern
                .node_label(edge.src)
                .expect("validated")
                .clone();
            let dst_label = self
                .pattern
                .node_label(edge.dst)
                .expect("validated")
                .clone();
            db.scheme_mut()
                .add_triple(src_label, edge.label.clone(), dst_label)?;
        }

        // Gather the concrete edges (a set: duplicates collapse).
        let mut to_add: BTreeSet<(NodeId, Label, NodeId)> = BTreeSet::new();
        for matching in &matchings {
            for edge in &self.edges {
                to_add.insert((
                    matching.image(edge.src),
                    edge.label.clone(),
                    matching.image(edge.dst),
                ));
            }
        }

        // Pre-mutation consistency check (the "result is undefined"
        // conditions), against existing ∪ new edges.
        let mut grouped: BTreeMap<(NodeId, &Label), BTreeSet<NodeId>> = BTreeMap::new();
        for (src, label, dst) in &to_add {
            grouped.entry((*src, label)).or_default().insert(*dst);
        }
        for ((src, label), mut targets) in grouped {
            targets.extend(db.targets(src, label));
            let kind = db.scheme().edge_kind(label).expect("registered above");
            if kind == EdgeKind::Functional && targets.len() > 1 {
                return Err(GoodError::FunctionalConflict {
                    edge: label.clone(),
                    src: format!("{src:?}"),
                });
            }
            let labels: BTreeSet<&Label> = targets
                .iter()
                .map(|t| db.node_label(*t).expect("live"))
                .collect();
            if labels.len() > 1 {
                let mut iter = labels.into_iter();
                return Err(GoodError::TargetLabelConflict {
                    edge: label.clone(),
                    existing: iter.next().expect("nonempty").clone(),
                    new: iter.next().expect("two").clone(),
                });
            }
        }

        let mut report = OpReport {
            matchings: matchings.len(),
            ..OpReport::default()
        };
        for (src, label, dst) in to_add {
            if !db.has_edge(src, &label, dst) {
                db.add_edge(src, label, dst)?;
                report.edges_added += 1;
            }
        }
        db.debug_assert_indexes();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::NodeAddition;
    use crate::scheme::{Scheme, SchemeBuilder};
    use crate::value::{Value, ValueType};

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .object("Data")
            .printable("String", ValueType::Str)
            .printable("Date", ValueType::Date)
            .functional("Info", "name", "String")
            .functional("Info", "created", "Date")
            .functional("Data", "isa", "Info")
            .multivalued("Info", "links-to", "Info")
            .build()
    }

    /// Pinkfloyd(Jan 14) links to two infos which are Data nodes.
    fn pinkfloyd_instance() -> (Instance, NodeId, [NodeId; 2]) {
        let mut db = Instance::new(scheme());
        let floyd = db.add_object("Info").unwrap();
        let name = db.add_printable("String", "Pinkfloyd").unwrap();
        let date = db.add_printable("Date", Value::date(1990, 1, 14)).unwrap();
        db.add_edge(floyd, "name", name).unwrap();
        db.add_edge(floyd, "created", date).unwrap();
        let mut data_infos = [floyd; 2];
        for slot in &mut data_infos {
            let info = db.add_object("Info").unwrap();
            let data = db.add_object("Data").unwrap();
            db.add_edge(data, "isa", info).unwrap();
            db.add_edge(floyd, "links-to", info).unwrap();
            *slot = data;
        }
        (db, floyd, data_infos)
    }

    /// Figure 10: add `data-creation` from each Data of Pinkfloyd's
    /// linked infos to Pinkfloyd's creation date.
    fn figure10() -> EdgeAddition {
        let mut p = Pattern::new();
        let data = p.node("Data");
        let target = p.node("Info");
        let floyd = p.node("Info");
        let date = p.printable("Date", Value::date(1990, 1, 14));
        let name = p.printable("String", "Pinkfloyd");
        p.edge(data, "isa", target);
        p.edge(floyd, "links-to", target);
        p.edge(floyd, "created", date);
        p.edge(floyd, "name", name);
        EdgeAddition::functional(p, data, "data-creation", date)
    }

    #[test]
    fn figure10_adds_two_edges() {
        let (mut db, _, datas) = pinkfloyd_instance();
        let report = figure10().apply(&mut db).unwrap();
        assert_eq!(report.matchings, 2);
        assert_eq!(report.edges_added, 2);
        let label = Label::new("data-creation");
        for data in datas {
            let target = db.functional_target(data, &label).unwrap();
            assert_eq!(db.print_value(target), Some(&Value::date(1990, 1, 14)));
        }
        assert!(db.scheme().allows(&"Data".into(), &label, &"Date".into()));
        db.validate().unwrap();
    }

    #[test]
    fn edge_addition_is_idempotent() {
        let (mut db, _, _) = pinkfloyd_instance();
        figure10().apply(&mut db).unwrap();
        let before = db.edge_count();
        let report = figure10().apply(&mut db).unwrap();
        assert_eq!(report.edges_added, 0);
        assert_eq!(db.edge_count(), before);
    }

    #[test]
    fn figures_12_13_build_a_set() {
        // Step 1 (Fig 12): a single set node. Step 2 (Fig 13): connect
        // all infos created Jan 14 1990 with a multivalued edge.
        let (mut db, floyd, _) = pinkfloyd_instance();
        NodeAddition::new(Pattern::new(), "Created-Jan-14", [])
            .apply(&mut db)
            .unwrap();

        let mut p = Pattern::new();
        let set = p.node("Created-Jan-14");
        let info = p.node("Info");
        let date = p.printable("Date", Value::date(1990, 1, 14));
        p.edge(info, "created", date);
        let ea = EdgeAddition::multivalued(p, set, "contains", info);
        let report = ea.apply(&mut db).unwrap();
        assert_eq!(report.edges_added, 1);
        let set_node = db
            .nodes_with_label(&"Created-Jan-14".into())
            .next()
            .unwrap();
        let members: Vec<NodeId> = db.targets(set_node, &"contains".into()).collect();
        assert_eq!(members, vec![floyd]);
        db.validate().unwrap();
    }

    #[test]
    fn functional_conflict_is_detected_before_mutation() {
        // Adding a functional edge from ONE node to TWO different dates.
        let (mut db, floyd, _) = pinkfloyd_instance();
        let other_date = db.add_printable("Date", Value::date(1990, 1, 12)).unwrap();
        // Give the second date an incoming edge so the pattern can reach it.
        let second_info = db.add_object("Info").unwrap();
        db.add_edge(second_info, "created", other_date).unwrap();
        let _ = floyd;

        // Pattern: one fixed Info (Pinkfloyd) and any Date reachable as
        // a created date of any info — two matchings, one target each.
        let mut p = Pattern::new();
        let fixed = p.node("Info");
        let name = p.printable("String", "Pinkfloyd");
        p.edge(fixed, "name", name);
        let any_info = p.node("Info");
        let any_date = p.node("Date");
        p.edge(any_info, "created", any_date);
        let ea = EdgeAddition::functional(p, fixed, "latest", any_date);

        let (nodes, edges) = (db.node_count(), db.edge_count());
        let err = ea.apply(&mut db).unwrap_err();
        assert!(matches!(err, GoodError::FunctionalConflict { .. }));
        // The instance graph is untouched.
        assert_eq!((db.node_count(), db.edge_count()), (nodes, edges));
        db.validate().unwrap();
    }

    #[test]
    fn target_label_conflict_detected() {
        let s = SchemeBuilder::new()
            .object("A")
            .object("B")
            .object("C")
            .multivalued("A", "to-b", "B")
            .multivalued("A", "to-c", "C")
            .build();
        let mut db = Instance::new(s);
        let a = db.add_object("A").unwrap();
        let b = db.add_object("B").unwrap();
        let c = db.add_object("C").unwrap();
        db.add_edge(a, "to-b", b).unwrap();
        db.add_edge(a, "to-c", c).unwrap();

        // One EA adding `m` edges from A to both a B node and a C node.
        let mut p = Pattern::new();
        let pa = p.node("A");
        let pb = p.node("B");
        let pc = p.node("C");
        p.edge(pa, "to-b", pb);
        p.edge(pa, "to-c", pc);
        let ea = EdgeAddition::new(
            p,
            [
                EdgeToAdd {
                    src: pa,
                    label: Label::new("m"),
                    kind: EdgeKind::Multivalued,
                    dst: pb,
                },
                EdgeToAdd {
                    src: pa,
                    label: Label::new("m"),
                    kind: EdgeKind::Multivalued,
                    dst: pc,
                },
            ],
        );
        let err = ea.apply(&mut db).unwrap_err();
        assert!(matches!(err, GoodError::TargetLabelConflict { .. }));
        db.validate().unwrap();
    }

    #[test]
    fn kind_mismatch_with_registered_label_rejected() {
        let (mut db, _, _) = pinkfloyd_instance();
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.node("Info");
        p.edge(a, "links-to", b);
        // links-to is multivalued in the scheme; claim functional.
        let ea = EdgeAddition::functional(p, b, "links-to", a);
        assert!(matches!(
            ea.apply(&mut db),
            Err(GoodError::EdgeKindMismatch { .. })
        ));
    }

    #[test]
    fn bold_endpoints_must_be_pattern_nodes() {
        let (mut db, _, _) = pinkfloyd_instance();
        let mut foreign = Pattern::new();
        let f = foreign.node("Info");
        let ea = EdgeAddition::functional(Pattern::new(), f, "x", f);
        assert!(matches!(
            ea.apply(&mut db),
            Err(GoodError::NodeNotInPattern(_))
        ));
    }

    #[test]
    fn conflict_with_preexisting_functional_edge() {
        // floyd already has created -> Jan 14; adding created -> Jan 12
        // must fail even though the new edges are conflict-free among
        // themselves.
        let (mut db, _, _) = pinkfloyd_instance();
        db.add_printable("Date", Value::date(1990, 1, 12)).unwrap();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.printable("String", "Pinkfloyd");
        let date = p.printable("Date", Value::date(1990, 1, 12));
        p.edge(info, "name", name);
        let ea = EdgeAddition::functional(p, info, "created", date);
        assert!(matches!(
            ea.apply(&mut db),
            Err(GoodError::FunctionalConflict { .. })
        ));
    }
}
