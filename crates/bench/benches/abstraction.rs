//! E3 — abstraction scaling over group structure: many small groups vs
//! few large groups. Validates that duplicate elimination is driven by
//! β-set hashing (cost ≈ Σ|β-sets|), not pairwise comparison (≈ n²).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use good_bench::grouped_instance;
use good_core::ops::Abstraction;
use good_core::pattern::Pattern;
use std::time::Duration;

fn abstraction() -> (Pattern, good_graph::NodeId) {
    let mut p = Pattern::new();
    let info = p.node("Info");
    (p, info)
}

fn bench_group_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3/group-count");
    // Constant total population (~240 members), varying partitioning.
    for groups in [4usize, 16, 64] {
        let members = 240 / groups;
        group.bench_with_input(BenchmarkId::from_parameter(groups), &groups, |b, _| {
            b.iter_batched(
                || grouped_instance(groups, members),
                |mut db| {
                    let (p, info) = abstraction();
                    Abstraction::new(p, info, "Grp", "member", "links-to")
                        .apply(&mut db)
                        .expect("applies")
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_population(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3/population");
    for members in [10usize, 40, 160] {
        group.bench_with_input(
            BenchmarkId::from_parameter(members * 8),
            &members,
            |b, &members| {
                b.iter_batched(
                    || grouped_instance(8, members),
                    |mut db| {
                        let (p, info) = abstraction();
                        Abstraction::new(p, info, "Grp", "member", "links-to")
                            .apply(&mut db)
                            .expect("applies")
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_group_count, bench_population
}
criterion_main!(benches);
