//! Programs — sequences of GOOD operations — and the execution
//! environment.
//!
//! "In GOOD, basic operations are applied in a predetermined order
//! (possibly within method executions), and, importantly, work on every
//! matching of the pattern, in parallel" (Section 5). [`Program`] is
//! that predetermined order; [`Env`] carries the method registry and a
//! fuel bound that makes divergent recursion detectable (the full
//! language simulates Turing machines, so termination cannot be checked
//! statically).

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::method::{execute_call, Method, MethodCall};
use crate::ops::{Abstraction, EdgeAddition, EdgeDeletion, NodeAddition, NodeDeletion, OpReport};
use crate::pattern::Pattern;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One step of a GOOD program: a basic operation or a method call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Operation {
    /// Node addition (`NA`).
    NodeAdd(NodeAddition),
    /// Edge addition (`EA`).
    EdgeAdd(EdgeAddition),
    /// Node deletion (`ND`).
    NodeDel(NodeDeletion),
    /// Edge deletion (`ED`).
    EdgeDel(EdgeDeletion),
    /// Abstraction (`AB`).
    Abstract(Abstraction),
    /// Method call (`MC`).
    Call(MethodCall),
}

impl Operation {
    /// The operation's source pattern.
    pub fn pattern(&self) -> &Pattern {
        match self {
            Operation::NodeAdd(op) => &op.pattern,
            Operation::EdgeAdd(op) => &op.pattern,
            Operation::NodeDel(op) => &op.pattern,
            Operation::EdgeDel(op) => &op.pattern,
            Operation::Abstract(op) => &op.pattern,
            Operation::Call(op) => &op.pattern,
        }
    }

    /// Mutable access to the source pattern (used by the method
    /// machinery to graft frame nodes).
    pub(crate) fn pattern_mut(&mut self) -> &mut Pattern {
        match self {
            Operation::NodeAdd(op) => &mut op.pattern,
            Operation::EdgeAdd(op) => &mut op.pattern,
            Operation::NodeDel(op) => &mut op.pattern,
            Operation::EdgeDel(op) => &mut op.pattern,
            Operation::Abstract(op) => &mut op.pattern,
            Operation::Call(op) => &mut op.pattern,
        }
    }

    /// A short mnemonic, as in the paper (`NA`, `EA`, `ND`, `ED`, `AB`,
    /// `MC`).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Operation::NodeAdd(_) => "NA",
            Operation::EdgeAdd(_) => "EA",
            Operation::NodeDel(_) => "ND",
            Operation::EdgeDel(_) => "ED",
            Operation::Abstract(_) => "AB",
            Operation::Call(_) => "MC",
        }
    }

    /// Apply this operation to `db` within `env`.
    pub fn apply(&self, db: &mut Instance, env: &mut Env) -> Result<OpReport> {
        env.burn_fuel()?;
        match self {
            Operation::NodeAdd(op) => op.apply(db),
            Operation::EdgeAdd(op) => op.apply(db),
            Operation::NodeDel(op) => op.apply(db),
            Operation::EdgeDel(op) => op.apply(db),
            Operation::Abstract(op) => op.apply(db),
            Operation::Call(op) => execute_call(op, db, env),
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::NodeAdd(op) => write!(
                f,
                "NA[{} node(s), add {} with {} bold edge(s)]",
                op.pattern.node_count(),
                op.label,
                op.edges.len()
            ),
            Operation::EdgeAdd(op) => write!(
                f,
                "EA[{} node(s), add {} bold edge(s)]",
                op.pattern.node_count(),
                op.edges.len()
            ),
            Operation::NodeDel(op) => {
                write!(f, "ND[{} node(s)]", op.pattern.node_count())
            }
            Operation::EdgeDel(op) => write!(
                f,
                "ED[{} node(s), delete {} edge(s)]",
                op.pattern.node_count(),
                op.edges.len()
            ),
            Operation::Abstract(op) => write!(
                f,
                "AB[{} node(s), {} per {} via {}]",
                op.pattern.node_count(),
                op.group_label,
                op.key_edge,
                op.member_edge
            ),
            Operation::Call(op) => write!(f, "MC[{}]", op.method),
        }
    }
}

/// The execution environment: registered methods plus a fuel bound.
#[derive(Debug, Clone)]
pub struct Env {
    methods: HashMap<String, Method>,
    fuel: u64,
    budget: u64,
    frame_counter: u64,
}

/// Default fuel: generous for any reasonable program, small enough that
/// a divergent recursion fails in well under a second.
pub const DEFAULT_FUEL: u64 = 100_000;

impl Default for Env {
    fn default() -> Self {
        Env::with_fuel(DEFAULT_FUEL)
    }
}

impl Env {
    /// An environment with the default fuel and no methods.
    pub fn new() -> Self {
        Env::default()
    }

    /// An environment with an explicit fuel budget.
    pub fn with_fuel(fuel: u64) -> Self {
        Env {
            methods: HashMap::new(),
            fuel,
            budget: fuel,
            frame_counter: 0,
        }
    }

    /// Register a method under its specification name. Replaces any
    /// previous definition with the same name.
    pub fn register(&mut self, method: Method) {
        self.methods.insert(method.spec.name.clone(), method);
    }

    /// Look up a method by name.
    pub fn method(&self, name: &str) -> Result<&Method> {
        self.methods
            .get(name)
            .ok_or_else(|| GoodError::UnknownMethod(name.to_string()))
    }

    /// Consume one unit of fuel. Public so that macro layers and system
    /// methods built outside this crate can participate in the fuel
    /// accounting.
    pub fn burn_fuel(&mut self) -> Result<()> {
        if self.fuel == 0 {
            return Err(GoodError::OutOfFuel {
                budget: self.budget,
            });
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Remaining fuel (for diagnostics).
    pub fn fuel_left(&self) -> u64 {
        self.fuel
    }

    /// Reset fuel to the original budget.
    pub fn refuel(&mut self) {
        self.fuel = self.budget;
    }

    /// A fresh, unique frame counter value for method-call frame labels.
    pub(crate) fn next_frame_id(&mut self) -> u64 {
        let id = self.frame_counter;
        self.frame_counter += 1;
        id
    }
}

/// A sequence of operations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Program {
    ops: Vec<Operation>,
}

impl Program {
    /// The empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Build from operations.
    pub fn from_ops(ops: impl IntoIterator<Item = Operation>) -> Self {
        Program {
            ops: ops.into_iter().collect(),
        }
    }

    /// Append an operation.
    pub fn push(&mut self, op: Operation) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The operations in order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the program has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Run all operations in order, merging their reports. Stops at the
    /// first error (the paper treats a failing edge addition as an
    /// undefined result for the whole program).
    pub fn apply(&self, db: &mut Instance, env: &mut Env) -> Result<OpReport> {
        let mut total = OpReport::default();
        for op in &self.ops {
            let report = op.apply(db, env)?;
            total.absorb(&report);
        }
        Ok(total)
    }

    /// Run the program in **query mode** (Section 3's "whether this
    /// latter database graph is only a temporary entity or actually
    /// replaces the original database graph depends on whether the
    /// transformation represents, e.g., a query or an update"): the
    /// program is applied to a copy, the original stays untouched, and
    /// the resulting temporary instance is returned.
    pub fn apply_as_query(&self, db: &Instance, env: &mut Env) -> Result<(Instance, OpReport)> {
        let mut temporary = db.clone();
        let report = self.apply(&mut temporary, env)?;
        Ok((temporary, report))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (index, op) in self.ops.iter().enumerate() {
            writeln!(f, "{:>3}. {op}", index + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::NodeAddition;
    use crate::scheme::SchemeBuilder;
    use crate::value::ValueType;

    fn db() -> Instance {
        let scheme = SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .functional("Info", "name", "String")
            .build();
        let mut db = Instance::new(scheme);
        let info = db.add_object("Info").unwrap();
        let s = db.add_printable("String", "x").unwrap();
        db.add_edge(info, "name", s).unwrap();
        db
    }

    #[test]
    fn program_runs_operations_in_order() {
        let mut db = db();
        let mut env = Env::new();
        let mut program = Program::new();
        // Tag every Info, then tag every Tag.
        let mut p = Pattern::new();
        let info = p.node("Info");
        program.push(Operation::NodeAdd(NodeAddition::new(
            p,
            "Tag",
            [(crate::label::Label::new("of"), info)],
        )));
        let mut p2 = Pattern::new();
        let tag = p2.node("Tag");
        program.push(Operation::NodeAdd(NodeAddition::new(
            p2,
            "Meta",
            [(crate::label::Label::new("over"), tag)],
        )));
        let report = program.apply(&mut db, &mut env).unwrap();
        assert_eq!(report.created_nodes.len(), 2);
        assert_eq!(db.label_count(&"Tag".into()), 1);
        assert_eq!(db.label_count(&"Meta".into()), 1);
    }

    #[test]
    fn query_mode_leaves_the_original_untouched() {
        let original = db();
        let mut env = Env::new();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let program = Program::from_ops([Operation::NodeAdd(NodeAddition::new(
            p,
            "Answer",
            [(crate::label::Label::new("of"), info)],
        ))]);
        let (result, report) = program.apply_as_query(&original, &mut env).unwrap();
        assert_eq!(report.created_nodes.len(), 1);
        assert_eq!(result.label_count(&"Answer".into()), 1);
        // The original knows nothing of Answer — not even its label.
        assert_eq!(original.label_count(&"Answer".into()), 0);
        assert!(!original.scheme().is_object_label(&"Answer".into()));
    }

    #[test]
    fn fuel_exhaustion_reported() {
        let mut db = db();
        let mut env = Env::with_fuel(1);
        let program = Program::from_ops([
            Operation::NodeAdd(NodeAddition::new(Pattern::new(), "A", [])),
            Operation::NodeAdd(NodeAddition::new(Pattern::new(), "B", [])),
        ]);
        let err = program.apply(&mut db, &mut env).unwrap_err();
        assert!(matches!(err, GoodError::OutOfFuel { budget: 1 }));
        env.refuel();
        assert_eq!(env.fuel_left(), 1);
    }

    #[test]
    fn unknown_method_lookup() {
        let env = Env::new();
        assert!(matches!(
            env.method("nope"),
            Err(GoodError::UnknownMethod(_))
        ));
    }

    #[test]
    fn display_lists_steps() {
        let program = Program::from_ops([Operation::NodeAdd(NodeAddition::new(
            Pattern::new(),
            "A",
            [],
        ))]);
        let text = program.to_string();
        assert!(text.contains("1. NA["));
    }

    #[test]
    fn empty_program_is_noop() {
        let mut instance = db();
        let before = instance.node_count();
        Program::new()
            .apply(&mut instance, &mut Env::new())
            .unwrap();
        assert_eq!(instance.node_count(), before);
    }
}
