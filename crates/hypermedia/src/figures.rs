//! One constructor per operation figure of the paper (Figures 4–31),
//! over the hyper-media scheme and instance.
//!
//! Each `figN_*` function returns the pattern/operation/method the
//! figure depicts; the tests in this module (and the repository-level
//! `tests/figures.rs`) assert the outcomes the paper describes, and the
//! `repro` binary regenerates DOT renderings of all of them.

use crate::instance::InstanceHandles;
use good_core::error::Result;
use good_core::instance::Instance;
use good_core::label::Label;
use good_core::macros::negation::{expand_negation, NegationExpansion};
use good_core::macros::recursion::transitive_closure_method;
use good_core::matching::Matching;
use good_core::method::{Method, MethodCall, MethodSpec};
use good_core::ops::{Abstraction, EdgeAddition, EdgeDeletion, NodeAddition, NodeDeletion};
use good_core::pattern::Pattern;
use good_core::program::{Env, Operation};
use good_core::scheme::Scheme;
use good_core::value::Value;
use good_graph::NodeId;

/// Handles into the Figure 4 pattern.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Nodes {
    /// The Rock info node (created Jan 14).
    pub info: NodeId,
    /// The date printable node.
    pub date: NodeId,
    /// The name printable node.
    pub name: NodeId,
    /// The linked info node the query locates.
    pub other: NodeId,
}

/// Figure 4: "an info node, created on Jan 14, 1990, with name Rock
/// which is linked to another info node".
pub fn fig4_pattern() -> (Pattern, Fig4Nodes) {
    let mut p = Pattern::new();
    let info = p.node("Info");
    let date = p.printable("Date", Value::date(1990, 1, 14));
    let name = p.printable("String", "Rock");
    let other = p.node("Info");
    p.edge(info, "created", date);
    p.edge(info, "name", name);
    p.edge(info, "links-to", other);
    (
        p,
        Fig4Nodes {
            info,
            date,
            name,
            other,
        },
    )
}

/// Figure 6: tag the infos located by Figure 4 with new `Rock` nodes
/// connected by `tagged-to` edges.
pub fn fig6_node_addition() -> NodeAddition {
    let (pattern, nodes) = fig4_pattern();
    NodeAddition::new(
        pattern,
        "Rock-Tag",
        [(Label::new("tagged-to"), nodes.other)],
    )
}

/// Figure 8: derive `Pair` aggregates of (parent, child) creation dates
/// for infos named Rock and the infos they link to.
pub fn fig8_node_addition() -> NodeAddition {
    let mut p = Pattern::new();
    let info = p.node("Info");
    let name = p.printable("String", "Rock");
    let parent_date = p.node("Date");
    let other = p.node("Info");
    let child_date = p.node("Date");
    p.edge(info, "name", name);
    p.edge(info, "created", parent_date);
    p.edge(info, "links-to", other);
    p.edge(other, "created", child_date);
    NodeAddition::new(
        p,
        "Pair",
        [
            (Label::new("parent"), parent_date),
            (Label::new("child"), child_date),
        ],
    )
}

/// Figure 10: associate the creation date of the Pinkfloyd info with the
/// data infos it links to, via new `data-creation` edges.
pub fn fig10_edge_addition() -> EdgeAddition {
    let mut p = Pattern::new();
    let data = p.node("Data");
    let target = p.node("Info");
    let floyd = p.node("Info");
    let date = p.printable("Date", Value::date(1990, 1, 14));
    let name = p.printable("String", "Pinkfloyd");
    p.edge(data, "isa", target);
    p.edge(floyd, "links-to", target);
    p.edge(floyd, "created", date);
    p.edge(floyd, "name", name);
    EdgeAddition::functional(p, data, "data-creation", date)
}

/// Figures 12–13: build the set of all infos created on Jan 14, 1990 —
/// a singleton node addition followed by a multivalued edge addition.
/// Returns the set node.
pub fn figs12_13_build_set(db: &mut Instance, env: &mut Env) -> Result<NodeId> {
    let mut member = Pattern::new();
    let info = member.node("Info");
    let date = member.printable("Date", Value::date(1990, 1, 14));
    member.edge(info, "created", date);
    let (set, _) = good_core::macros::setbuild::build_set(
        db,
        env,
        "Created-Jan-14-1990",
        member,
        info,
        "contains",
    )?;
    Ok(set)
}

/// Figure 14: delete the info node named Classical Music.
pub fn fig14_node_deletion() -> NodeDeletion {
    let mut p = Pattern::new();
    let info = p.node("Info");
    let name = p.printable("String", "Classical Music");
    p.edge(info, "name", name);
    NodeDeletion::new(p, info)
}

/// Figure 16: update the last-modified date of Music History from
/// Jan 14 to Jan 16 — an edge deletion followed by an edge addition.
pub fn fig16_update(db: &mut Instance, env: &mut Env) -> Result<()> {
    let mut selector = Pattern::new();
    let info = selector.node("Info");
    let name = selector.printable("String", "Music History");
    selector.edge(info, "name", name);
    good_core::macros::update::set_functional_to_printable(
        db,
        env,
        &selector,
        info,
        "modified",
        "Date",
        Value::date(1990, 1, 16),
    )?;
    Ok(())
}

/// Figure 18: abstraction grouping version-old infos by the equality of
/// their `links-to` sets into `Same-Info` group objects.
///
/// The paper first tags the infos of interest with two node additions;
/// here the tagging is folded into the source pattern (the abstraction
/// matches infos pointed at by a version's `old` or `new` edge via two
/// abstractions sharing labels, which compose because groups are
/// reused).
pub fn fig18_abstractions() -> [Abstraction; 2] {
    let over = |edge: &str| {
        let mut p = Pattern::new();
        let version = p.node("Version");
        let info = p.node("Info");
        p.edge(version, edge, info);
        Abstraction::new(p, info, "Same-Info", "contains", "links-to")
    };
    [over("old"), over("new")]
}

/// Figure 20: the `Update` method — change the last-modified date of an
/// info node to the Date parameter.
pub fn fig20_update_method() -> Method {
    let spec = MethodSpec::new(
        "Update",
        "Info",
        [(Label::new("parameter"), Label::new("Date"))],
    );
    // ED: delete the receiver's modified edge.
    let mut p1 = Pattern::new();
    let head1 = p1.method_head("Update");
    let info1 = p1.node("Info");
    let old_date = p1.node("Date");
    p1.edge(head1, good_core::label::receiver_label(), info1);
    p1.edge(info1, "modified", old_date);
    let ed = EdgeDeletion::single(p1, info1, "modified", old_date);
    // EA: add the new modified edge to the parameter.
    let mut p2 = Pattern::new();
    let head2 = p2.method_head("Update");
    let info2 = p2.node("Info");
    let new_date = p2.node("Date");
    p2.edge(head2, good_core::label::receiver_label(), info2);
    p2.edge(head2, "parameter", new_date);
    let ea = EdgeAddition::functional(p2, info2, "modified", new_date);
    Method::new(
        spec,
        vec![Operation::EdgeDel(ed), Operation::EdgeAdd(ea)],
        Scheme::new(),
    )
}

/// Figure 21: call `Update` on every info named Music History with the
/// date Jan 16, 1990.
pub fn fig21_update_call() -> MethodCall {
    let mut p = Pattern::new();
    let info = p.node("Info");
    let name = p.printable("String", "Music History");
    let date = p.printable("Date", Value::date(1990, 1, 16));
    p.edge(info, "name", name);
    MethodCall::new("Update", p, info, [(Label::new("parameter"), date)])
}

/// Figure 22: the recursive `R-O-V` (Remove-Old-Versions) method.
///
/// Body: (1) recursively remove the versions older than the previous
/// version; (2) delete the previous info node; (3) delete the now
/// useless version node. Recursion halts when a receiver has no
/// previous version.
pub fn fig22_remove_old_versions() -> Method {
    let spec = MethodSpec::new("R-O-V", "Info", []);

    // Op 1: recursive call on the previous version.
    let mut p1 = Pattern::new();
    let head1 = p1.method_head("R-O-V");
    let current1 = p1.node("Info");
    let version1 = p1.node("Version");
    let previous1 = p1.node("Info");
    p1.edge(head1, good_core::label::receiver_label(), current1);
    p1.edge(version1, "new", current1);
    p1.edge(version1, "old", previous1);
    let recurse = MethodCall::new("R-O-V", p1, previous1, []);

    // Op 2: delete the previous info node.
    let mut p2 = Pattern::new();
    let head2 = p2.method_head("R-O-V");
    let current2 = p2.node("Info");
    let version2 = p2.node("Version");
    let previous2 = p2.node("Info");
    p2.edge(head2, good_core::label::receiver_label(), current2);
    p2.edge(version2, "new", current2);
    p2.edge(version2, "old", previous2);
    let delete_previous = NodeDeletion::new(p2, previous2);

    // Op 3: delete the version node (its old edge is gone by now).
    let mut p3 = Pattern::new();
    let head3 = p3.method_head("R-O-V");
    let current3 = p3.node("Info");
    let version3 = p3.node("Version");
    p3.edge(head3, good_core::label::receiver_label(), current3);
    p3.edge(version3, "new", current3);
    let delete_version = NodeDeletion::new(p3, version3);

    Method::new(
        spec,
        vec![
            Operation::Call(recurse),
            Operation::NodeDel(delete_previous),
            Operation::NodeDel(delete_version),
        ],
        Scheme::new(),
    )
}

/// Call `R-O-V` on one specific info node identified by name.
pub fn rov_call_by_name(name: &str) -> MethodCall {
    let mut p = Pattern::new();
    let info = p.node("Info");
    let name_node = p.printable("String", name);
    p.edge(info, "name", name_node);
    MethodCall::new("R-O-V", p, info, [])
}

/// Figure 23: the method `D` computing the number of days elapsed
/// between two dates.
///
/// **Substitution note** (see DESIGN.md): the paper gives only `D`'s
/// specification and interface — its body necessarily uses an external
/// function, since date arithmetic is not expressible over printable
/// constants by graph transformations. We implement `D` as a *system
/// method*: for every (old, new) pair of dates matched by `pattern`,
/// an `Elapsed` node with `olddate`, `newdate` and `diff` edges is
/// materialized, exactly as the Figure 23 interface describes.
pub fn method_d_apply(
    db: &mut Instance,
    pattern: &Pattern,
    old_node: NodeId,
    new_node: NodeId,
) -> Result<Vec<NodeId>> {
    let matchings = good_core::matching::find_matchings(pattern, db)?;
    let mut created = Vec::new();
    for matching in &matchings {
        let old_image = matching.image(old_node);
        let new_image = matching.image(new_node);
        let old_date = db
            .print_value(old_image)
            .and_then(Value::as_date)
            .expect("olddate is a Date printable");
        let new_date = db
            .print_value(new_image)
            .and_then(Value::as_date)
            .expect("newdate is a Date printable");
        let diff = old_date.days_until(new_date);
        // Deduplicate like a node addition would.
        let exists = db.nodes_with_label(&"Elapsed".into()).any(|e| {
            db.functional_target(e, &"olddate".into()) == Some(old_image)
                && db.functional_target(e, &"newdate".into()) == Some(new_image)
        });
        if exists {
            continue;
        }
        let elapsed = db.add_object("Elapsed")?;
        db.add_edge(elapsed, "olddate", old_image)?;
        db.add_edge(elapsed, "newdate", new_image)?;
        let number = db.add_printable("Number", diff)?;
        db.add_edge(elapsed, "diff", number)?;
        created.push(elapsed);
    }
    Ok(created)
}

/// Figures 24–25: the method `E` — for each info node, compute the
/// number of days elapsed between its creation and last modification as
/// a `days-unmod` edge. Internally calls `D` (Figure 25); the `Elapsed`
/// intermediates are filtered out by `E`'s interface (Figure 24).
pub fn method_e_apply(db: &mut Instance, env: &mut Env) -> Result<()> {
    let call_scheme = db.scheme().clone();

    // --- body step 1: MC D over (created, modified) pairs --------------
    let mut pd = Pattern::new();
    let info = pd.node("Info");
    let created = pd.node("Date");
    let modified = pd.node("Date");
    pd.edge(info, "created", created);
    pd.edge(info, "modified", modified);
    // Register Elapsed & friends through a scheme-extending NA/EA pair,
    // then let the system method fill the data in.
    register_elapsed(db, env)?;
    method_d_apply(db, &pd, created, modified)?;

    // --- body step 2: EA days-unmod from Info to the diff number -------
    let mut pe = Pattern::new();
    let info2 = pe.node("Info");
    let created2 = pe.node("Date");
    let modified2 = pe.node("Date");
    let elapsed2 = pe.node("Elapsed");
    let number2 = pe.node("Number");
    pe.edge(info2, "created", created2);
    pe.edge(info2, "modified", modified2);
    pe.edge(elapsed2, "olddate", created2);
    pe.edge(elapsed2, "newdate", modified2);
    pe.edge(elapsed2, "diff", number2);
    env.burn_fuel()?;
    EdgeAddition::functional(pe, info2, "days-unmod", number2).apply(db)?;

    // --- interface restriction (Figure 24): Info -days-unmod→ Number ---
    let mut interface = Scheme::new();
    interface.add_object_label("Info")?;
    interface.add_printable_label("Number", good_core::value::ValueType::Int)?;
    interface.add_functional("Info", "days-unmod", "Number")?;
    let result_scheme = call_scheme.union(&interface)?;
    db.restrict_to_scheme(&result_scheme);
    Ok(())
}

/// Register the `Elapsed` class (D's interface, Figure 23) in the
/// instance's scheme via scheme-evolving operations.
fn register_elapsed(db: &mut Instance, env: &mut Env) -> Result<()> {
    // NA over an unmatchable pattern would still extend the scheme, but
    // Elapsed needs edges to Date/Number which NA can only add toward
    // pattern nodes. Use NA with a pattern over two Dates and a Number;
    // zero or more matchings is fine — NA is idempotent per restriction
    // and we delete any materialized nodes right away, keeping only the
    // scheme extension.
    let mut p = Pattern::new();
    let old = p.node("Date");
    let new = p.node("Date");
    let number = p.node("Number");
    let na = NodeAddition::new(
        p,
        "Elapsed",
        [
            (Label::new("olddate"), old),
            (Label::new("newdate"), new),
            (Label::new("diff"), number),
        ],
    );
    env.burn_fuel()?;
    na.apply(db)?;
    // Drop whatever the registration NA materialized — D fills in the
    // real Elapsed nodes.
    let mut cleanup = Pattern::new();
    let elapsed = cleanup.node("Elapsed");
    env.burn_fuel()?;
    NodeDeletion::new(cleanup, elapsed).apply(db)?;
    Ok(())
}

/// Figure 26: the crossed-edge query "give the names of the info nodes
/// with a creation date that is different from its last-modified date".
/// Returns the pattern plus the (info, name) pattern nodes.
pub fn fig26_pattern() -> (Pattern, NodeId, NodeId) {
    let mut p = Pattern::new();
    let info = p.node("Info");
    let name = p.node("String");
    let date = p.node("Date");
    p.edge(info, "name", name);
    p.edge(info, "created", date);
    p.negated_edge(info, "modified", date);
    (p, info, name)
}

/// Figure 27: the simulation of Figure 26 through intermediate nodes.
pub fn fig27_expansion() -> NegationExpansion {
    let (pattern, _, _) = fig26_pattern();
    expand_negation(&pattern, "Intermediate").expect("figure 26 pattern has a crossed part")
}

/// Figures 28–29: transitive closure of `links-to` as `rec-links-to`,
/// via the recursive-method simulation. Returns `(method, initial call)`.
pub fn figs28_29_closure() -> (Method, MethodCall) {
    transitive_closure_method("Info", "links-to", "rec-links-to")
}

/// Figure 30: names of references occurring in the Jazz document — a
/// query that uses the inherited `name` property directly on the
/// `Reference` class. Returns the pattern plus the (reference, name)
/// nodes.
pub fn fig30_pattern() -> (Pattern, NodeId, NodeId) {
    let mut p = Pattern::new();
    let reference = p.node("Reference");
    let jazz = p.node("Info");
    let jazz_name = p.printable("String", "Jazz");
    let ref_name = p.node("String");
    p.edge(jazz, "name", jazz_name);
    p.edge(reference, "in", jazz);
    p.edge(reference, "name", ref_name);
    (p, reference, ref_name)
}

/// Figure 31: the internal translation of Figure 30 over the base
/// scheme (explicit `isa` hop).
pub fn fig31_pattern(scheme: &Scheme) -> Pattern {
    let (pattern, _, _) = fig30_pattern();
    good_core::inheritance::rewrite_pattern(&pattern, scheme)
        .expect("figure 30 rewrites over the hyper-media isa hierarchy")
}

/// Run the Figure 30 query with inheritance semantics, returning the
/// matched (reference, name-node) pairs.
pub fn fig30_query(db: &Instance) -> Result<Vec<(NodeId, NodeId)>> {
    let (pattern, reference, name) = fig30_pattern();
    let matchings: Vec<Matching> =
        good_core::inheritance::find_matchings_with_inheritance(&pattern, db)?;
    Ok(matchings
        .iter()
        .map(|m| (m.image(reference), m.image(name)))
        .collect())
}

/// Convenience: apply Figure 22's `R-O-V` to the handles' newest Rock
/// version (registering the method in `env`).
pub fn remove_rock_old_versions(
    db: &mut Instance,
    env: &mut Env,
    _handles: &InstanceHandles,
) -> Result<()> {
    env.register(fig22_remove_old_versions());
    // The Figure 2 instance has TWO infos named Rock (old and new
    // version); R-O-V must be received by the one that has a version
    // pointing at it with `new`.
    let mut p = Pattern::new();
    let info = p.node("Info");
    let name_node = p.printable("String", "Rock");
    let version = p.node("Version");
    p.edge(info, "name", name_node);
    p.edge(version, "new", info);
    let call = MethodCall::new("R-O-V", p, info, []);
    good_core::method::execute_call(&call, db, env)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::build_instance;
    use crate::versions::build_versions_instance;
    use good_core::matching::{find_matchings, find_matchings_naive};

    #[test]
    fn fig4_has_two_matchings_on_the_paper_instance() {
        let (db, h) = build_instance();
        let (pattern, nodes) = fig4_pattern();
        let matchings = find_matchings(&pattern, &db).unwrap();
        assert_eq!(
            matchings.len(),
            2,
            "the paper says two matchings (Figure 5)"
        );
        for m in &matchings {
            assert_eq!(m.image(nodes.info), h.rock_new);
        }
        let others: Vec<NodeId> = matchings.iter().map(|m| m.image(nodes.other)).collect();
        assert!(others.contains(&h.doors) && others.contains(&h.pinkfloyd));
        assert_eq!(find_matchings_naive(&pattern, &db).unwrap(), matchings);
    }

    #[test]
    fn fig6_7_tags_doors_and_pinkfloyd() {
        let (mut db, h) = build_instance();
        let report = fig6_node_addition().apply(&mut db).unwrap();
        assert_eq!(report.created_nodes.len(), 2);
        let tagged: Vec<NodeId> = db
            .nodes_with_label(&"Rock-Tag".into())
            .map(|t| db.functional_target(t, &"tagged-to".into()).unwrap())
            .collect();
        assert!(tagged.contains(&h.doors) && tagged.contains(&h.pinkfloyd));
        db.validate().unwrap();
    }

    #[test]
    fn fig8_creates_pairs_for_four_matchings() {
        // "As can be verified, there are four matchings of the source
        // pattern in the hyper-media object base instance."
        let (mut db, _) = build_instance();
        let report = fig8_node_addition().apply(&mut db).unwrap();
        assert_eq!(report.matchings, 4);
        // "The four added nodes will have the node label pair": the
        // date pairs (14,12), (14,14), (12,12), (12,14) are all
        // distinct, so all four matchings materialize.
        assert_eq!(report.created_nodes.len(), 4);
        db.validate().unwrap();
    }

    #[test]
    fn fig10_11_adds_data_creation_edges() {
        let (mut db, h) = build_instance();
        let report = fig10_edge_addition().apply(&mut db).unwrap();
        assert_eq!(report.matchings, 2);
        assert_eq!(report.edges_added, 2);
        let label = Label::new("data-creation");
        // The two Data nodes isa-ing Pinkfloyd's contents have the edge.
        let mut count = 0;
        for data in db.nodes_with_label(&"Data".into()).collect::<Vec<_>>() {
            if let Some(target) = db.functional_target(data, &label) {
                assert_eq!(db.print_value(target), Some(&Value::date(1990, 1, 14)));
                let info = db.functional_target(data, &"isa".into()).unwrap();
                assert!(h.pinkfloyd_contents.contains(&info));
                count += 1;
            }
        }
        assert_eq!(count, 2);
        db.validate().unwrap();
    }

    #[test]
    fn figs12_13_collect_jan14_infos() {
        let (mut db, h) = build_instance();
        let mut env = Env::new();
        let set = figs12_13_build_set(&mut db, &mut env).unwrap();
        let members: Vec<NodeId> = db.targets(set, &"contains".into()).collect();
        assert_eq!(members.len(), 2);
        assert!(members.contains(&h.rock_new) && members.contains(&h.pinkfloyd));
    }

    #[test]
    fn fig14_15_deletes_classical_music_isolating_mozart() {
        let (mut db, h) = build_instance();
        fig14_node_deletion().apply(&mut db).unwrap();
        assert!(!db.contains_node(h.classical));
        assert!(db.contains_node(h.mozart));
        assert_eq!(db.graph().in_degree(h.mozart), 0);
        assert_eq!(db.targets(h.music_history, &"links-to".into()).count(), 2);
        db.validate().unwrap();
    }

    #[test]
    fn fig16_updates_music_history_modified_date() {
        let (mut db, h) = build_instance();
        fig16_update(&mut db, &mut Env::new()).unwrap();
        let date = db
            .functional_target(h.music_history, &"modified".into())
            .unwrap();
        assert_eq!(db.print_value(date), Some(&Value::date(1990, 1, 16)));
    }

    #[test]
    fn figs17_19_abstraction_groups_shared_link_sets() {
        let (mut db, h) = build_versions_instance();
        for ab in fig18_abstractions() {
            ab.apply(&mut db).unwrap();
        }
        let contains = Label::new("contains");
        // documents[0] and documents[1] (same link set) share a group.
        let g0: Vec<NodeId> = db.sources(h.documents[0], &contains).collect();
        let g1: Vec<NodeId> = db.sources(h.documents[1], &contains).collect();
        assert_eq!(g0, g1);
        assert_eq!(g0.len(), 1);
        // documents[2] and documents[3] are in distinct groups.
        let g2: Vec<NodeId> = db.sources(h.documents[2], &contains).collect();
        let g3: Vec<NodeId> = db.sources(h.documents[3], &contains).collect();
        assert_ne!(g2, g3);
        // Three groups total (Figure 19).
        assert_eq!(db.label_count(&"Same-Info".into()), 3);
        db.validate().unwrap();
    }

    #[test]
    fn figs20_21_update_method() {
        let (mut db, h) = build_instance();
        db.add_printable("Date", Value::date(1990, 1, 16)).unwrap();
        let mut env = Env::new();
        env.register(fig20_update_method());
        good_core::method::execute_call(&fig21_update_call(), &mut db, &mut env).unwrap();
        let date = db
            .functional_target(h.music_history, &"modified".into())
            .unwrap();
        assert_eq!(db.print_value(date), Some(&Value::date(1990, 1, 16)));
        // Other infos untouched; no frames left.
        assert!(db
            .functional_target(h.rock_new, &"modified".into())
            .is_none());
        db.validate().unwrap();
    }

    #[test]
    fn fig22_removes_the_old_rock_version() {
        let (mut db, h) = build_instance();
        let mut env = Env::new();
        remove_rock_old_versions(&mut db, &mut env, &h).unwrap();
        assert!(!db.contains_node(h.rock_old), "old version deleted");
        assert!(!db.contains_node(h.version), "version node deleted");
        assert!(db.contains_node(h.rock_new), "receiver survives");
        // The Doors (linked from the old version too) survives.
        assert!(db.contains_node(h.doors));
        db.validate().unwrap();
    }

    #[test]
    fn fig22_removes_whole_chains() {
        // Build a 4-deep version chain and call R-O-V on the newest.
        let (mut db, h) = build_versions_instance();
        let mut env = Env::new();
        env.register(fig22_remove_old_versions());
        let mut p = Pattern::new();
        let info = p.node("Info");
        let version = p.node("Version");
        p.edge(version, "new", info);
        // Receiver: the newest document — the one that is never `old`.
        let old_version = p.negated_node("Version");
        p.negated_edge(old_version, "old", info);
        let call = MethodCall::new("R-O-V", p, info, []);
        good_core::method::execute_call(&call, &mut db, &mut env).unwrap();
        // Only the newest document survives; all three versions and the
        // three older documents are gone.
        assert!(db.contains_node(h.documents[3]));
        for doc in &h.documents[..3] {
            assert!(!db.contains_node(*doc));
        }
        assert_eq!(db.label_count(&"Version".into()), 0);
        // Targets are untouched.
        for target in h.targets {
            assert!(db.contains_node(target));
        }
        db.validate().unwrap();
    }

    #[test]
    fn figs23_25_days_unmodified() {
        let (mut db, h) = build_instance();
        let mut env = Env::new();
        method_e_apply(&mut db, &mut env).unwrap();
        // Music History: created Jan 12, modified Jan 14 → 2 days.
        let days = db
            .functional_target(h.music_history, &"days-unmod".into())
            .expect("days-unmod installed");
        assert_eq!(db.print_value(days), Some(&Value::int(2)));
        // The Elapsed intermediates are gone (interface filtering).
        assert!(!db.scheme().is_object_label(&"Elapsed".into()));
        assert_eq!(db.label_count(&"Elapsed".into()), 0);
        db.validate().unwrap();
    }

    #[test]
    fn fig26_27_negation_query() {
        let (mut db, h) = build_instance();
        let (pattern, info, _) = fig26_pattern();
        // Direct semantics: every info with a created date where no
        // modified edge points to the same date. Music History's
        // modified (Jan 14) differs from created (Jan 12), so it
        // qualifies; so do all the never-modified infos with a created
        // date.
        let direct = find_matchings(&pattern, &db).unwrap();
        assert!(direct.iter().any(|m| m.image(info) == h.music_history));
        // All 9 named infos have created dates and only Music History
        // has a modified edge (to a different date) → 9 matchings.
        assert_eq!(direct.len(), 9);

        // Figure 27 expansion agrees.
        let expansion = fig27_expansion();
        let via_macro = expansion.evaluate(&mut db, &mut Env::new()).unwrap();
        assert_eq!(via_macro, direct);
    }

    #[test]
    fn figs28_29_transitive_closure() {
        let (mut db, h) = build_instance();
        let (method, call) = figs28_29_closure();
        let mut env = Env::new();
        env.register(method);
        good_core::method::execute_call(&call, &mut db, &mut env).unwrap();
        let rec = Label::new("rec-links-to");
        // music-history ⇒ pinkfloyd's contents via rock/pinkfloyd.
        assert!(db.has_edge(h.music_history, &rec, h.pinkfloyd));
        assert!(db.has_edge(h.music_history, &rec, h.pinkfloyd_contents[0]));
        assert!(db.has_edge(h.music_history, &rec, h.mozart));
        // Equal to the graph-theoretic closure.
        let links = Label::new("links-to");
        let expected = good_graph::algo::transitive_closure_by(db.graph(), |e| e.label == links);
        for (src, dsts) in expected {
            for dst in dsts {
                assert!(db.has_edge(src, &rec, dst), "missing {src:?}->{dst:?}");
            }
        }
        db.validate().unwrap();
    }

    #[test]
    fn figs30_31_inheritance_query() {
        let (db, h) = build_instance();
        let results = fig30_query(&db).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, h.reference);
        assert_eq!(
            db.print_value(results[0].1),
            Some(&Value::str("The Beatles"))
        );
        // The rewritten pattern is valid over the base scheme while the
        // original is not.
        let (original, _, _) = fig30_pattern();
        assert!(original.validate(db.scheme()).is_err());
        fig31_pattern(db.scheme()).validate(db.scheme()).unwrap();
    }
}
