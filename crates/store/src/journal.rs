//! Journal record framing: JSON lines, byte-accurate scanning, and the
//! torn-tail rules.
//!
//! A journal is a sequence of newline-terminated JSON records. The
//! scanner enforces the crash-recovery contract:
//!
//! * every intact record is **newline-terminated** — an unterminated
//!   final segment is a torn append, *even if the JSON happens to
//!   parse* (the record was never acknowledged, and appending after it
//!   without truncation would concatenate two records on one line);
//! * a final newline-terminated segment that fails to parse is also
//!   treated as torn (on real disks a crashed multi-sector write can
//!   persist the trailing sector without the leading one);
//! * a parse failure anywhere *earlier* is corruption, reported with
//!   its 1-based line number — never silently truncated.

use crate::vfs::VfsFile;
use crate::{Result, StoreError};
use good_core::instance::Instance;
use good_core::method::Method;
use good_core::program::Program;
use serde::{Deserialize, Serialize};

/// One journal record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LogRecord {
    /// A full snapshot of the instance — the first record of every
    /// journal generation.
    Snapshot(Box<Instance>),
    /// A method registration.
    RegisterMethod(Box<Method>),
    /// An applied program.
    Apply(Program),
}

/// The outcome of scanning a journal byte-for-byte.
#[derive(Debug)]
pub(crate) struct JournalScan {
    /// Intact records with their 1-based line numbers.
    pub records: Vec<(usize, LogRecord)>,
    /// True if a torn tail (crash mid-append) was detected.
    pub torn_tail: bool,
    /// Byte length of the intact prefix; a torn tail is truncated to
    /// this length before the journal accepts new appends.
    pub intact_len: u64,
}

/// Scan raw journal bytes into records, detecting a torn tail.
pub(crate) fn scan(bytes: &[u8]) -> Result<JournalScan> {
    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut intact_len = 0u64;
    let mut offset = 0usize;
    let mut line = 0usize;
    while offset < bytes.len() {
        line += 1;
        let (segment, segment_end, terminated) =
            match bytes[offset..].iter().position(|&b| b == b'\n') {
                Some(i) => (&bytes[offset..offset + i], offset + i + 1, true),
                None => (&bytes[offset..], bytes.len(), false),
            };
        let is_final = segment_end == bytes.len();
        if segment.iter().all(u8::is_ascii_whitespace) {
            // Blank lines are tolerated but an unterminated whitespace
            // tail is still torn debris to truncate.
            if terminated {
                intact_len = segment_end as u64;
            } else {
                torn_tail = true;
            }
            offset = segment_end;
            continue;
        }
        if !terminated {
            torn_tail = true;
            break;
        }
        let parsed = std::str::from_utf8(segment)
            .map_err(|err| err.to_string())
            .and_then(|text| {
                serde_json::from_str::<LogRecord>(text).map_err(|err| err.to_string())
            });
        match parsed {
            Ok(record) => {
                records.push((line, record));
                intact_len = segment_end as u64;
            }
            Err(err) => {
                if is_final {
                    torn_tail = true;
                } else {
                    return Err(StoreError::Corrupt {
                        line,
                        message: err.to_string(),
                    });
                }
            }
        }
        offset = segment_end;
    }
    Ok(JournalScan {
        records,
        torn_tail,
        intact_len,
    })
}

/// Serialize `record` as one newline-terminated JSON line, append it,
/// and fdatasync. A serialization failure happens before any byte
/// reaches the file; an I/O failure may leave a torn or un-durable
/// record behind (the caller decides whether to poison).
pub(crate) fn append_record(file: &mut dyn VfsFile, record: &LogRecord) -> Result<()> {
    let mut line = serde_json::to_string(record).map_err(|err| StoreError::Corrupt {
        line: 0,
        message: err.to_string(),
    })?;
    line.push('\n');
    let mut append_span = good_trace::span("store", "store/append");
    append_span.arg("bytes", line.len());
    file.append(line.as_bytes())?;
    {
        let _fsync_span = good_trace::span("store", "store/fsync");
        file.sync_data()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use good_core::scheme::Scheme;

    fn snapshot_line() -> String {
        let db = Instance::new(Scheme::new());
        let mut line =
            serde_json::to_string(&LogRecord::Snapshot(Box::new(db))).expect("serialize");
        line.push('\n');
        line
    }

    #[test]
    fn clean_journal_scans_fully() {
        let text = snapshot_line();
        let scan = scan(text.as_bytes()).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(!scan.torn_tail);
        assert_eq!(scan.intact_len, text.len() as u64);
    }

    #[test]
    fn unterminated_parseable_tail_is_torn() {
        // The torn write happens to stop exactly at the closing brace:
        // the JSON parses, but the missing newline marks it torn.
        let mut text = snapshot_line();
        let full = text.clone();
        text.push_str(full.trim_end());
        let scan = scan(text.as_bytes()).unwrap();
        assert_eq!(scan.records.len(), 1, "the tail must not be replayed");
        assert!(scan.torn_tail);
        assert_eq!(scan.intact_len, full.len() as u64);
    }

    #[test]
    fn unterminated_garbage_tail_is_torn() {
        let mut text = snapshot_line();
        let intact = text.len();
        text.push_str("{\"Apply\":{\"ops\":[");
        let scan = scan(text.as_bytes()).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_tail);
        assert_eq!(scan.intact_len, intact as u64);
    }

    #[test]
    fn terminated_garbage_final_line_is_torn_not_corrupt() {
        let mut text = snapshot_line();
        let intact = text.len();
        text.push_str("sector-salad}\n");
        let scan = scan(text.as_bytes()).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.intact_len, intact as u64);
    }

    #[test]
    fn garbage_before_the_end_is_corruption() {
        let mut text = snapshot_line();
        text.push_str("garbage\n");
        text.push_str(&snapshot_line());
        match scan(text.as_bytes()) {
            Err(StoreError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn blank_lines_are_skipped_but_counted() {
        let mut text = snapshot_line();
        text.push('\n');
        text.push_str("garbage\n");
        text.push_str(&snapshot_line());
        match scan(text.as_bytes()) {
            Err(StoreError::Corrupt { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected corruption, got {other:?}"),
        }
    }
}
