//! E12 — morsel-parallel matching scaling (EXPERIMENTS.md §3).
//!
//! Runs the planned matcher over the 10 000-object stress instance at
//! 1/2/4/8 worker threads on three patterns (the anchored Figure-4
//! point query and 2-/3-node link chains), asserts bit-for-bit result
//! equality across thread counts, prints criterion-style lines, and
//! emits machine-readable results to `BENCH_parallel.json` in the
//! workspace root so scaling numbers can be tracked across commits.
//!
//! This bench hand-rolls its measurement loop instead of going through
//! the criterion harness because it needs the raw medians for the JSON
//! report.

use good_bench::{anchored_pattern, chain_pattern, stress_instance};
use good_core::matching::{find_matchings_with, MatchConfig};
use good_core::pattern::Pattern;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SAMPLES: usize = 7;
const TARGET_SAMPLE_NANOS: u128 = 60_000_000; // ~60ms per sample

struct Measurement {
    pattern: String,
    threads: usize,
    median_ns: u128,
    matchings: usize,
}

fn format_nanos(nanos: u128) -> String {
    let nanos = nanos as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// Median per-iteration time of `routine` over `SAMPLES` samples, each
/// sized to roughly `TARGET_SAMPLE_NANOS`.
fn measure(mut routine: impl FnMut()) -> u128 {
    let start = Instant::now();
    routine();
    let once = start.elapsed().as_nanos().max(1);
    let iterations = (TARGET_SAMPLE_NANOS / once).clamp(1, 10_000);
    let mut samples: Vec<u128> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iterations {
            routine();
        }
        samples.push(start.elapsed().as_nanos() / iterations);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("E12 parallel scaling — {cores} core(s) available");
    let db = stress_instance();

    let patterns: Vec<(&str, Pattern)> = vec![
        ("figure4-anchored", anchored_pattern("info-0").0),
        ("chain-2", chain_pattern(2).0),
        ("chain-3", chain_pattern(3).0),
    ];

    let mut measurements: Vec<Measurement> = Vec::new();
    for (name, pattern) in &patterns {
        let baseline =
            find_matchings_with(pattern, &db, MatchConfig::sequential()).expect("valid pattern");
        for threads in THREAD_COUNTS {
            let config = MatchConfig {
                threads,
                parallel_threshold: 128,
            };
            // Determinism contract: identical results at every count.
            let result = find_matchings_with(pattern, &db, config).expect("valid pattern");
            assert_eq!(baseline, result, "{name} differs at {threads} threads");
            let median_ns = measure(|| {
                find_matchings_with(pattern, &db, config).expect("valid pattern");
            });
            let label = format!("E12-parallel-scaling/{name}/threads-{threads}");
            println!(
                "{label:<60} time: [median {}] ({} matchings)",
                format_nanos(median_ns),
                baseline.len(),
            );
            measurements.push(Measurement {
                pattern: (*name).to_string(),
                threads,
                median_ns,
                matchings: baseline.len(),
            });
        }
    }

    // Machine-readable emission: BENCH_parallel.json at the workspace
    // root (flat hand-formatted JSON — the report has no nesting worth a
    // serializer).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"E12-parallel-scaling\",");
    let _ = writeln!(json, "  \"instance_objects\": 10000,");
    let _ = writeln!(json, "  \"machine_cores\": {cores},");
    json.push_str("  \"results\": [\n");
    for (index, m) in measurements.iter().enumerate() {
        let comma = if index + 1 == measurements.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"pattern\": \"{}\", \"threads\": {}, \"median_ns\": {}, \"matchings\": {}}}{comma}",
            m.pattern, m.threads, m.median_ns, m.matchings
        );
    }
    json.push_str("  ]\n}\n");

    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/
    path.pop(); // workspace root
    path.push("BENCH_parallel.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
