//! `good-core` — the GOOD object database model and its graph
//! transformation language.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Gyssens, Paredaens, Van den Bussche, Van Gucht, *A Graph-Oriented
//! Object Database Model*, PODS 1990):
//!
//! * **Section 2** — [`scheme`] and [`instance`]: object base schemes
//!   `S = (OL, POL, FEL, MEL, P)` and instances as labeled graphs with
//!   the paper's three invariants enforced at mutation time.
//! * **Section 3** — [`pattern`] and [`matching`]: patterns and matchings
//!   (label/print/edge-preserving homomorphisms); [`ops`]: the five basic
//!   operations — node addition, edge addition, node deletion, edge
//!   deletion, abstraction; [`method`]: the method mechanism
//!   (specification, body, interface, call) with recursion;
//!   [`program`]: sequencing and the execution environment.
//! * **Section 4.1** — [`macros`]: negation, recursive (starred)
//!   additions, set building, functional update, printable predicates.
//! * **Section 4.2** — [`inheritance`]: `isa` subclass edges as a
//!   virtual view, with pattern rewriting and subclass method dispatch.
//! * **Section 5** — [`rules`]: operations as condition ⇒ action rules
//!   with fixpoint saturation (the G-Log direction); [`browse`]:
//!   pattern-directed browsing; [`meta`]: schemes as instances, so GOOD
//!   programs perform scheme manipulation; [`textual`]: a parseable
//!   textual notation for patterns and the paper's bracket notation for
//!   operations.
//!
//! The expressiveness results of Section 4.3 live in the sibling crates
//! `good-relational` (relational & nested relational completeness) and
//! `good-turing` (Turing completeness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod browse;
pub mod error;
pub mod gen;
pub mod inheritance;
pub mod instance;
pub mod label;
pub mod macros;
pub mod matching;
pub mod meta;
pub mod method;
pub mod ops;
pub mod pattern;
pub mod persist;
pub mod planner;
pub mod program;
pub mod rules;
pub mod scheme;
pub mod snapshot;
pub mod stats;
pub mod textual;
pub mod value;
pub mod wcoj;

/// Commonly used types, for `use good_core::prelude::*`.
pub mod prelude {
    pub use crate::error::{GoodError, Result};
    pub use crate::instance::Instance;
    pub use crate::label::{EdgeKind, Label, NodeKind};
    pub use crate::matching::{
        default_threads, explain_plan, explain_plan_profiled, find_matchings, find_matchings_with,
        set_default_threads, MatchConfig, Matching, Plan, PlanStep,
    };
    pub use crate::method::{Method, MethodCall, MethodSpec};
    pub use crate::ops::{Abstraction, EdgeAddition, EdgeDeletion, NodeAddition, NodeDeletion};
    pub use crate::pattern::{Pattern, ValuePredicate};
    pub use crate::planner::{find_matchings_binary, plan, JoinStrategy, PlanChoice};
    pub use crate::program::{Env, Operation, Program};
    pub use crate::rules::{Rule, RuleSet};
    pub use crate::scheme::{Scheme, SchemeBuilder};
    pub use crate::snapshot::{Snapshot, SnapshotCell};
    pub use crate::stats::{DegreeHistogram, InstanceStats, TripleStats};
    pub use crate::textual::{format_pattern, parse_pattern};
    pub use crate::value::{Date, Value, ValueType};
    pub use crate::wcoj::find_matchings_wcoj;
}
