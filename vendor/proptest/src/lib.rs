//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators, macros and runner surface this
//! workspace uses. Differences from upstream: generation is seeded
//! deterministically from the test name (fully reproducible runs, no
//! persisted failure files) and failing cases are not shrunk — the
//! failing case index and message are reported instead.

pub mod strategy {
    use rand::rngs::StdRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `map_fn`.
        fn prop_map<U, F>(self, map_fn: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map {
                inner: self,
                map_fn,
            }
        }

        /// Build a recursive strategy: `recurse` receives a strategy
        /// for the inner level and returns the composite level.
        /// `depth` bounds the nesting; the size hints are accepted for
        /// API compatibility but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // Lean toward recursion so deep shapes actually occur;
                // the leaf keeps generation finite.
                strat = Union {
                    arms: vec![(1, leaf.clone()), (3, recurse(strat).boxed())],
                }
                .boxed();
            }
            strat
        }

        /// Type-erase into a clonable, shareable strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// Clonable type-erased strategy (upstream: `BoxedStrategy`).
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        map_fn: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.map_fn)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between strategies of a common value type
    /// (backs `prop_oneof!`).
    pub struct Union<T> {
        pub(crate) arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union { arms: Vec::new() }
        }

        /// Add an equally-weighted arm (builder-style, used by
        /// `prop_oneof!` so the value type is inferred from the first
        /// arm).
        pub fn or(mut self, strategy: impl Strategy<Value = T> + 'static) -> Self {
            self.arms.push((1, strategy.boxed()));
            self
        }

        /// Add a weighted arm.
        pub fn or_weighted(
            mut self,
            weight: u32,
            strategy: impl Strategy<Value = T> + 'static,
        ) -> Self {
            self.arms.push((weight.max(1), strategy.boxed()));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rand::Rng::gen_range(rng, 0..total);
            for (weight, strategy) in &self.arms {
                if pick < *weight as u64 {
                    return strategy.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weights are positive")
        }
    }

    // -- ranges ------------------------------------------------------------

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    // -- `any` -------------------------------------------------------------

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rand::RngCore::next_u64(rng) as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rand::RngCore::next_u64(rng) & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // Printable ASCII keeps generated text debuggable.
            rand::Rng::gen_range(rng, 0x20u32..0x7f) as u8 as char
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        marker: PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            marker: PhantomData,
        }
    }

    // -- tuples ------------------------------------------------------------

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Collection size specification (`usize`, `a..b` or `a..=b`).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_inclusive: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty collection size range");
            SizeRange {
                min: range.start,
                max_inclusive: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max_inclusive: *range.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rand::Rng::gen_range(rng, self.min..=self.max_inclusive)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Bounded attempts: small element domains may not be able
            // to fill the requested size with distinct values.
            for _ in 0..target.saturating_mul(4).max(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }

    /// `BTreeSet` of distinct values from `element`; sizes below the
    /// requested range may occur when the element domain is small.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            // 1-in-4 `None`, matching upstream's default lean toward
            // `Some`.
            if rand::Rng::gen_range(rng, 0u8..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Option` of values from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod string {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Error from [`string_regex`] on unsupported patterns.
    #[derive(Debug, Clone)]
    pub struct RegexError(pub String);

    impl std::fmt::Display for RegexError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    impl std::error::Error for RegexError {}

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        /// Inclusive character ranges (single chars are `(c, c)`).
        Class(Vec<(char, char)>),
        Group(Vec<(Atom, Quantifier)>),
    }

    #[derive(Debug, Clone, Copy)]
    enum Quantifier {
        One,
        Optional,
        /// `*` / `+`: unbounded above, generation caps the repeat count.
        AtLeast(u32),
        /// `{m}` / `{m,n}`.
        Between(u32, u32),
    }

    /// Generates strings matching a (restricted) regular expression:
    /// literals, escapes, character classes with ranges, groups without
    /// alternation, and the `? * + {m} {m,n}` quantifiers.
    #[derive(Debug, Clone)]
    pub struct RegexStrategy {
        atoms: Vec<(Atom, Quantifier)>,
    }

    /// Parse `pattern` into a generation strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, RegexError> {
        let mut chars = pattern.chars().peekable();
        let atoms = parse_sequence(&mut chars, pattern, false)?;
        if chars.next().is_some() {
            return Err(RegexError(format!("unbalanced `)` in {pattern:?}")));
        }
        Ok(RegexStrategy { atoms })
    }

    type CharStream<'a> = std::iter::Peekable<std::str::Chars<'a>>;

    fn parse_sequence(
        chars: &mut CharStream<'_>,
        pattern: &str,
        in_group: bool,
    ) -> Result<Vec<(Atom, Quantifier)>, RegexError> {
        let mut atoms = Vec::new();
        while let Some(&ch) = chars.peek() {
            let atom = match ch {
                ')' if in_group => break,
                ')' => return Err(RegexError(format!("unbalanced `)` in {pattern:?}"))),
                '(' => {
                    chars.next();
                    let inner = parse_sequence(chars, pattern, true)?;
                    if chars.next() != Some(')') {
                        return Err(RegexError(format!("unclosed `(` in {pattern:?}")));
                    }
                    Atom::Group(inner)
                }
                '[' => {
                    chars.next();
                    Atom::Class(parse_class(chars, pattern)?)
                }
                '\\' => {
                    chars.next();
                    Atom::Literal(parse_escape(chars, pattern)?)
                }
                '|' | '.' | '^' | '$' => {
                    return Err(RegexError(format!(
                        "`{ch}` is not supported in {pattern:?}"
                    )))
                }
                _ => {
                    chars.next();
                    Atom::Literal(ch)
                }
            };
            let quantifier = parse_quantifier(chars, pattern)?;
            atoms.push((atom, quantifier));
        }
        Ok(atoms)
    }

    fn parse_escape(chars: &mut CharStream<'_>, pattern: &str) -> Result<char, RegexError> {
        match chars.next() {
            Some('n') => Ok('\n'),
            Some('t') => Ok('\t'),
            Some('r') => Ok('\r'),
            Some(
                c @ ('\\' | '{' | '}' | '(' | ')' | '[' | ']' | '.' | '-' | '*' | '+' | '?' | '|'
                | '^' | '$' | '"'),
            ) => Ok(c),
            other => Err(RegexError(format!(
                "unsupported escape {other:?} in {pattern:?}"
            ))),
        }
    }

    fn parse_class(
        chars: &mut CharStream<'_>,
        pattern: &str,
    ) -> Result<Vec<(char, char)>, RegexError> {
        let mut ranges = Vec::new();
        loop {
            let ch = match chars.next() {
                Some(']') => return Ok(ranges),
                Some('\\') => parse_escape(chars, pattern)?,
                Some(c) => c,
                None => return Err(RegexError(format!("unclosed `[` in {pattern:?}"))),
            };
            // A `-` forms a range unless it is the final character.
            if chars.peek() == Some(&'-') {
                let mut lookahead = chars.clone();
                lookahead.next();
                if lookahead.peek() == Some(&']') {
                    ranges.push((ch, ch));
                } else {
                    chars.next();
                    let end = match chars.next() {
                        Some('\\') => parse_escape(chars, pattern)?,
                        Some(c) => c,
                        None => return Err(RegexError(format!("unclosed `[` in {pattern:?}"))),
                    };
                    if end < ch {
                        return Err(RegexError(format!(
                            "inverted range {ch:?}-{end:?} in {pattern:?}"
                        )));
                    }
                    ranges.push((ch, end));
                }
            } else {
                ranges.push((ch, ch));
            }
        }
    }

    fn parse_quantifier(
        chars: &mut CharStream<'_>,
        pattern: &str,
    ) -> Result<Quantifier, RegexError> {
        match chars.peek() {
            Some('?') => {
                chars.next();
                Ok(Quantifier::Optional)
            }
            Some('*') => {
                chars.next();
                Ok(Quantifier::AtLeast(0))
            }
            Some('+') => {
                chars.next();
                Ok(Quantifier::AtLeast(1))
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        let parse = |s: &str| {
                            s.trim().parse::<u32>().map_err(|_| {
                                RegexError(format!("bad quantifier {{{spec}}} in {pattern:?}"))
                            })
                        };
                        return if let Some((low, high)) = spec.split_once(',') {
                            Ok(Quantifier::Between(parse(low)?, parse(high)?))
                        } else {
                            let n = parse(&spec)?;
                            Ok(Quantifier::Between(n, n))
                        };
                    }
                    spec.push(ch);
                }
                Err(RegexError(format!("unclosed `{{` in {pattern:?}")))
            }
            _ => Ok(Quantifier::One),
        }
    }

    /// Cap for `*`/`+` repeats.
    const UNBOUNDED_CAP: u32 = 8;

    fn generate_atoms(atoms: &[(Atom, Quantifier)], rng: &mut StdRng, out: &mut String) {
        for (atom, quantifier) in atoms {
            let count = match quantifier {
                Quantifier::One => 1,
                Quantifier::Optional => rand::Rng::gen_range(rng, 0u32..2),
                Quantifier::AtLeast(min) => rand::Rng::gen_range(rng, *min..=UNBOUNDED_CAP),
                Quantifier::Between(low, high) => rand::Rng::gen_range(rng, *low..=*high),
            };
            for _ in 0..count {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u32 = ranges
                            .iter()
                            .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                            .sum();
                        let mut pick = rand::Rng::gen_range(rng, 0..total);
                        for (lo, hi) in ranges {
                            let span = *hi as u32 - *lo as u32 + 1;
                            if pick < span {
                                out.push(
                                    char::from_u32(*lo as u32 + pick).expect("valid class char"),
                                );
                                break;
                            }
                            pick -= span;
                        }
                    }
                    Atom::Group(inner) => generate_atoms(inner, rng, out),
                }
            }
        }
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            generate_atoms(&self.atoms, rng, &mut out);
            out
        }
    }
}

pub mod test_runner {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Runner configuration (upstream: `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    /// The prelude re-exports this alias, matching upstream.
    pub use self::Config as ProptestConfig;

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// Failure of a single generated case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Failure of a whole run.
    #[derive(Debug, Clone)]
    pub struct TestError {
        pub case: u32,
        pub message: String,
    }

    impl fmt::Display for TestError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "case {} failed: {}", self.case, self.message)
        }
    }

    impl std::error::Error for TestError {}

    /// Deterministic RNG for a named test.
    pub fn rng_for(name: &str) -> StdRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(hash)
    }

    /// Explicit runner (upstream: `TestRunner`).
    pub struct TestRunner {
        config: Config,
        rng: StdRng,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::new(Config::default())
        }
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            TestRunner {
                config,
                rng: rng_for("proptest::test_runner::TestRunner"),
            }
        }

        /// Run `test` against `config.cases` generated inputs.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            test: impl Fn(S::Value) -> Result<(), TestCaseError>,
        ) -> Result<(), TestError> {
            for case in 0..self.config.cases {
                let value = strategy.generate(&mut self.rng);
                match test(value) {
                    Ok(()) | Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(message)) => {
                        return Err(TestError { case, message });
                    }
                }
            }
            Ok(())
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// ---------------------------------------------------------------------------
// Macros.

/// Choose uniformly (or weighted with `w => strat` arms) between
/// strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {{
        let union = $crate::strategy::Union::new();
        $(let union = union.or_weighted($weight, $strategy);)+
        union
    }};
    ($($strategy:expr),+ $(,)?) => {{
        let union = $crate::strategy::Union::new();
        $(let union = union.or($strategy);)+
        union
    }};
}

/// Assert inside a proptest body (returns a `TestCaseError` failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                $crate::prop_assert!(
                    *__left == *__right,
                    "assertion failed: `{:?}` != `{:?}`",
                    __left,
                    __right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__left, __right) => {
                $crate::prop_assert!(*__left == *__right, $($fmt)*);
            }
        }
    };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                $crate::prop_assert!(
                    *__left != *__right,
                    "assertion failed: `{:?}` == `{:?}`",
                    __left,
                    __right
                );
            }
        }
    };
}

/// Define property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0u8..10, ys in arb_vec()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            for __case in 0..__config.cases {
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(())
                    | ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__message)) => {
                        panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name),
                            __case,
                            __message
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = rng_for("ranges");
        let strategy = 3u8..9;
        for _ in 0..200 {
            let v = Strategy::generate(&strategy, &mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn oneof_union_covers_all_arms() {
        let mut rng = rng_for("arms");
        let strategy = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(Strategy::generate(&strategy, &mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn regex_subset_generates_matching_shapes() {
        let strategy = crate::string::string_regex("[ -~\n]{0,80}").unwrap();
        let mut rng = rng_for("regex");
        for _ in 0..50 {
            let s = Strategy::generate(&strategy, &mut rng);
            assert!(s.chars().count() <= 80);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        let braced = crate::string::string_regex(
            r#"\{( *[a-z]{1,3}[:;!=-]{1,3}[A-Za-z0-9"(){}]{0,8} *)*\}?"#,
        )
        .unwrap();
        for _ in 0..50 {
            let s = Strategy::generate(&braced, &mut rng);
            assert!(s.starts_with('{'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_works(x in 0u8..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            if flag {
                prop_assert_eq!(x, x);
            }
        }
    }
}
