//! The update macro (Figure 16).
//!
//! "Suppose we modified the info node ... we need to update the
//! last-modified property": an edge deletion removing the old functional
//! edge followed by an edge addition installing the new one.

use crate::error::Result;
use crate::instance::Instance;
use crate::label::Label;
use crate::ops::{EdgeAddition, EdgeDeletion, OpReport};
use crate::pattern::Pattern;
use crate::program::Env;
use crate::value::Value;
use good_graph::NodeId;

/// Set the functional property `edge` of every image of `receiver`
/// under `selector` to the printable `(target_label, value)`, replacing
/// any previous value.
///
/// The printable node is created through the system channel if absent
/// (the paper: "printable nodes are system-defined and need not be
/// explicitly added").
pub fn set_functional_to_printable(
    db: &mut Instance,
    env: &mut Env,
    selector: &Pattern,
    receiver: NodeId,
    edge: impl Into<Label>,
    target_label: impl Into<Label>,
    value: impl Into<Value>,
) -> Result<OpReport> {
    let edge = edge.into();
    let target_label = target_label.into();
    let value = value.into();

    // Ensure the printable constant exists.
    db.add_printable(target_label.clone(), value.clone())?;

    // Step 1 (ED): delete the existing edge, whatever it points at.
    let mut p1 = selector.clone();
    let old = p1.node(target_label.clone());
    p1.edge(receiver, edge.clone(), old);
    env.burn_fuel()?;
    let mut report = EdgeDeletion::single(p1, receiver, edge.clone(), old).apply(db)?;

    // Step 2 (EA): add the new edge.
    let mut p2 = selector.clone();
    let new = p2.printable(target_label, value);
    env.burn_fuel()?;
    let add_report = EdgeAddition::functional(p2, receiver, edge, new).apply(db)?;
    report.absorb(&add_report);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeBuilder;
    use crate::value::ValueType;

    fn setup() -> (Instance, NodeId, NodeId) {
        let scheme = SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .printable("Date", ValueType::Date)
            .functional("Info", "name", "String")
            .functional("Info", "modified", "Date")
            .build();
        let mut db = Instance::new(scheme);
        let music = db.add_object("Info").unwrap();
        let other = db.add_object("Info").unwrap();
        for (node, name) in [(music, "Music History"), (other, "Other")] {
            let s = db.add_printable("String", name).unwrap();
            db.add_edge(node, "name", s).unwrap();
        }
        let d14 = db.add_printable("Date", Value::date(1990, 1, 14)).unwrap();
        db.add_edge(music, "modified", d14).unwrap();
        db.add_edge(other, "modified", d14).unwrap();
        (db, music, other)
    }

    fn music_selector() -> (Pattern, NodeId) {
        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.printable("String", "Music History");
        p.edge(info, "name", name);
        (p, info)
    }

    #[test]
    fn figure16_updates_only_matched_receivers() {
        let (mut db, music, other) = setup();
        let (selector, info) = music_selector();
        set_functional_to_printable(
            &mut db,
            &mut Env::new(),
            &selector,
            info,
            "modified",
            "Date",
            Value::date(1990, 1, 16),
        )
        .unwrap();
        let music_date = db.functional_target(music, &"modified".into()).unwrap();
        assert_eq!(db.print_value(music_date), Some(&Value::date(1990, 1, 16)));
        let other_date = db.functional_target(other, &"modified".into()).unwrap();
        assert_eq!(db.print_value(other_date), Some(&Value::date(1990, 1, 14)));
        db.validate().unwrap();
    }

    #[test]
    fn update_installs_property_when_absent() {
        let (mut db, music, _) = setup();
        // Remove the property first.
        let date = db.functional_target(music, &"modified".into()).unwrap();
        db.delete_edge_between(music, &"modified".into(), date);
        let (selector, info) = music_selector();
        set_functional_to_printable(
            &mut db,
            &mut Env::new(),
            &selector,
            info,
            "modified",
            "Date",
            Value::date(1990, 1, 16),
        )
        .unwrap();
        assert!(db.functional_target(music, &"modified".into()).is_some());
    }

    #[test]
    fn update_is_idempotent() {
        let (mut db, _, _) = setup();
        let (selector, info) = music_selector();
        let run = |db: &mut Instance| {
            set_functional_to_printable(
                db,
                &mut Env::new(),
                &selector,
                info,
                "modified",
                "Date",
                Value::date(1990, 1, 16),
            )
            .unwrap()
        };
        run(&mut db);
        let snapshot = db.clone();
        run(&mut db);
        assert!(db.isomorphic_to(&snapshot));
    }
}
