//! Macros (Section 4.1) — graphical conveniences that compile to the
//! five basic operations without adding expressive power.
//!
//! * [`negation`] — patterns with crossed parts (Figures 26–27);
//! * [`recursion`] — starred recursive edge additions (Figures 28–29);
//! * [`setbuild`] — building explicit set objects (Figures 12–13);
//! * [`update`] — replacing a functional property (Figure 16).
//!
//! The fourth macro family of Section 4.1, *additional predicates on
//! printable objects*, lives directly on patterns
//! ([`crate::pattern::ValuePredicate`]) because the matcher evaluates it
//! inline.
//!
//! Each macro provides both (a) an *expansion* into a [`Program`] of
//! core operations — the paper's proof obligation that macros are mere
//! sugar — and (b) a direct evaluation path; the test suites check the
//! two agree.

pub mod abstraction_ext;
pub mod negation;
pub mod recursion;
pub mod setbuild;
pub mod update;

pub use abstraction_ext::{abstraction_over_functional, abstraction_over_two_properties};
pub use negation::{expand_negation, NegationExpansion};
pub use recursion::{transitive_closure_method, RecursiveEdgeAddition};
pub use setbuild::build_set;
pub use update::set_functional_to_printable;

#[allow(unused_imports)]
use crate::program::Program; // for intra-doc links
