//! Encoding Turing machine configurations as GOOD object bases.
//!
//! The tape is a doubly linked chain of `Cell` objects (`left`/`right`
//! functional edges) whose contents are `symbol` edges into the
//! printable class `Sym`. A single `TM` object carries the control
//! state (`state` edge into the printable class `CtlState`), the head
//! position (`head` edge) and an immutable `origin` edge to the cell
//! that held position 0 of the input — the anchor that lets
//! [`decode_config`] recover absolute positions.
//!
//! All symbols and state names the machine can ever use are pre-seeded
//! as printable nodes, because GOOD's transformation language never
//! creates printable nodes ("printable nodes are system-defined").

use crate::machine::{Config, Machine};
use good_core::error::{GoodError, Result};
use good_core::instance::Instance;
use good_core::label::Label;
use good_core::scheme::{Scheme, SchemeBuilder};
use good_core::value::{Value, ValueType};
use good_graph::NodeId;
use std::collections::BTreeMap;

/// Handles into an encoded configuration.
#[derive(Debug, Clone, Copy)]
pub struct TmHandles {
    /// The machine object.
    pub tm: NodeId,
    /// The cell that was position 0 at encoding time.
    pub origin: NodeId,
}

/// The tape scheme.
pub fn tm_scheme() -> Scheme {
    SchemeBuilder::new()
        .object("Cell")
        .object("TM")
        .printable("Sym", ValueType::Str)
        .printable("CtlState", ValueType::Str)
        .functional("Cell", "symbol", "Sym")
        .functional("Cell", "right", "Cell")
        .functional("Cell", "left", "Cell")
        .functional("TM", "state", "CtlState")
        .functional("TM", "head", "Cell")
        .functional("TM", "origin", "Cell")
        .build()
}

/// The `Sym` printable for a tape symbol.
pub fn sym_value(symbol: char) -> Value {
    Value::str(symbol.to_string())
}

/// Encode the initial configuration of `machine` on `input`.
pub fn encode_config(machine: &Machine, input: &str) -> Result<(Instance, TmHandles)> {
    let mut db = Instance::new(tm_scheme());

    // Pre-seed the whole alphabet and state space.
    for symbol in machine.alphabet(input) {
        db.add_printable("Sym", sym_value(symbol))?;
    }
    for state in machine.states() {
        db.add_printable("CtlState", state.as_str())?;
    }

    // The tape: one cell per input character; at least one cell.
    let contents: Vec<char> = if input.is_empty() {
        vec![machine.blank]
    } else {
        input.chars().collect()
    };
    let mut previous: Option<NodeId> = None;
    let mut origin = None;
    for symbol in &contents {
        let cell = db.add_object("Cell")?;
        let sym = db.add_printable("Sym", sym_value(*symbol))?;
        db.add_edge(cell, "symbol", sym)?;
        if let Some(prev) = previous {
            db.add_edge(prev, "right", cell)?;
            db.add_edge(cell, "left", prev)?;
        }
        if origin.is_none() {
            origin = Some(cell);
        }
        previous = Some(cell);
    }
    let origin = origin.expect("at least one cell");

    let tm = db.add_object("TM")?;
    let state = db.add_printable("CtlState", machine.start.as_str())?;
    db.add_edge(tm, "state", state)?;
    db.add_edge(tm, "head", origin)?;
    db.add_edge(tm, "origin", origin)?;
    Ok((db, TmHandles { tm, origin }))
}

/// Decode the configuration stored in `db` (relative to the `origin`
/// anchor). `blank` cells are elided from the sparse tape.
pub fn decode_config(db: &Instance, blank: char) -> Result<Config> {
    let tm = db
        .nodes_with_label(&Label::new("TM"))
        .next()
        .ok_or_else(|| GoodError::InvariantViolation("no TM object".into()))?;
    let state_node = db
        .functional_target(tm, &Label::new("state"))
        .ok_or_else(|| GoodError::InvariantViolation("TM lacks a state".into()))?;
    let state = match db.print_value(state_node).and_then(|v| v.as_str()) {
        Some(text) => text.to_string(),
        None => {
            return Err(GoodError::InvariantViolation(
                "state is not a string".into(),
            ))
        }
    };
    let head_cell = db
        .functional_target(tm, &Label::new("head"))
        .ok_or_else(|| GoodError::InvariantViolation("TM lacks a head".into()))?;
    let origin = db
        .functional_target(tm, &Label::new("origin"))
        .ok_or_else(|| GoodError::InvariantViolation("TM lacks an origin".into()))?;

    // Assign positions by walking from the origin.
    let left = Label::new("left");
    let right = Label::new("right");
    let mut positions: BTreeMap<NodeId, i64> = BTreeMap::new();
    positions.insert(origin, 0);
    let mut cursor = origin;
    let mut pos = 0i64;
    while let Some(next) = db.functional_target(cursor, &left) {
        pos -= 1;
        positions.insert(next, pos);
        cursor = next;
    }
    cursor = origin;
    pos = 0;
    while let Some(next) = db.functional_target(cursor, &right) {
        pos += 1;
        positions.insert(next, pos);
        cursor = next;
    }

    let symbol_label = Label::new("symbol");
    let mut tape = BTreeMap::new();
    for (cell, position) in &positions {
        let sym_node = db.functional_target(*cell, &symbol_label).ok_or_else(|| {
            GoodError::InvariantViolation(format!("cell {cell:?} lacks a symbol"))
        })?;
        let text = db
            .print_value(sym_node)
            .and_then(|v| v.as_str())
            .ok_or_else(|| GoodError::InvariantViolation("symbol is not a string".into()))?;
        let symbol = text.chars().next().unwrap_or(blank);
        if symbol != blank {
            tape.insert(*position, symbol);
        }
    }

    let head = *positions.get(&head_cell).ok_or_else(|| {
        GoodError::InvariantViolation("head cell is not connected to the origin".into())
    })?;

    Ok(Config { state, tape, head })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::binary_increment;

    #[test]
    fn encode_matches_initial_config() {
        let machine = binary_increment();
        let (db, _) = encode_config(&machine, "101").unwrap();
        db.validate().unwrap();
        let decoded = decode_config(&db, machine.blank).unwrap();
        assert_eq!(decoded, machine.initial("101"));
    }

    #[test]
    fn empty_input_still_has_one_cell() {
        let machine = binary_increment();
        let (db, handles) = encode_config(&machine, "").unwrap();
        assert_eq!(db.label_count(&Label::new("Cell")), 1);
        let decoded = decode_config(&db, machine.blank).unwrap();
        assert!(decoded.tape.is_empty());
        assert_eq!(decoded.head, 0);
        assert!(db.contains_node(handles.origin));
    }

    #[test]
    fn alphabet_and_states_preseeded() {
        let machine = binary_increment();
        let (db, _) = encode_config(&machine, "01").unwrap();
        for symbol in machine.alphabet("01") {
            assert!(
                db.find_printable(&Label::new("Sym"), &sym_value(symbol))
                    .is_some(),
                "{symbol} missing"
            );
        }
        for state in machine.states() {
            assert!(db
                .find_printable(&Label::new("CtlState"), &Value::str(state.as_str()))
                .is_some());
        }
    }

    #[test]
    fn cells_are_doubly_linked() {
        let machine = binary_increment();
        let (db, handles) = encode_config(&machine, "10").unwrap();
        let right = db
            .functional_target(handles.origin, &Label::new("right"))
            .unwrap();
        assert_eq!(
            db.functional_target(right, &Label::new("left")),
            Some(handles.origin)
        );
    }

    #[test]
    fn blank_cells_elide_from_decoded_tape() {
        let machine = binary_increment();
        let (db, _) = encode_config(&machine, "1_1").unwrap();
        let decoded = decode_config(&db, machine.blank).unwrap();
        assert_eq!(decoded.tape.len(), 2);
        assert!(!decoded.tape.contains_key(&1));
    }
}
