//! Node addition (`NA`, Section 3.1).
//!
//! `NA[J, S, I, K, {(λ1, m1), ..., (λn, mn)}]` adds, for each matching
//! `i` of the source pattern `J`, a new `K`-labeled node with functional
//! edges `λℓ` to `i(mℓ)` — *unless such a node already exists*. The
//! implementation follows the paper's procedural semantics (Figure 9)
//! verbatim, which yields the paper's "one to one relationship between
//! the matchings of the source pattern, restricted to the nodes in which
//! a bold edge arrives, and the nodes that are added": matchings that
//! agree on all bold-edge targets share one new node, and re-running the
//! same addition is idempotent.
//!
//! With an empty bold-edge list and the empty pattern this adds a single
//! unconditional node (Figure 12).

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::label::Label;
use crate::matching::find_matchings;
use crate::ops::OpReport;
use crate::pattern::Pattern;
use good_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// A node addition operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeAddition {
    /// The source pattern `J`.
    pub pattern: Pattern,
    /// The object label `K` of the nodes to add.
    pub label: Label,
    /// The bold functional edges: `(λℓ, mℓ)` pairs, each pointing at a
    /// node of the source pattern. The `λℓ` must be pairwise different.
    pub edges: Vec<(Label, NodeId)>,
}

impl NodeAddition {
    /// Construct a node addition.
    pub fn new(
        pattern: Pattern,
        label: impl Into<Label>,
        edges: impl IntoIterator<Item = (Label, NodeId)>,
    ) -> Self {
        NodeAddition {
            pattern,
            label: label.into(),
            edges: edges.into_iter().collect(),
        }
    }

    /// Apply to `db`, evolving scheme and instance.
    pub fn apply(&self, db: &mut Instance) -> Result<OpReport> {
        // The λℓ must be pairwise different functional edge labels.
        let mut seen = BTreeSet::new();
        for (label, node) in &self.edges {
            if !seen.insert(label) {
                return Err(GoodError::InvalidPattern(format!(
                    "node addition uses edge label {label} twice"
                )));
            }
            let is_positive = self
                .pattern
                .graph()
                .node(*node)
                .map(|data| !data.negated)
                .unwrap_or(false);
            if !is_positive || self.pattern.node_label(*node).is_none() {
                return Err(GoodError::NodeNotInPattern(format!("{node:?}")));
            }
        }

        // Enumerate matchings against the *original* instance.
        let matchings = find_matchings(&self.pattern, db)?;

        // Minimal scheme extension: K ∈ OL, λℓ ∈ FEL, (K, λℓ, λ(mℓ)) ∈ P.
        db.scheme_mut().add_object_label(self.label.clone())?;
        for (edge_label, pattern_node) in &self.edges {
            let target_label = self
                .pattern
                .node_label(*pattern_node)
                .expect("validated above")
                .clone();
            db.scheme_mut().add_functional_label(edge_label.clone())?;
            db.scheme_mut()
                .add_triple(self.label.clone(), edge_label.clone(), target_label)?;
        }

        // Figure 9: "if not exists a K-labeled node n in I′ with
        // outgoing edges (n, λℓ, i(mℓ)), 1 ≤ ℓ ≤ n, then add such a node".
        // Index existing K nodes by their λ-target vector. A node whose
        // λℓ-targets are exactly the required ones satisfies the
        // condition (extra *other* edges are irrelevant; extra λℓ edges
        // are impossible because λℓ is functional).
        let edge_labels: Vec<&Label> = self.edges.iter().map(|(l, _)| l).collect();
        let mut existing: HashMap<Vec<NodeId>, NodeId> = HashMap::new();
        for node in db.nodes_with_label(&self.label).collect::<Vec<_>>() {
            let targets: Option<Vec<NodeId>> = edge_labels
                .iter()
                .map(|label| db.functional_target(node, label))
                .collect();
            if let Some(key) = targets {
                existing.entry(key).or_insert(node);
            }
        }

        let mut report = OpReport {
            matchings: matchings.len(),
            ..OpReport::default()
        };
        // Batched application: first precompute the distinct target
        // vectors still missing a K node (matchings are in canonical
        // order, so first-seen order is deterministic), then run one
        // mutation pass over the pending vectors.
        let mut pending: Vec<Vec<NodeId>> = Vec::new();
        let mut claimed: BTreeSet<Vec<NodeId>> = BTreeSet::new();
        let mut dedup_hits = 0u64;
        for matching in &matchings {
            let key: Vec<NodeId> = self.edges.iter().map(|(_, m)| matching.image(*m)).collect();
            if existing.contains_key(&key) || !claimed.insert(key.clone()) {
                dedup_hits += 1;
                continue;
            }
            pending.push(key);
        }
        good_trace::counter_add("op.na.dedup_hits", dedup_hits);
        for key in pending {
            let fresh = db.add_object(self.label.clone())?;
            for ((edge_label, _), target) in self.edges.iter().zip(&key) {
                db.add_edge(fresh, edge_label.clone(), *target)?;
                report.edges_added += 1;
            }
            report.created_nodes.push(fresh);
        }
        db.debug_assert_indexes();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{Scheme, SchemeBuilder};
    use crate::value::{Value, ValueType};

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .printable("Date", ValueType::Date)
            .functional("Info", "name", "String")
            .functional("Info", "created", "Date")
            .multivalued("Info", "links-to", "Info")
            .build()
    }

    /// Rock(Jan 14) links to Doors(Jan 12) and Floyd(Jan 14).
    fn small_instance() -> (Instance, [NodeId; 3]) {
        let mut db = Instance::new(scheme());
        let rock = db.add_object("Info").unwrap();
        let doors = db.add_object("Info").unwrap();
        let floyd = db.add_object("Info").unwrap();
        for (name, node) in [("Rock", rock), ("The Doors", doors), ("Pinkfloyd", floyd)] {
            let s = db.add_printable("String", name).unwrap();
            db.add_edge(node, "name", s).unwrap();
        }
        let d14 = db.add_printable("Date", Value::date(1990, 1, 14)).unwrap();
        let d12 = db.add_printable("Date", Value::date(1990, 1, 12)).unwrap();
        db.add_edge(rock, "created", d14).unwrap();
        db.add_edge(doors, "created", d12).unwrap();
        db.add_edge(floyd, "created", d14).unwrap();
        db.add_edge(rock, "links-to", doors).unwrap();
        db.add_edge(rock, "links-to", floyd).unwrap();
        (db, [rock, doors, floyd])
    }

    /// Figure 6: tag the infos Rock links to with bold `Rock` nodes.
    fn figure6() -> NodeAddition {
        let mut p = Pattern::new();
        let info = p.node("Info");
        let date = p.printable("Date", Value::date(1990, 1, 14));
        let name = p.printable("String", "Rock");
        let other = p.node("Info");
        p.edge(info, "created", date);
        p.edge(info, "name", name);
        p.edge(info, "links-to", other);
        NodeAddition::new(p, "Rock", [(Label::new("tagged-to"), other)])
    }

    #[test]
    fn figure6_tags_two_infos() {
        let (mut db, [_, doors, floyd]) = small_instance();
        let report = figure6().apply(&mut db).unwrap();
        assert_eq!(report.matchings, 2);
        assert_eq!(report.created_nodes.len(), 2);
        assert_eq!(report.edges_added, 2);
        // The scheme was minimally extended.
        assert!(db.scheme().is_object_label(&"Rock".into()));
        assert!(db
            .scheme()
            .allows(&"Rock".into(), &"tagged-to".into(), &"Info".into()));
        // Each tag points at one of the linked infos.
        let tagged: Vec<NodeId> = db
            .nodes_with_label(&"Rock".into())
            .map(|t| db.functional_target(t, &"tagged-to".into()).unwrap())
            .collect();
        assert!(tagged.contains(&doors) && tagged.contains(&floyd));
        db.validate().unwrap();
    }

    #[test]
    fn node_addition_is_idempotent() {
        // Figure 9's existence check makes re-application a no-op.
        let (mut db, _) = small_instance();
        figure6().apply(&mut db).unwrap();
        let before = (db.node_count(), db.edge_count());
        let report = figure6().apply(&mut db).unwrap();
        assert_eq!(report.created_nodes.len(), 0);
        assert_eq!((db.node_count(), db.edge_count()), before);
    }

    #[test]
    fn matchings_with_equal_restriction_share_one_node() {
        // Pattern: Info -links-to-> Info; bold edge only to the source.
        // Rock matches twice (two targets) but both matchings restrict
        // to the same source image, so only ONE node is added.
        let (mut db, [rock, ..]) = small_instance();
        let mut p = Pattern::new();
        let src = p.node("Info");
        let dst = p.node("Info");
        p.edge(src, "links-to", dst);
        let na = NodeAddition::new(p, "Tag", [(Label::new("of"), src)]);
        let report = na.apply(&mut db).unwrap();
        assert_eq!(report.matchings, 2);
        assert_eq!(report.created_nodes.len(), 1);
        assert_eq!(
            db.functional_target(report.created_nodes[0], &"of".into()),
            Some(rock)
        );
    }

    #[test]
    fn figure8_aggregates_pairs_of_dates() {
        // Figure 8: pairs (parent, child) of creation dates of linked
        // infos named Rock.
        let (mut db, _) = small_instance();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.printable("String", "Rock");
        let parent_date = p.node("Date");
        let other = p.node("Info");
        let child_date = p.node("Date");
        p.edge(info, "name", name);
        p.edge(info, "created", parent_date);
        p.edge(info, "links-to", other);
        p.edge(other, "created", child_date);
        let na = NodeAddition::new(
            p,
            "Pair",
            [
                (Label::new("parent"), parent_date),
                (Label::new("child"), child_date),
            ],
        );
        let report = na.apply(&mut db).unwrap();
        // Two matchings: (d14, d12) via Doors and (d14, d14) via Floyd.
        assert_eq!(report.matchings, 2);
        assert_eq!(report.created_nodes.len(), 2);
        for pair in &report.created_nodes {
            assert!(db.functional_target(*pair, &"parent".into()).is_some());
            assert!(db.functional_target(*pair, &"child".into()).is_some());
        }
        db.validate().unwrap();
    }

    #[test]
    fn empty_pattern_adds_single_node() {
        // Figure 12.
        let (mut db, _) = small_instance();
        let na = NodeAddition::new(Pattern::new(), "Created-Jan-14-1990", []);
        let report = na.apply(&mut db).unwrap();
        assert_eq!(report.matchings, 1);
        assert_eq!(report.created_nodes.len(), 1);
        // Re-running adds nothing: a K node already exists.
        let report = na.apply(&mut db).unwrap();
        assert_eq!(report.created_nodes.len(), 0);
        assert_eq!(db.label_count(&"Created-Jan-14-1990".into()), 1);
    }

    #[test]
    fn duplicate_edge_labels_rejected() {
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.node("Info");
        p.edge(a, "links-to", b);
        let na = NodeAddition::new(p, "Pair", [(Label::new("x"), a), (Label::new("x"), b)]);
        let (mut db, _) = small_instance();
        assert!(matches!(
            na.apply(&mut db),
            Err(GoodError::InvalidPattern(_))
        ));
    }

    #[test]
    fn bold_edge_must_target_pattern_node() {
        let p = Pattern::new();
        let mut other = Pattern::new();
        let foreign = other.node("Info");
        let na = NodeAddition::new(p, "Tag", [(Label::new("of"), foreign)]);
        let (mut db, _) = small_instance();
        assert!(matches!(
            na.apply(&mut db),
            Err(GoodError::NodeNotInPattern(_))
        ));
    }

    #[test]
    fn label_clash_with_printable_universe_rejected() {
        let (mut db, _) = small_instance();
        let na = NodeAddition::new(Pattern::new(), "String", []);
        assert!(matches!(
            na.apply(&mut db),
            Err(GoodError::LabelUniverseClash { .. })
        ));
    }

    #[test]
    fn no_matchings_means_no_changes() {
        let (mut db, _) = small_instance();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.printable("String", "Mozart");
        p.edge(info, "name", name);
        let na = NodeAddition::new(p, "Tag", [(Label::new("of"), info)]);
        let before = db.node_count();
        let report = na.apply(&mut db).unwrap();
        assert_eq!(report.matchings, 0);
        assert_eq!(db.node_count(), before);
        // ... but the scheme is still extended (the paper's S′ does not
        // depend on the instance).
        assert!(db.scheme().is_object_label(&"Tag".into()));
    }
}
