//! `good-bench` — shared workload builders for the benchmark harness
//! (EXPERIMENTS.md E1–E10) and the `repro` figure-regeneration binary.
//!
//! The paper has no quantitative evaluation, so these workloads
//! characterize the implementation on synthetic hyper-media-shaped
//! instances (see DESIGN.md §1 for the rationale and EXPERIMENTS.md for
//! recorded results).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use good_core::gen::{random_instance, GenConfig};
use good_core::instance::Instance;
use good_core::label::Label;
use good_core::ops::NodeAddition;
use good_core::pattern::Pattern;
use good_graph::NodeId;

/// The instance sizes the sweeps run over (number of Info objects).
pub const SIZES: [usize; 3] = [100, 400, 1600];

/// A deterministic random instance of `infos` Info objects with ~2
/// outgoing links each.
pub fn instance_of(infos: usize) -> Instance {
    random_instance(&GenConfig {
        infos,
        avg_links: 2.0,
        distinct_dates: 8,
        seed: 42,
    })
}

/// The 10 000-object stress instance used by the E12 parallel-scaling
/// benchmark and the nightly `--ignored` stress tests: ~2 outgoing
/// links per info, 16 distinct dates, fixed seed.
pub fn stress_instance() -> Instance {
    random_instance(&GenConfig {
        infos: 10_000,
        avg_links: 2.0,
        distinct_dates: 16,
        seed: 42,
    })
}

/// A chain-shaped pattern of `length` Info nodes connected by
/// `links-to` edges; returns `(pattern, nodes)`.
pub fn chain_pattern(length: usize) -> (Pattern, Vec<NodeId>) {
    let mut pattern = Pattern::new();
    let nodes: Vec<NodeId> = (0..length).map(|_| pattern.node("Info")).collect();
    for window in nodes.windows(2) {
        pattern.edge(window[0], "links-to", window[1]);
    }
    (pattern, nodes)
}

/// A triangle pattern: three Info nodes in a directed 3-cycle of
/// `links-to` edges; returns `(pattern, nodes)`.
pub fn triangle_pattern() -> (Pattern, [NodeId; 3]) {
    let mut pattern = Pattern::new();
    let a = pattern.node("Info");
    let b = pattern.node("Info");
    let c = pattern.node("Info");
    pattern.edge(a, "links-to", b);
    pattern.edge(b, "links-to", c);
    pattern.edge(c, "links-to", a);
    (pattern, [a, b, c])
}

/// A hub-and-spoke instance shaped to punish materializing binary
/// joins on cyclic patterns (the E18 planner benchmark): `spokes` Info
/// objects each link to two of `hubs` hub Infos and are linked back by
/// two others, and the hubs form directed 3-cycles among themselves.
/// A triangle query's middle join therefore materializes roughly
/// `spokes * 2 * (2 * spokes / hubs)` open wedge rows before the
/// closing edge filters nearly all of them out, while a worst-case-
/// optimal join only touches rows that can still close.
pub fn hub_instance(spokes: usize, hubs: usize) -> Instance {
    assert!(
        hubs >= 3 && hubs.is_multiple_of(3),
        "hubs must be a positive multiple of 3"
    );
    let mut db = Instance::new(good_core::gen::bench_scheme());
    let hub_ids: Vec<NodeId> = (0..hubs)
        .map(|_| db.add_object("Info").expect("Info"))
        .collect();
    for triple in hub_ids.chunks(3) {
        db.add_edge(triple[0], "links-to", triple[1]).expect("edge");
        db.add_edge(triple[1], "links-to", triple[2]).expect("edge");
        db.add_edge(triple[2], "links-to", triple[0]).expect("edge");
    }
    for spoke_index in 0..spokes {
        let spoke = db.add_object("Info").expect("Info");
        db.add_edge(spoke, "links-to", hub_ids[spoke_index % hubs])
            .expect("edge");
        db.add_edge(spoke, "links-to", hub_ids[(spoke_index + 5) % hubs])
            .expect("edge");
        db.add_edge(hub_ids[(spoke_index + 3) % hubs], "links-to", spoke)
            .expect("edge");
        db.add_edge(hub_ids[(spoke_index + 7) % hubs], "links-to", spoke)
            .expect("edge");
    }
    db
}

/// The Figure 4-shaped pattern: a named Info linking to another.
pub fn anchored_pattern(name: &str) -> (Pattern, NodeId, NodeId) {
    let mut pattern = Pattern::new();
    let info = pattern.node("Info");
    let name_node = pattern.printable("String", name);
    let other = pattern.node("Info");
    pattern.edge(info, "name", name_node);
    pattern.edge(info, "links-to", other);
    (pattern, info, other)
}

/// A tag node addition over a chain pattern of the given length.
pub fn tag_addition(length: usize) -> NodeAddition {
    let (pattern, nodes) = chain_pattern(length);
    NodeAddition::new(pattern, "BenchTag", [(Label::new("of"), nodes[0])])
}

/// An instance shaped for abstraction benchmarks: `groups` distinct
/// link sets, each shared by `members` Info objects.
pub fn grouped_instance(groups: usize, members: usize) -> Instance {
    let mut db = Instance::new(good_core::gen::bench_scheme());
    let targets: Vec<NodeId> = (0..groups + 2)
        .map(|_| db.add_object("Info").expect("Info"))
        .collect();
    for group in 0..groups {
        for _ in 0..members {
            let info = db.add_object("Info").expect("Info");
            // Each group's signature set: {targets[group], targets[group+1]}.
            db.add_edge(info, "links-to", targets[group]).expect("edge");
            db.add_edge(info, "links-to", targets[group + 1])
                .expect("edge");
        }
    }
    db
}

/// A chain instance of `length` Info objects for transitive-closure
/// benchmarks.
pub fn chain_instance(length: usize) -> Instance {
    let mut db = Instance::new(good_core::gen::bench_scheme());
    let nodes: Vec<NodeId> = (0..length)
        .map(|_| db.add_object("Info").expect("Info"))
        .collect();
    for window in nodes.windows(2) {
        db.add_edge(window[0], "links-to", window[1]).expect("edge");
    }
    db
}

/// Every DOT rendering the `repro` binary emits for the paper's
/// figures, as `(file name, contents)` pairs — the single source of
/// truth shared by `repro` (which writes them to its out-dir) and the
/// figure golden tests (which diff them against
/// `crates/bench/tests/goldens/`).
pub fn figure_dots() -> Vec<(&'static str, String)> {
    use good_hypermedia::{build_instance, build_scheme, build_versions_instance, figures};

    let mut dots = Vec::new();
    let scheme = build_scheme();
    dots.push((
        "fig1-scheme.dot",
        scheme.to_dot("Figure 1: hyper-media scheme"),
    ));

    let (db0, _) = build_instance();
    dots.push(("fig2-instance.dot", db0.to_dot("Figures 2-3: instance")));

    let (pattern, _) = figures::fig4_pattern();
    dots.push((
        "fig4-pattern.dot",
        pattern.to_dot("Figure 4: pattern", db0.scheme()),
    ));

    let mut db = db0.clone();
    figures::fig6_node_addition().apply(&mut db).expect("fig6");
    dots.push((
        "fig7-result.dot",
        db.to_dot("Figure 7: after node addition"),
    ));

    let mut db = db0.clone();
    figures::fig10_edge_addition()
        .apply(&mut db)
        .expect("fig10");
    dots.push((
        "fig11-result.dot",
        db.to_dot("Figure 11: after edge addition"),
    ));

    let mut db = db0.clone();
    figures::fig14_node_deletion()
        .apply(&mut db)
        .expect("fig14");
    dots.push((
        "fig15-result.dot",
        db.to_dot("Figure 15: after node deletion"),
    ));

    let (mut vdb, _) = build_versions_instance();
    dots.push(("fig17-versions.dot", vdb.to_dot("Figure 17: version chain")));
    for ab in figures::fig18_abstractions() {
        ab.apply(&mut vdb).expect("fig18");
    }
    dots.push((
        "fig19-result.dot",
        vdb.to_dot("Figure 19: after abstraction"),
    ));

    let (pattern26, _, _) = figures::fig26_pattern();
    dots.push((
        "fig26-pattern.dot",
        pattern26.to_dot("Figure 26: crossed pattern", db0.scheme()),
    ));

    dots.push((
        "fig31-rewritten.dot",
        figures::fig31_pattern(db0.scheme()).to_dot("Figure 31: rewritten query", db0.scheme()),
    ));
    dots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_validate() {
        instance_of(100).validate().unwrap();
        grouped_instance(5, 4).validate().unwrap();
        chain_instance(20).validate().unwrap();
        hub_instance(60, 12).validate().unwrap();
    }

    #[test]
    fn hub_instance_has_triangles_and_all_engines_agree() {
        use good_core::prelude::*;
        let db = hub_instance(60, 12);
        let (pattern, _) = triangle_pattern();
        let planned = find_matchings(&pattern, &db).unwrap();
        let wcoj = find_matchings_wcoj(&pattern, &db).unwrap();
        let binary = find_matchings_binary(&pattern, &db).unwrap();
        assert!(!planned.is_empty(), "hub instance must contain triangles");
        assert_eq!(planned, wcoj);
        assert_eq!(planned, binary);
    }

    #[test]
    fn grouped_instance_shape() {
        let db = grouped_instance(3, 4);
        assert_eq!(db.label_count(&Label::new("Info")), 3 * 4 + 5);
    }

    #[test]
    fn chain_pattern_shape() {
        let (pattern, nodes) = chain_pattern(4);
        assert_eq!(pattern.node_count(), 4);
        assert_eq!(pattern.graph().edge_count(), 3);
        assert_eq!(nodes.len(), 4);
    }
}
