//! `good-db` — an interactive shell / script runner for GOOD object
//! bases.
//!
//! ```text
//! good-db                 # interactive REPL
//! good-db script.gdb      # run commands from a file
//! good-db -c "class Info; init; insert Info; stats"
//! good-db serve --sessions 4   # scripted multi-session server run
//! good-db serve --listen 127.0.0.1:7411   # TCP wire-protocol server
//! good-db client 127.0.0.1:7411 --programs 8 --snapshot
//! good-db client 127.0.0.1:7411 --query-text "MATCH (a:Info) RETURN a"
//! good-db client 127.0.0.1:7411 --programs 0 --stats   # introspection snapshot
//! good-db top 127.0.0.1:7411 --interval-ms 500         # live dashboard
//! ```
//!
//! Commands are line-oriented; a line whose braces are unbalanced
//! continues on the next line (so `match { … }` blocks can be written
//! across lines). `#` starts a comment. See `help` for the command set.

mod session;

use session::Session;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// The `--profile <path>` state: where to write the Chrome trace, and
/// the collector every span in the process is delivered to.
struct Profiler {
    path: String,
    collector: Arc<good_trace::Collector>,
}

impl Profiler {
    /// Write the captured spans as Chrome `trace_event` JSON (open the
    /// result in `chrome://tracing` or Perfetto). Exits on I/O failure.
    fn write(&self) {
        let json = good_trace::chrome_trace_json(&self.collector.take());
        if let Err(err) = std::fs::write(&self.path, json) {
            eprintln!("error: cannot write profile {}: {err}", self.path);
            std::process::exit(1);
        }
    }
}

/// Write the profile (if one was requested) and exit with `code`.
fn finish(profiler: &Option<Profiler>, code: i32) -> ! {
    if let Some(profiler) = profiler {
        profiler.write();
    }
    std::process::exit(code);
}

fn brace_balance(text: &str) -> i64 {
    text.chars().fold(0, |acc, ch| match ch {
        '{' => acc + 1,
        '}' => acc - 1,
        _ => acc,
    })
}

/// Split command text into top-level commands: separators are `;` and
/// newlines at brace depth 0 outside string literals; `#` comments at
/// depth 0 run to end of line. Content inside `{ … }` blocks (pattern
/// text) is never split.
fn split_commands(text: &str) -> Vec<String> {
    let mut commands = Vec::new();
    let mut current = String::new();
    let mut depth = 0i64;
    let mut in_string = false;
    let mut in_comment = false;
    for ch in text.chars() {
        if in_comment {
            if ch == '\n' {
                in_comment = false;
                if depth == 0 {
                    flush(&mut commands, &mut current);
                    continue;
                }
            } else {
                continue;
            }
        }
        match ch {
            '"' => {
                in_string = !in_string;
                current.push(ch);
            }
            '{' if !in_string => {
                depth += 1;
                current.push(ch);
            }
            '}' if !in_string => {
                depth -= 1;
                current.push(ch);
            }
            '#' if !in_string && depth == 0 => in_comment = true,
            ';' | '\n' if !in_string && depth == 0 => flush(&mut commands, &mut current),
            _ => current.push(ch),
        }
    }
    flush(&mut commands, &mut current);
    commands
}

fn flush(commands: &mut Vec<String>, current: &mut String) {
    let trimmed = current.trim();
    if !trimmed.is_empty() {
        commands.push(trimmed.to_string());
    }
    current.clear();
}

/// Run a block of command text. Returns the combined output; stops at
/// the first error.
fn run_script(session: &mut Session, text: &str) -> Result<String, session::CliError> {
    let mut output = String::new();
    for command in split_commands(text) {
        let report = session.execute(&command)?;
        if !report.is_empty() {
            output.push_str(&report);
            if !report.ends_with('\n') {
                output.push('\n');
            }
        }
    }
    Ok(output)
}

/// Map a [`good_server::ServerError`] to the `serve` mode's exit code.
/// Each submission failure gets its own code so scripts (and the
/// integration tests) can tell them apart without parsing stderr:
/// 2 = unknown session, 3 = submitted after shutdown, 4 = queue-full
/// backpressure, 1 = store failure / usage error.
fn serve_exit_code(err: &good_server::ServerError) -> i32 {
    match err {
        good_server::ServerError::UnknownSession(_) => 2,
        good_server::ServerError::Shutdown => 3,
        good_server::ServerError::QueueFull { .. } => 4,
        good_server::ServerError::Store(_) => 1,
    }
}

/// `good-db serve --sessions N [--programs P] [--seed S]
/// [--max-batch M] [--queue-capacity Q] [--inject FAILURE]`
/// `good-db serve --listen ADDR [--max-connections C] [--inflight Q]`
///
/// Scripted multi-session mode: starts an in-process [`Server`] over
/// an in-memory journal, races N sessions each submitting P programs
/// of the deterministic `random_workload`, and prints a per-session
/// and final summary. `--inject` deterministically provokes one of
/// the submission error paths (`unknown-session`, `after-shutdown`,
/// `queue-full`) and exits with its distinct code.
///
/// With `--listen`, the same server is fronted by the TCP wire
/// protocol instead: it prints `listening on ADDR`, serves until stdin
/// closes (or a `quit` line arrives), then drains gracefully —
/// in-flight submits commit and ack before the summary prints.
fn run_serve(args: &[String]) -> i32 {
    use good_core::gen::{bench_scheme, random_workload};
    use good_server::{Server, ServerConfig};
    use good_store::vfs::{FaultPlan, FaultVfs, Vfs};
    use good_store::Store;

    let mut sessions = 2usize;
    let mut programs = 4usize;
    let mut seed = 42u64;
    let mut max_batch = 8usize;
    let mut queue_capacity = 256usize;
    let mut inject: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut max_connections = 1024usize;
    let mut inflight = 64usize;

    let mut rest = args.iter();
    while let Some(flag) = rest.next() {
        let mut value = |name: &str| match rest.next() {
            Some(value) => value.clone(),
            None => {
                eprintln!("error: {name} requires a value");
                std::process::exit(1);
            }
        };
        macro_rules! parse {
            ($target:ident, $name:literal) => {{
                let raw = value($name);
                match raw.parse() {
                    Ok(parsed) => $target = parsed,
                    Err(_) => {
                        eprintln!("error: bad value for {}: {raw:?}", $name);
                        return 1;
                    }
                }
            }};
        }
        match flag.as_str() {
            "--sessions" => parse!(sessions, "--sessions"),
            "--programs" => parse!(programs, "--programs"),
            "--seed" => parse!(seed, "--seed"),
            "--max-batch" => parse!(max_batch, "--max-batch"),
            "--queue-capacity" => parse!(queue_capacity, "--queue-capacity"),
            "--inject" => inject = Some(value("--inject")),
            "--listen" => listen = Some(value("--listen")),
            "--max-connections" => parse!(max_connections, "--max-connections"),
            "--inflight" => parse!(inflight, "--inflight"),
            other => {
                eprintln!("error: unknown serve flag {other:?}");
                return 1;
            }
        }
    }
    if sessions == 0 || max_batch == 0 {
        eprintln!("error: --sessions and --max-batch must be at least 1");
        return 1;
    }

    let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(FaultPlan::reliable(seed)));
    let store = match Store::create_with_vfs(vfs, "/serve/db.journal", bench_scheme()) {
        Ok(store) => store,
        Err(err) => {
            eprintln!("error: cannot create store: {err}");
            return 1;
        }
    };
    let server = Server::start(
        store,
        ServerConfig {
            queue_capacity,
            max_batch,
            ..ServerConfig::default()
        },
    );

    // TCP front-end mode: serve the wire protocol until stdin closes,
    // then drain gracefully.
    if let Some(addr) = listen {
        use good_server::net::{NetConfig, NetServer};
        let listener = match std::net::TcpListener::bind(&addr) {
            Ok(listener) => listener,
            Err(err) => {
                eprintln!("error: cannot bind {addr}: {err}");
                return 1;
            }
        };
        let net = match NetServer::start(
            server,
            listener,
            NetConfig {
                max_connections,
                session_inflight: inflight,
                ..NetConfig::default()
            },
        ) {
            Ok(net) => net,
            Err(err) => {
                eprintln!("error: cannot start network front end: {err}");
                return 1;
            }
        };
        // The bound address (with the OS-assigned port when the caller
        // asked for :0) goes to stdout so scripts can connect.
        println!("listening on {}", net.local_addr());
        std::io::stdout().flush().expect("flush stdout");
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match stdin.lock().read_line(&mut line) {
                Ok(0) => break, // EOF: controlling script is done
                Ok(_) if matches!(line.trim(), "quit" | "drain" | "exit") => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }
        let served = net.total_accepted();
        match net.shutdown() {
            Ok(store) => {
                println!(
                    "drained: {} connections served, final instance {} nodes, {} edges",
                    served,
                    store.instance().node_count(),
                    store.instance().edge_count()
                );
                return 0;
            }
            Err(err) => {
                eprintln!("error: drain failed: {err}");
                return serve_exit_code(&err);
            }
        }
    }

    // Deterministic error-path injection: provoke exactly one
    // submission failure and exit with its dedicated code.
    if let Some(failure) = inject.as_deref() {
        let err = match failure {
            "unknown-session" => {
                // Never-opened session id: ids are handed out from 1.
                server
                    .submit(u64::MAX, random_workload(seed, 1).remove(0))
                    .expect_err("submission to an unopened session must fail")
            }
            "after-shutdown" => {
                let session = server.open_session();
                server.begin_shutdown();
                server
                    .submit(session, random_workload(seed, 1).remove(0))
                    .expect_err("submission after shutdown must fail")
            }
            "queue-full" => {
                let session = server.open_session();
                // Freeze the writer so the queue genuinely fills, then
                // overflow it: capacity submissions park, the next one
                // must bounce with backpressure.
                server.pause_writer();
                let workload = random_workload(seed, queue_capacity + 1);
                let mut overflow = None;
                for program in workload {
                    if let Err(err) = server.submit(session, program) {
                        overflow = Some(err);
                        break;
                    }
                }
                server.resume_writer();
                match overflow {
                    Some(err) => err,
                    None => {
                        eprintln!("error: queue never filled at capacity {queue_capacity}");
                        return 1;
                    }
                }
            }
            other => {
                eprintln!(
                    "error: unknown --inject {other:?} \
                     (expected unknown-session, after-shutdown or queue-full)"
                );
                return 1;
            }
        };
        eprintln!("error: {err}");
        return serve_exit_code(&err);
    }

    // The scripted workload: N sessions race their chunk of one
    // deterministic program stream through the single writer.
    let workload = random_workload(seed, sessions * programs);
    let chunks: Vec<Vec<good_core::program::Program>> = workload
        .chunks(programs.max(1))
        .map(|chunk| chunk.to_vec())
        .collect();
    let results: Vec<Result<(usize, usize), good_server::ServerError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let server = &server;
                    scope.spawn(move || {
                        let session = server.open_session();
                        let (mut committed, mut rejected) = (0usize, 0usize);
                        for program in chunk {
                            let ack = server.submit_wait(session, program)?;
                            match ack.commit_seq {
                                Some(_) => committed += 1,
                                None => rejected += 1,
                            }
                        }
                        Ok((committed, rejected))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

    let (mut total_committed, mut total_rejected) = (0usize, 0usize);
    for (index, result) in results.iter().enumerate() {
        match result {
            Ok((committed, rejected)) => {
                println!(
                    "session {}: {committed} committed, {rejected} rejected",
                    index + 1
                );
                total_committed += committed;
                total_rejected += rejected;
            }
            Err(err) => {
                eprintln!("error: session {} failed: {err}", index + 1);
                return serve_exit_code(err);
            }
        }
    }
    let batches = server.epoch();
    let snapshot = server.snapshot();
    println!(
        "served {total_committed} committed + {total_rejected} rejected programs \
         from {sessions} sessions in {batches} batches"
    );
    println!(
        "final instance: {} nodes, {} edges",
        snapshot.instance().node_count(),
        snapshot.instance().edge_count()
    );
    match server.shutdown() {
        Ok(_) => 0,
        Err(err) => {
            eprintln!("error: shutdown failed: {err}");
            serve_exit_code(&err)
        }
    }
}

/// Map a client-side failure to the `client` subcommand's exit code:
/// typed server refusals mirror the serve codes (2 = unknown session,
/// 3 = shutdown) and extend them (4 = queue-full, 5 = quota, 6 =
/// overloaded); everything else — transport failures, protocol
/// violations, bad requests — is 1.
fn client_exit_code(err: &good_server::client::ClientError) -> i32 {
    use good_server::client::ClientError;
    use good_server::proto::ErrCode;
    match err {
        ClientError::Rejected { code, .. } => match code {
            ErrCode::UnknownSession => 2,
            ErrCode::Shutdown => 3,
            ErrCode::QueueFull => 4,
            ErrCode::QuotaExceeded => 5,
            ErrCode::Overloaded => 6,
            ErrCode::BadRequest | ErrCode::Store | ErrCode::UnsupportedVersion => 1,
        },
        _ => 1,
    }
}

/// `good-db client ADDR [--programs N] [--seed S] [--retries R]
/// [--query PATTERN] [--query-text GOODQL] [--snapshot] [--dot]
/// [--stats]`
///
/// Scripted wire-protocol client: connects, submits N programs of the
/// deterministic `random_workload` (riding out retryable refusals up
/// to R times each), optionally runs a pattern query (`--query` takes
/// the textual pattern syntax, `--query-text` a GOODQL
/// MATCH/WHERE/RETURN query — both travel in the same Query frame) and
/// a snapshot read, then says goodbye. Prints one line per
/// acknowledgement.
/// `--stats` fetches the server's introspection snapshot (counters,
/// gauges, latency histograms, MVCC ring, slow-query log) and
/// pretty-prints it as JSON; `--programs 0 --stats` is a pure probe.
fn run_client(args: &[String]) -> i32 {
    use good_core::gen::random_workload;
    use good_server::client::Client;

    let mut rest = args.iter();
    let Some(addr) = rest.next() else {
        eprintln!("error: client requires a server address (host:port)");
        return 1;
    };
    let mut programs = 4usize;
    let mut seed = 42u64;
    let mut retries = 16usize;
    let mut query: Option<String> = None;
    let mut query_text: Option<String> = None;
    let mut snapshot = false;
    let mut dot = false;
    let mut stats = false;
    while let Some(flag) = rest.next() {
        let mut value = |name: &str| match rest.next() {
            Some(value) => value.clone(),
            None => {
                eprintln!("error: {name} requires a value");
                std::process::exit(1);
            }
        };
        macro_rules! parse {
            ($target:ident, $name:literal) => {{
                let raw = value($name);
                match raw.parse() {
                    Ok(parsed) => $target = parsed,
                    Err(_) => {
                        eprintln!("error: bad value for {}: {raw:?}", $name);
                        return 1;
                    }
                }
            }};
        }
        match flag.as_str() {
            "--programs" => parse!(programs, "--programs"),
            "--seed" => parse!(seed, "--seed"),
            "--retries" => parse!(retries, "--retries"),
            "--query" => query = Some(value("--query")),
            "--query-text" => query_text = Some(value("--query-text")),
            "--snapshot" => snapshot = true,
            "--dot" => dot = true,
            "--stats" => stats = true,
            other => {
                eprintln!("error: unknown client flag {other:?}");
                return 1;
            }
        }
    }

    let mut client = match Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("error: {err}");
            return client_exit_code(&err);
        }
    };
    println!("connected: session {}", client.session());
    let (mut committed, mut rejected) = (0usize, 0usize);
    for program in random_workload(seed, programs) {
        match client.submit_wait_retrying(&program, retries) {
            Ok(ack) => match (ack.commit_seq, ack.outcome) {
                (Some(seq), Ok(report)) => {
                    committed += 1;
                    println!("commit {seq} @ epoch {}: {report}", ack.epoch);
                }
                (_, outcome) => {
                    rejected += 1;
                    println!(
                        "rejected @ epoch {}: {}",
                        ack.epoch,
                        outcome.err().unwrap_or_else(|| "unknown".into())
                    );
                }
            },
            Err(err) => {
                eprintln!("error: {err}");
                return client_exit_code(&err);
            }
        }
    }
    println!("{committed} committed, {rejected} rejected");
    // `--query` (pattern syntax) and `--query-text` (GOODQL) both ride
    // the wire Query frame; the server dispatches on the text itself.
    for text in query.iter().chain(query_text.iter()) {
        match client.query(text, None) {
            Ok((epoch, columns, rows)) => {
                println!("query @ epoch {epoch}: {} row(s)", rows.len());
                for row in rows {
                    let cells: Vec<String> = columns
                        .iter()
                        .zip(&row)
                        .map(|(name, cell)| format!("{name}={cell}"))
                        .collect();
                    println!("  {}", cells.join(", "));
                }
            }
            Err(err) => {
                eprintln!("error: {err}");
                return client_exit_code(&err);
            }
        }
    }
    if snapshot || dot {
        match client.snapshot(None, dot) {
            Ok(info) => {
                println!(
                    "snapshot @ epoch {}: {} nodes, {} edges",
                    info.epoch, info.nodes, info.edges
                );
                if let Some(dot) = info.dot {
                    print!("{dot}");
                }
            }
            Err(err) => {
                eprintln!("error: {err}");
                return client_exit_code(&err);
            }
        }
    }
    if stats {
        match client.stats() {
            Ok(json) => match serde_json::from_str::<serde_json::Value>(&json) {
                // Re-render pretty; fall back to the raw text if the
                // server ever sends something our reader rejects.
                Ok(doc) => println!(
                    "{}",
                    serde_json::to_string_pretty(&doc).unwrap_or_else(|_| json.clone())
                ),
                Err(_) => println!("{json}"),
            },
            Err(err) => {
                eprintln!("error: {err}");
                return client_exit_code(&err);
            }
        }
    }
    if let Err(err) = client.goodbye() {
        eprintln!("error: {err}");
        return client_exit_code(&err);
    }
    0
}

/// Rebuild a [`good_trace::HistogramSnapshot`] from its stats-JSON
/// form so `top` can compute latency quantiles client-side.
fn histogram_from_json(entry: &serde_json::Value) -> good_trace::HistogramSnapshot {
    let mut snapshot = good_trace::HistogramSnapshot {
        count: entry["count"].as_u64().unwrap_or(0),
        sum: entry["sum"].as_u64().unwrap_or(0),
        max: entry["max"].as_u64().unwrap_or(0),
        buckets: Vec::new(),
    };
    if let Some(buckets) = entry["buckets"].as_seq() {
        for pair in buckets {
            if let (Some(upper), Some(count)) = (
                pair.at(0).and_then(serde_json::Value::as_u64),
                pair.at(1).and_then(serde_json::Value::as_u64),
            ) {
                snapshot.buckets.push((upper, count));
            }
        }
    }
    snapshot
}

/// One `top` refresh: a compact multi-line dashboard from a parsed
/// stats snapshot.
fn render_top(addr: &str, doc: &serde_json::Value) -> String {
    use good_trace::format_ns;
    let mut out = String::new();
    let server = &doc["server"];
    out.push_str(&format!(
        "good-db top {addr} — epoch {}, {} session(s){}\n",
        server["epoch"].as_u64().unwrap_or(0),
        server["sessions"].as_u64().unwrap_or(0),
        if matches!(server["draining"], serde_json::Value::Bool(true)) {
            ", draining"
        } else {
            ""
        },
    ));
    let net = &doc["net"];
    out.push_str(&format!(
        "net:    {}/{} conns, {} accepted, inflight quota {}\n",
        net["connections"].as_u64().unwrap_or(0),
        net["max_connections"].as_u64().unwrap_or(0),
        net["total_accepted"].as_u64().unwrap_or(0),
        net["session_inflight"].as_u64().unwrap_or(0),
    ));
    let counters = &doc["metrics"]["counters"];
    out.push_str(&format!(
        "server: queue {}/{}, committed {}, rejected {}, acks {}\n",
        server["queue_depth"].as_u64().unwrap_or(0),
        server["queue_capacity"].as_u64().unwrap_or(0),
        counters["server/committed"].as_u64().unwrap_or(0),
        counters["server/rejected"].as_u64().unwrap_or(0),
        counters["net/acks"].as_u64().unwrap_or(0),
    ));
    let mut latency = String::new();
    for (label, name) in [
        ("commit", "server/commit_ns"),
        ("query", "net/query_ns"),
        ("fsync", "store/fsync_ns"),
    ] {
        let histogram = histogram_from_json(&doc["metrics"]["histograms"][name]);
        if histogram.count == 0 {
            continue;
        }
        if !latency.is_empty() {
            latency.push_str("; ");
        }
        latency.push_str(&format!(
            "{label} p50={} p99={} max={}",
            format_ns(histogram.quantile(0.5)),
            format_ns(histogram.quantile(0.99)),
            format_ns(histogram.max),
        ));
    }
    if !latency.is_empty() {
        out.push_str(&format!("latency: {latency}\n"));
    }
    let slow = &doc["slow"];
    let entries = slow["entries"].as_seq().unwrap_or(&[]);
    out.push_str(&format!(
        "slow:   {} entries, {} dropped",
        entries.len(),
        slow["dropped"].as_u64().unwrap_or(0),
    ));
    if let Some(last) = entries.last() {
        out.push_str(&format!(
            " — last: {} {} {:?}",
            last["kind"].as_str().unwrap_or("?"),
            format_ns(last["total_ns"].as_u64().unwrap_or(0)),
            last["detail"].as_str().unwrap_or(""),
        ));
    }
    out.push('\n');
    out
}

/// `good-db top ADDR [--interval-ms N] [--count K]`
///
/// Live server dashboard over the stats wire frame: connects, then
/// prints a refreshed summary (connections, queue, throughput
/// counters, latency quantiles, slow-query tail) every interval.
/// `--count 0` (the default) refreshes until interrupted or the
/// server goes away.
fn run_top(args: &[String]) -> i32 {
    use good_server::client::Client;

    let mut rest = args.iter();
    let Some(addr) = rest.next() else {
        eprintln!("error: top requires a server address (host:port)");
        return 1;
    };
    let mut interval_ms = 1_000u64;
    let mut count = 0u64;
    while let Some(flag) = rest.next() {
        let mut value = |name: &str| match rest.next() {
            Some(value) => value.clone(),
            None => {
                eprintln!("error: {name} requires a value");
                std::process::exit(1);
            }
        };
        macro_rules! parse {
            ($target:ident, $name:literal) => {{
                let raw = value($name);
                match raw.parse() {
                    Ok(parsed) => $target = parsed,
                    Err(_) => {
                        eprintln!("error: bad value for {}: {raw:?}", $name);
                        return 1;
                    }
                }
            }};
        }
        match flag.as_str() {
            "--interval-ms" => parse!(interval_ms, "--interval-ms"),
            "--count" => parse!(count, "--count"),
            other => {
                eprintln!("error: unknown top flag {other:?}");
                return 1;
            }
        }
    }

    let mut client = match Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("error: {err}");
            return client_exit_code(&err);
        }
    };
    let mut refreshes = 0u64;
    loop {
        let json = match client.stats() {
            Ok(json) => json,
            Err(err) => {
                eprintln!("error: {err}");
                return client_exit_code(&err);
            }
        };
        match serde_json::from_str::<serde_json::Value>(&json) {
            Ok(doc) => print!("{}", render_top(addr, &doc)),
            Err(err) => {
                eprintln!("error: unparseable stats snapshot: {err}");
                return 1;
            }
        }
        std::io::stdout().flush().expect("flush stdout");
        refreshes += 1;
        if count > 0 && refreshes >= count {
            break;
        }
        println!();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
    let _ = client.goodbye();
    0
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // --threads N: set the process-wide matching worker count before any
    // command runs (equivalent to the `threads` session command).
    if let Some(position) = args.iter().position(|a| a == "--threads") {
        let Some(value) = args.get(position + 1) else {
            eprintln!("error: --threads requires a count");
            std::process::exit(1);
        };
        match value.parse::<usize>() {
            Ok(n) => good_core::matching::set_default_threads(n),
            Err(_) => {
                eprintln!("error: bad thread count {value:?}");
                std::process::exit(1);
            }
        }
        args.drain(position..=position + 1);
    }

    // --profile PATH: capture every span the process emits (matcher,
    // ops, methods, store) and write a Chrome trace_event JSON file on
    // exit — including after a failed fault schedule, where the
    // timeline shows the I/O preceding the crash.
    let mut profiler: Option<Profiler> = None;
    if let Some(position) = args.iter().position(|a| a == "--profile") {
        let Some(value) = args.get(position + 1) else {
            eprintln!("error: --profile requires an output path");
            std::process::exit(1);
        };
        let collector = Arc::new(good_trace::Collector::new());
        good_trace::swap_recorder(Some(collector.clone()));
        profiler = Some(Profiler {
            path: value.clone(),
            collector,
        });
        args.drain(position..=position + 1);
    }

    // --fault-seed N [--fault-crash-at K]: developer fault-injection
    // mode. Runs the store's deterministic crash-recovery torture
    // harness — the full crash-point sweep for the seed, or a single
    // schedule when --fault-crash-at is given (the reproduction line
    // printed by torture failures). Exits 0 when every schedule
    // recovers to a committed prefix, 1 with the fault log otherwise.
    if let Some(position) = args.iter().position(|a| a == "--fault-seed") {
        let Some(value) = args.get(position + 1) else {
            eprintln!("error: --fault-seed requires a seed");
            std::process::exit(1);
        };
        let seed = match value.parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!("error: bad fault seed {value:?}");
                std::process::exit(1);
            }
        };
        args.drain(position..=position + 1);
        let mut crash_at = None;
        if let Some(position) = args.iter().position(|a| a == "--fault-crash-at") {
            let Some(value) = args.get(position + 1) else {
                eprintln!("error: --fault-crash-at requires an operation index");
                std::process::exit(1);
            };
            match value.parse::<u64>() {
                Ok(op) => crash_at = Some(op),
                Err(_) => {
                    eprintln!("error: bad crash point {value:?}");
                    std::process::exit(1);
                }
            }
            args.drain(position..=position + 1);
        }
        let config = good_store::torture::TortureConfig {
            seed,
            ..good_store::torture::TortureConfig::default()
        };
        match crash_at {
            Some(op) => match good_store::torture::crash_schedule(&config, op) {
                Ok(outcome) => {
                    for line in &outcome.fault_log {
                        println!("{line}");
                    }
                    println!(
                        "crash at op {}: acked {}, recovered to committed state {} of [{}, {}]",
                        outcome.crash_at,
                        outcome.acked,
                        outcome
                            .recovered_to
                            .map_or_else(|| "none (pre-create)".into(), |j| j.to_string()),
                        outcome.acked,
                        outcome.attempted
                    );
                }
                Err(failure) => {
                    eprintln!("{failure}");
                    finish(&profiler, 1);
                }
            },
            None => match good_store::torture::crash_sweep(&config) {
                Ok(report) => println!("seed {seed}: {}", report.summary()),
                Err(failure) => {
                    eprintln!("{failure}");
                    finish(&profiler, 1);
                }
            },
        }
        finish(&profiler, 0);
    }

    // `serve` scripted multi-session mode (or TCP mode via --listen).
    if args.first().map(String::as_str) == Some("serve") {
        let code = run_serve(&args[1..]);
        finish(&profiler, code);
    }

    // `client` wire-protocol mode.
    if args.first().map(String::as_str) == Some("client") {
        let code = run_client(&args[1..]);
        finish(&profiler, code);
    }

    // `top` live-dashboard mode.
    if args.first().map(String::as_str) == Some("top") {
        let code = run_top(&args[1..]);
        finish(&profiler, code);
    }

    let mut session = Session::new();

    // -c "commands" mode.
    if args.first().map(String::as_str) == Some("-c") {
        let text = args[1..].join(" ");
        match run_script(&mut session, &text) {
            Ok(output) => print!("{output}"),
            Err(err) => {
                eprintln!("error: {err}");
                finish(&profiler, 1);
            }
        }
        finish(&profiler, 0);
    }

    // Script-file mode.
    if let Some(path) = args.first() {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("error: cannot read {path}: {err}");
                finish(&profiler, 1);
            }
        };
        match run_script(&mut session, &text) {
            Ok(output) => print!("{output}"),
            Err(err) => {
                eprintln!("error: {err}");
                finish(&profiler, 1);
            }
        }
        finish(&profiler, 0);
    }

    // Interactive REPL.
    println!("good-db — GOOD object base shell (try `help`, quit with `quit`)");
    let stdin = std::io::stdin();
    let mut pending = String::new();
    loop {
        if pending.is_empty() {
            print!("good> ");
        } else {
            print!("  ... ");
        }
        std::io::stdout().flush().expect("flush stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(err) => {
                eprintln!("error: {err}");
                break;
            }
        }
        let trimmed = line.trim_end();
        if pending.is_empty() && matches!(trimmed, "quit" | "exit") {
            break;
        }
        if !pending.is_empty() {
            pending.push('\n');
        }
        pending.push_str(trimmed);
        if brace_balance(&pending) > 0 {
            continue;
        }
        let command = std::mem::take(&mut pending);
        match session.execute(&command) {
            Ok(report) => {
                if !report.is_empty() {
                    println!("{}", report.trim_end());
                }
            }
            Err(err) => eprintln!("error: {err}"),
        }
    }
    if let Some(profiler) = &profiler {
        profiler.write();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_script_executes_multiline_patterns() {
        let mut session = Session::new();
        let script = r#"
class Info
printable String string
functional Info name String
init
insert Info as a
value String "hello" as n
edge a name n
match {
  i: Info;
  s: String = "hello";
  i -name-> s;
}
stats
"#;
        let output = run_script(&mut session, script).unwrap();
        assert!(output.contains("1 matching(s)"));
        assert!(output.contains("2 nodes, 1 edges"));
    }

    #[test]
    fn semicolons_separate_simple_commands() {
        let mut session = Session::new();
        let output = run_script(&mut session, "class Info; init; insert Info; stats").unwrap();
        assert!(output.contains("1 nodes, 0 edges"));
    }

    #[test]
    fn errors_stop_the_script() {
        let mut session = Session::new();
        assert!(run_script(&mut session, "bogus").is_err());
    }

    #[test]
    fn split_commands_respects_braces_strings_and_comments() {
        let commands = split_commands(
            "class Info; init # trailing comment\nmatch { i: Info; s: String = \"a;b\"; }; stats",
        );
        assert_eq!(
            commands,
            vec![
                "class Info".to_string(),
                "init".to_string(),
                "match { i: Info; s: String = \"a;b\"; }".to_string(),
                "stats".to_string(),
            ]
        );
    }

    #[test]
    fn brace_balance_counts() {
        assert_eq!(brace_balance("a { b { c }"), 1);
        assert_eq!(brace_balance("{}"), 0);
        assert_eq!(brace_balance("}"), -1);
    }
}
