//! Loopback integration tests for the TCP front end: handshake,
//! pipelining, typed load shedding, disconnect torture at every
//! protocol state, graceful drain with a journal-recovery oracle, and
//! an in-process vs TCP differential.

use good_core::gen::{bench_scheme, random_workload};
use good_core::instance::Instance;
use good_core::ops::NodeAddition;
use good_core::pattern::Pattern;
use good_core::program::{Env, Operation, Program, DEFAULT_FUEL};
use good_server::client::{Client, ClientError};
use good_server::net::{NetConfig, NetServer};
use good_server::proto::{read_frame, write_frame, ErrCode, Frame, MAGIC, VERSION};
use good_server::{Server, ServerConfig};
use good_store::vfs::{FaultPlan, FaultVfs, Vfs};
use good_store::Store;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const JOURNAL: &str = "/net/db.journal";

fn start_net(server_config: ServerConfig, net_config: NetConfig) -> (NetServer, Arc<FaultVfs>) {
    let vfs = Arc::new(FaultVfs::new(FaultPlan::reliable(17)));
    let store = Store::create_with_vfs(Arc::clone(&vfs) as Arc<dyn Vfs>, JOURNAL, bench_scheme())
        .expect("create store");
    let server = Server::start(store, server_config);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let net = NetServer::start(server, listener, net_config).expect("start net server");
    (net, vfs)
}

fn labeled_program(label: &str) -> Program {
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        Pattern::new(),
        label,
        [],
    ))])
}

/// Poll until `cond` holds; panics after thirty seconds. Teardown is
/// asynchronous (handler threads observe EOF on their own schedule)
/// and the whole suite runs in parallel in one process, so state
/// assertions converge rather than fire instantly.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A raw protocol speaker for tests that must violate the protocol in
/// ways [`Client`] refuses to.
struct Raw {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Raw {
    fn connect(addr: std::net::SocketAddr) -> Raw {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let writer = stream.try_clone().expect("clone");
        Raw {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send(&mut self, frame: &Frame) {
        write_frame(&mut self.writer, frame).expect("write frame");
    }

    fn recv(&mut self) -> Option<Frame> {
        read_frame(&mut self.reader).expect("read frame")
    }

    fn handshake(&mut self) -> u64 {
        self.send(&Frame::Hello { session: 0 });
        match self.recv() {
            Some(Frame::Hello { session }) => session,
            other => panic!("expected Hello, got {other:?}"),
        }
    }
}

// ------------------------------------------------------------- happy path

#[test]
fn handshake_submit_query_snapshot_goodbye() {
    let (net, _vfs) = start_net(ServerConfig::default(), NetConfig::default());
    let mut client = Client::connect(net.local_addr()).expect("connect");
    assert!(client.session() > 0);

    let ack = client
        .submit_wait(&labeled_program("Obj1"))
        .expect("submit");
    assert_eq!(ack.commit_seq, Some(1));
    let report = ack.outcome.expect("committed");
    assert!(report.contains("+1 nodes"), "report: {report}");

    let (epoch, columns, rows) = client.query("{ o: Obj1; }", None).expect("query");
    assert_eq!(epoch, ack.epoch);
    assert_eq!(columns, vec!["o".to_string()]);
    assert_eq!(rows.len(), 1);
    assert!(rows[0][0].starts_with("Obj1("), "cell: {}", rows[0][0]);

    let info = client.snapshot(None, true).expect("snapshot");
    assert_eq!(info.epoch, ack.epoch);
    assert_eq!(info.nodes, 1);
    let dot = info.dot.expect("asked for dot");
    assert!(dot.starts_with("digraph"), "dot: {dot:.40}");
    // Without want_dot the reply carries no render.
    assert!(client
        .snapshot(None, false)
        .expect("snapshot")
        .dot
        .is_none());

    client.goodbye().expect("goodbye");
    wait_until("connection reclaimed", || {
        net.active_connections() == 0 && net.server().session_count() == 0
    });
    let store = net.shutdown().expect("shutdown");
    assert_eq!(store.instance().node_count(), 1);
}

#[test]
fn goodql_queries_ride_the_query_frame() {
    let (net, _vfs) = start_net(ServerConfig::default(), NetConfig::default());
    let mut client = Client::connect(net.local_addr()).expect("connect");
    // A bare Info (node addition is idempotent, so one is all an empty
    // pattern yields) plus a random workload for edge variety.
    client
        .submit_wait(&labeled_program("Info"))
        .expect("commit");
    for program in random_workload(7, 3) {
        client.submit_wait(&program).expect("commit workload");
    }

    // A Query frame whose text leads with MATCH is compiled as GOODQL
    // instead of pattern syntax; columns come back in RETURN order.
    let (_, columns, rows) = client
        .query("MATCH (a:Info) RETURN a", None)
        .expect("goodql query");
    assert_eq!(columns, vec!["a".to_string()]);
    assert!(!rows.is_empty(), "rows: {rows:?}");
    assert!(
        rows.iter().all(|row| row[0].starts_with("Info#")),
        "rows: {rows:?}"
    );
    // Property paths compile and run server-side; lowercase `match`
    // still routes to GOODQL.
    client
        .query(
            "MATCH (a:Info)-[:links-to*]->(b:Info) RETURN DISTINCT a, b",
            None,
        )
        .expect("path query");
    client
        .query("match (a:Info) RETURN a LIMIT 1", None)
        .expect("lowercase goodql");

    // A GOODQL parse error is a typed BadRequest carrying the caret
    // render, not a disconnect.
    match client.query("MATCH (a:Info RETURN a", None) {
        Err(ClientError::Rejected {
            code: ErrCode::BadRequest,
            detail,
            ..
        }) => {
            assert!(detail.contains("query:"), "detail: {detail}");
            assert!(detail.contains('^'), "detail: {detail}");
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // The connection survives the refusal.
    client.query("{ o: Info; }", None).expect("pattern query");
    client.goodbye().expect("goodbye");
    net.shutdown().expect("shutdown");
}

#[test]
fn pipelined_submits_ack_in_submission_order() {
    let (net, _vfs) = start_net(
        ServerConfig {
            queue_capacity: 64,
            max_batch: 8,
            ..ServerConfig::default()
        },
        NetConfig::default(),
    );
    let mut client = Client::connect(net.local_addr()).expect("connect");
    net.server().pause_writer();
    let requests: Vec<u64> = (0..10)
        .map(|i| client.submit(&labeled_program(&format!("P{i}"))).unwrap())
        .collect();
    net.server().resume_writer();
    let mut last_seq = 0;
    for request in requests {
        let ack = client.wait_ack(request).expect("ack");
        let seq = ack.commit_seq.expect("committed");
        assert!(seq > last_seq, "acks must arrive in submission order");
        last_seq = seq;
    }
    assert_eq!(last_seq, 10);
    client.goodbye().expect("goodbye");
    let store = net.shutdown().expect("shutdown");
    assert_eq!(store.instance().node_count(), 10);
}

#[test]
fn mvcc_reads_over_the_wire_see_retained_epochs() {
    let (net, _vfs) = start_net(
        ServerConfig {
            max_batch: 1,
            ..ServerConfig::default()
        },
        NetConfig::default(),
    );
    let mut client = Client::connect(net.local_addr()).expect("connect");
    let first = client.submit_wait(&labeled_program("A")).expect("submit");
    let second = client.submit_wait(&labeled_program("B")).expect("submit");
    assert!(second.epoch > first.epoch);
    // Time travel: the old epoch still shows one node.
    let old = client
        .snapshot(Some(first.epoch), false)
        .expect("old epoch");
    assert_eq!((old.epoch, old.nodes), (first.epoch, 1));
    let (epoch, _, rows) = client.query("{ a: A; }", Some(first.epoch)).expect("query");
    assert_eq!(epoch, first.epoch);
    assert_eq!(rows.len(), 1, "A exists at the old epoch");
    // B is not even part of the scheme at the old epoch: typed refusal.
    assert!(matches!(
        client.query("{ b: B; }", Some(first.epoch)),
        Err(ClientError::Rejected {
            code: ErrCode::BadRequest,
            ..
        })
    ));
    let (_, _, rows) = client.query("{ b: B; }", None).expect("current query");
    assert_eq!(rows.len(), 1, "B exists now");
    let now = client.snapshot(None, false).expect("current");
    assert_eq!((now.epoch, now.nodes), (second.epoch, 2));
    client.goodbye().expect("goodbye");
    net.shutdown().expect("shutdown");
}

// ------------------------------------------------- typed refusals and shedding

#[test]
fn session_inflight_quota_bounces_with_typed_retryable_error() {
    let (net, _vfs) = start_net(
        ServerConfig {
            queue_capacity: 64,
            ..ServerConfig::default()
        },
        NetConfig {
            session_inflight: 2,
            retry_after_ms: 7,
            ..NetConfig::default()
        },
    );
    let mut client = Client::connect(net.local_addr()).expect("connect");
    net.server().pause_writer();
    let first = client.submit(&labeled_program("Q1")).unwrap();
    let second = client.submit(&labeled_program("Q2")).unwrap();
    let third = client.submit(&labeled_program("Q3")).unwrap();
    match client.wait_ack(third) {
        Err(ClientError::Rejected {
            code: ErrCode::QuotaExceeded,
            retry_after_ms,
            ..
        }) => assert_eq!(retry_after_ms, 7),
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    net.server().resume_writer();
    assert_eq!(client.wait_ack(first).unwrap().commit_seq, Some(1));
    assert_eq!(client.wait_ack(second).unwrap().commit_seq, Some(2));
    // With acks drained the quota frees up and retrying succeeds.
    let retried = client
        .submit_wait_retrying(&labeled_program("Q4"), 10)
        .expect("retry after quota drain");
    assert_eq!(retried.commit_seq, Some(3));
    client.goodbye().expect("goodbye");
    net.shutdown().expect("shutdown");
}

#[test]
fn server_queue_backpressure_surfaces_as_typed_queue_full() {
    let (net, _vfs) = start_net(
        ServerConfig {
            queue_capacity: 1,
            ..ServerConfig::default()
        },
        NetConfig::default(),
    );
    let mut client = Client::connect(net.local_addr()).expect("connect");
    net.server().pause_writer();
    let queued = client.submit(&labeled_program("F1")).unwrap();
    client.flush().expect("flush");
    wait_until("first submit queued", || net.server().queue_depth() == 1);
    let bounced = client.submit(&labeled_program("F2")).unwrap();
    match client.wait_ack(bounced) {
        Err(ClientError::Rejected {
            code: ErrCode::QueueFull,
            retry_after_ms,
            ..
        }) => assert!(retry_after_ms > 0, "QueueFull must carry a backoff hint"),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    // submit_wait_retrying rides the hint out: a second client retries
    // against the full queue until the writer resumes.
    let addr = net.local_addr();
    let retrier = std::thread::spawn(move || {
        let mut second = Client::connect(addr).expect("connect");
        let ack = second.submit_wait_retrying(&labeled_program("F3"), 200);
        second.goodbye().expect("goodbye");
        ack
    });
    std::thread::sleep(Duration::from_millis(60));
    net.server().resume_writer();
    let retried = retrier
        .join()
        .unwrap()
        .expect("retry until the queue drains");
    assert!(retried.commit_seq.is_some());
    assert_eq!(client.wait_ack(queued).unwrap().commit_seq, Some(1));
    client.goodbye().expect("goodbye");
    let store = net.shutdown().expect("shutdown");
    assert_eq!(store.instance().node_count(), 2); // F1 + F3
}

#[test]
fn connection_admission_sheds_past_the_ceiling() {
    let (net, _vfs) = start_net(
        ServerConfig::default(),
        NetConfig {
            max_connections: 2,
            retry_after_ms: 11,
            ..NetConfig::default()
        },
    );
    let held1 = Client::connect(net.local_addr()).expect("first");
    let held2 = Client::connect(net.local_addr()).expect("second");
    match Client::connect(net.local_addr()) {
        Err(ClientError::Rejected {
            code: ErrCode::Overloaded,
            retry_after_ms,
            detail,
        }) => {
            assert_eq!(retry_after_ms, 11);
            assert!(detail.contains("connection limit"), "detail: {detail}");
        }
        other => panic!("expected Overloaded shed, got {other:?}"),
    }
    // Freeing a slot readmits.
    held1.goodbye().expect("goodbye");
    wait_until("slot freed", || net.active_connections() < 2);
    let readmitted = Client::connect(net.local_addr()).expect("readmitted");
    readmitted.goodbye().expect("goodbye");
    held2.goodbye().expect("goodbye");
    net.shutdown().expect("shutdown");
}

#[test]
fn bad_requests_get_typed_errors_not_disconnects() {
    let (net, _vfs) = start_net(ServerConfig::default(), NetConfig::default());
    let mut client = Client::connect(net.local_addr()).expect("connect");
    // Unparseable pattern.
    match client.query("o: Obj1; o -broken", None) {
        Err(ClientError::Rejected {
            code: ErrCode::BadRequest,
            detail,
            ..
        }) => assert!(detail.contains("pattern"), "detail: {detail}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // Unretained epoch.
    match client.snapshot(Some(9_999), false) {
        Err(ClientError::Rejected {
            code: ErrCode::BadRequest,
            detail,
            ..
        }) => assert!(detail.contains("not retained"), "detail: {detail}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // The connection survives both refusals.
    let ack = client
        .submit_wait(&labeled_program("Still"))
        .expect("alive");
    assert_eq!(ack.commit_seq, Some(1));
    client.goodbye().expect("goodbye");
    net.shutdown().expect("shutdown");
}

#[test]
fn handshake_violations_are_refused() {
    let (net, _vfs) = start_net(ServerConfig::default(), NetConfig::default());

    // A first frame that is not Hello.
    let mut raw = Raw::connect(net.local_addr());
    raw.send(&Frame::Goodbye {
        reason: "lol".into(),
    });
    match raw.recv() {
        Some(Frame::Err {
            code: ErrCode::BadRequest,
            detail,
            ..
        }) => assert!(detail.contains("expected Hello"), "detail: {detail}"),
        other => panic!("expected Err, got {other:?}"),
    }
    assert!(matches!(raw.recv(), Some(Frame::Goodbye { .. })));

    // Garbage after a valid handshake: typed error, then the server
    // hangs up (framing is unrecoverable).
    let mut raw = Raw::connect(net.local_addr());
    raw.handshake();
    raw.writer.write_all(b"GOODBYE CRUEL WORLD").expect("write");
    match raw.recv() {
        Some(Frame::Err {
            code: ErrCode::BadRequest,
            ..
        }) => {}
        other => panic!("expected Err, got {other:?}"),
    }
    assert!(matches!(raw.recv(), Some(Frame::Goodbye { .. })));

    // A frame that is valid wire format but senseless from a client
    // (Rows is server-to-client) is refused without disconnecting.
    let mut raw = Raw::connect(net.local_addr());
    raw.handshake();
    raw.send(&Frame::Rows {
        request: 1,
        epoch: 0,
        columns: vec![],
        rows: vec![],
    });
    match raw.recv() {
        Some(Frame::Err {
            code: ErrCode::BadRequest,
            detail,
            ..
        }) => assert!(detail.contains("unexpected Rows"), "detail: {detail}"),
        other => panic!("expected Err, got {other:?}"),
    }
    raw.send(&Frame::Goodbye {
        reason: "done".into(),
    });

    wait_until("all refused connections reclaimed", || {
        net.active_connections() == 0 && net.server().session_count() == 0
    });
    net.shutdown().expect("shutdown");
}

#[test]
fn timeouts_close_silent_connections() {
    let (net, _vfs) = start_net(
        ServerConfig::default(),
        NetConfig {
            hello_timeout: Duration::from_millis(100),
            idle_timeout: Duration::from_millis(150),
            ..NetConfig::default()
        },
    );
    // Never says Hello: refused after hello_timeout.
    let mut silent = Raw::connect(net.local_addr());
    match silent.recv() {
        Some(Frame::Err {
            code: ErrCode::BadRequest,
            ..
        }) => {}
        other => panic!("expected timeout Err, got {other:?}"),
    }
    assert!(matches!(silent.recv(), Some(Frame::Goodbye { .. })));

    // Handshakes then goes quiet: Goodbye after idle_timeout.
    let mut idle = Raw::connect(net.local_addr());
    idle.handshake();
    match idle.recv() {
        Some(Frame::Goodbye { reason }) => {
            assert!(reason.contains("idle"), "reason: {reason}")
        }
        other => panic!("expected idle Goodbye, got {other:?}"),
    }
    wait_until("timed-out connections reclaimed", || {
        net.active_connections() == 0 && net.server().session_count() == 0
    });
    net.shutdown().expect("shutdown");
}

// --------------------------------------------------------- disconnect torture

/// Abrupt disconnects at every protocol state. After each, the server
/// reclaims the session and thread, and an unrelated long-lived
/// session keeps committing with strictly increasing sequence numbers.
#[test]
fn disconnect_torture_at_every_protocol_state() {
    let (net, _vfs) = start_net(
        ServerConfig {
            queue_capacity: 64,
            ..ServerConfig::default()
        },
        NetConfig::default(),
    );
    let addr = net.local_addr();
    let mut control = Client::connect(addr).expect("control connect");
    let mut control_commits = 0u64;
    let commit = |client: &mut Client, label: &str| {
        let ack = client.submit_wait(&labeled_program(label)).expect("commit");
        ack.commit_seq.expect("committed")
    };
    let mut last = commit(&mut control, "C0");
    control_commits += 1;

    // State 1: connected, dropped before Hello.
    drop(TcpStream::connect(addr).expect("connect"));

    // State 2: dropped mid-frame — half a valid header, then gone.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut partial = Vec::new();
        partial.extend_from_slice(&MAGIC);
        partial.push(VERSION);
        stream.write_all(&partial).expect("write partial header");
        drop(stream);
    }

    // State 3: dropped right after a successful handshake.
    {
        let mut raw = Raw::connect(addr);
        raw.handshake();
        drop(raw);
    }

    // State 4: dropped after a submit is accepted but before its ack
    // exists — the writer is paused so the program is provably queued
    // when the client vanishes. The commit must still happen.
    {
        let mut doomed = Client::connect(addr).expect("connect");
        net.server().pause_writer();
        let baseline = net.server().queue_depth();
        doomed.submit(&labeled_program("Orphan")).expect("submit");
        doomed.flush().expect("flush");
        wait_until("orphan submit queued", || {
            net.server().queue_depth() > baseline
        });
        drop(doomed);
        net.server().resume_writer();
    }

    // State 5: dropped mid-pipeline — four submits provably accepted
    // (queued while the writer is paused), one ack read, then gone
    // with the rest of the acks unread. The abrupt close may RST the
    // socket; all four commits must survive regardless.
    {
        let mut doomed = Client::connect(addr).expect("connect");
        net.server().pause_writer();
        let requests: Vec<u64> = (0..4)
            .map(|i| doomed.submit(&labeled_program(&format!("Mid{i}"))).unwrap())
            .collect();
        doomed.flush().expect("flush");
        wait_until("pipeline queued", || net.server().queue_depth() >= 4);
        net.server().resume_writer();
        doomed.wait_ack(requests[0]).expect("first ack");
        drop(doomed);
    }

    // After every state: connections and sessions reclaimed (only the
    // control connection remains), and the control session still
    // commits in order.
    wait_until("torture connections reclaimed", || {
        net.active_connections() == 1 && net.server().session_count() == 1
    });
    let next = commit(&mut control, "C1");
    control_commits += 1;
    assert!(next > last, "control session's commit order broken");
    last = next;
    let next = commit(&mut control, "C2");
    control_commits += 1;
    assert!(next > last);

    control.goodbye().expect("goodbye");
    let store = net.shutdown().expect("shutdown");
    // Every accepted submit committed exactly once, ack delivered or
    // not: control's 3 + the queued orphan + the 4 mid-pipeline ones.
    assert_eq!(
        store.instance().node_count() as u64,
        control_commits + 1 + 4
    );
}

/// Disconnects while the server is draining must not wedge shutdown.
#[test]
fn disconnect_during_drain_does_not_wedge_shutdown() {
    let (net, _vfs) = start_net(ServerConfig::default(), NetConfig::default());
    let mut client = Client::connect(net.local_addr()).expect("connect");
    client.submit_wait(&labeled_program("D0")).expect("commit");
    let raw_idle = {
        let mut raw = Raw::connect(net.local_addr());
        raw.handshake();
        raw
    };
    net.begin_shutdown();
    // Both peers vanish instead of reading their Goodbye.
    drop(client);
    drop(raw_idle);
    let store = net.shutdown().expect("drain completes despite disconnects");
    assert_eq!(store.instance().node_count(), 1);
}

// ------------------------------------------------------------- graceful drain

#[test]
fn graceful_drain_commits_in_flight_and_recovers_to_acked_prefix() {
    let (net, vfs) = start_net(
        ServerConfig {
            queue_capacity: 64,
            max_batch: 4,
            ..ServerConfig::default()
        },
        NetConfig::default(),
    );
    let addr = net.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    let programs: Vec<Program> = (0..6).map(|i| labeled_program(&format!("G{i}"))).collect();

    // Hold six submits in flight, then start draining.
    net.server().pause_writer();
    let requests: Vec<u64> = programs.iter().map(|p| client.submit(p).unwrap()).collect();
    client.flush().expect("flush");
    wait_until("submits queued", || net.server().queue_depth() == 6);
    net.begin_shutdown();

    // New submits on the existing connection: typed shutdown refusal.
    let late = client
        .submit(&labeled_program("Late"))
        .expect("write side open");
    match client.wait_ack(late) {
        Err(ClientError::Rejected {
            code: ErrCode::Shutdown,
            ..
        }) => {}
        other => panic!("expected Shutdown, got {other:?}"),
    }
    // New connections: refused (typed shed if the accept loop is still
    // parked, connection error once the listener is gone; a plain
    // connect failure means the listener already closed).
    if let Ok(stream) = TcpStream::connect(addr) {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        match Client::from_stream(stream) {
            Err(ClientError::Rejected {
                code: ErrCode::Shutdown,
                ..
            })
            | Err(ClientError::Io(_))
            | Err(ClientError::Disconnected) => {}
            other => panic!("draining server admitted a connection: {other:?}"),
        }
    }

    // Everything in flight still commits and acks.
    net.server().resume_writer();
    let mut acked = Vec::new();
    for (request, program) in requests.iter().zip(&programs) {
        let ack = client.wait_ack(*request).expect("in-flight ack");
        acked.push((ack.commit_seq.expect("committed"), program.clone()));
    }
    let store = net.shutdown().expect("drain");

    // Recovery oracle: reboot the virtual disk and reopen the journal —
    // it must hold exactly the acked prefix.
    let reopened = Store::open_with_vfs(Arc::new(vfs.reboot()) as Arc<dyn Vfs>, JOURNAL)
        .expect("reopen journal");
    let mut serial = Instance::new(bench_scheme());
    let mut env = Env::with_fuel(DEFAULT_FUEL);
    acked.sort_by_key(|(seq, _)| *seq);
    for (_, program) in &acked {
        env.refuel();
        program.apply(&mut serial, &mut env).expect("serial replay");
    }
    assert_eq!(
        reopened.instance().to_dot("drain"),
        serial.to_dot("drain"),
        "journal after drain must recover to exactly the acked prefix"
    );
    assert_eq!(
        store.instance().to_dot("drain"),
        serial.to_dot("drain"),
        "returned store must equal the acked prefix"
    );
}

// -------------------------------------------------------------- differential

/// The wire adds nothing and loses nothing: the same seeded workload
/// submitted in lockstep in-process and over loopback TCP produces the
/// same commit/reject decisions, the same commit sequence, and a
/// byte-identical final DOT render.
#[test]
fn differential_in_process_vs_tcp_is_byte_identical() {
    let seed = 909;
    let programs = random_workload(seed, 40);

    // In-process reference.
    let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(FaultPlan::reliable(seed)));
    let store = Store::create_with_vfs(vfs, JOURNAL, bench_scheme()).expect("create");
    let server = Server::start(store, ServerConfig::default());
    let session = server.open_session();
    let reference_seqs: Vec<Option<u64>> = programs
        .iter()
        .map(|p| server.submit_wait(session, p.clone()).unwrap().commit_seq)
        .collect();
    let reference_store = server.shutdown().expect("shutdown");
    let reference_dot = reference_store.instance().to_dot("snapshot");

    // Loopback TCP, four clients round-robin, lockstep (one program in
    // flight globally) so the commit order is forced.
    let (net, _vfs) = start_net(ServerConfig::default(), NetConfig::default());
    let mut clients: Vec<Client> = (0..4)
        .map(|_| Client::connect(net.local_addr()).expect("connect"))
        .collect();
    let wire_seqs: Vec<Option<u64>> = programs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            clients[i % 4]
                .submit_wait(p)
                .expect("lockstep submit")
                .commit_seq
        })
        .collect();
    let wire_dot = clients[0]
        .snapshot(None, true)
        .expect("final snapshot")
        .dot
        .expect("asked for dot");
    for client in clients {
        client.goodbye().expect("goodbye");
    }
    let wire_store = net.shutdown().expect("shutdown");

    assert_eq!(
        reference_seqs, wire_seqs,
        "transport changed commit/reject decisions (seed {seed})"
    );
    assert_eq!(
        reference_dot, wire_dot,
        "final DOT over the wire differs from in-process (seed {seed})"
    );
    assert_eq!(reference_dot, wire_store.instance().to_dot("snapshot"));
}

// ------------------------------------------------------------------ churn

/// Sequential connect/work/disconnect churn: sessions, connections,
/// and the registry all return to baseline, and the store ends exactly
/// as the commit count demands.
#[test]
fn connection_churn_leaks_nothing() {
    let (net, _vfs) = start_net(ServerConfig::default(), NetConfig::default());
    let cycles = 30;
    for i in 0..cycles {
        let mut client = Client::connect(net.local_addr()).expect("connect");
        let ack = client
            .submit_wait(&labeled_program(&format!("Churn{i}")))
            .expect("commit");
        assert_eq!(ack.commit_seq, Some(i as u64 + 1));
        if i % 3 == 0 {
            client.goodbye().expect("goodbye"); // polite close
        } else {
            drop(client); // abrupt close
        }
    }
    wait_until("churn reclaimed", || {
        net.active_connections() == 0 && net.server().session_count() == 0
    });
    assert_eq!(net.total_accepted(), cycles as u64);
    let store = net.shutdown().expect("shutdown");
    assert_eq!(store.instance().node_count(), cycles);
}
