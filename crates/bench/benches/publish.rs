//! E16 — snapshot publish cost on the persistent instance
//! (EXPERIMENTS.md §E16).
//!
//! Measures the writer-side publish path at growing instance sizes,
//! two ways:
//!
//! * **persistent** — `cell.publish(db.clone())`: the shipping path.
//!   `Instance` is structurally shared, so the clone is a handful of
//!   `Arc` bumps and the publish a pointer rotation — cost should be
//!   essentially flat in instance size.
//! * **clone-based** — `cell.publish(db.deep_clone())`: the
//!   pre-persistent cost model, where every publish paid a full
//!   structural copy of the graph and its indexes — cost grows
//!   linearly with the instance.
//!
//! Prints criterion-style lines and emits machine-readable results
//! (publish ns plus approx bytes copied per publish) to
//! `BENCH_publish.json` in the workspace root.
//!
//! Doubles as the CI publish smoke: `--check <baseline.json>`
//! re-measures only the persistent medians and exits nonzero if any
//! size regressed more than 10% (plus a small absolute slack) against
//! the recorded baseline.

use good_bench::instance_of;
use good_core::snapshot::{RetentionPolicy, SnapshotCell};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const SIZES: &[usize] = &[1_600, 6_400, 25_600, 100_000];
const SAMPLES: usize = 7;
const TARGET_SAMPLE_NANOS: u128 = 40_000_000; // ~40ms per sample
const CHECK_TOLERANCE: f64 = 1.10;
// Persistent publishes are sub-µs; a 500ns floor absorbs timer and
// scheduler granularity without hiding a real complexity regression
// (the clone-based path costs tens of ms at the top size).
const CHECK_SLACK_NANOS: u128 = 500;

struct Measurement {
    nodes: usize,
    instance_bytes: usize,
    persist_ns: u128,
    clone_ns: u128,
}

fn format_nanos(nanos: u128) -> String {
    let nanos = nanos as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// Median per-iteration time of `routine` over `SAMPLES` samples, each
/// sized to roughly `TARGET_SAMPLE_NANOS`.
fn measure(mut routine: impl FnMut()) -> u128 {
    let start = Instant::now();
    routine();
    let once = start.elapsed().as_nanos().max(1);
    let iterations = (TARGET_SAMPLE_NANOS / once).clamp(1, 10_000);
    let mut samples: Vec<u128> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iterations {
            routine();
        }
        samples.push(start.elapsed().as_nanos() / iterations);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median cost of the persistent publish path at `nodes` Info objects.
fn measure_persistent(nodes: usize) -> u128 {
    let db = Arc::new(instance_of(nodes));
    // No history: the ring would otherwise retain every iteration's
    // publish (cheap for the persistent lane, ruinous for deep clones),
    // and retention is not what this experiment measures.
    let cell = SnapshotCell::new_shared(Arc::clone(&db), RetentionPolicy::none());
    measure(move || {
        cell.publish((*db).clone());
    })
}

fn measure_clone_based(nodes: usize) -> u128 {
    let db = Arc::new(instance_of(nodes));
    let cell = SnapshotCell::new_shared(Arc::clone(&db), RetentionPolicy::none());
    measure(move || {
        cell.publish(db.deep_clone());
    })
}

fn workspace_path(file: &str) -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/
    path.pop(); // workspace root
    path.push(file);
    path
}

fn json_num_field(line: &str, key: &str) -> Option<u128> {
    let start = line.find(key)? + key.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extract `(nodes, persist_ns)` pairs from a previously emitted
/// `BENCH_publish.json` (flat hand-formatted JSON, one result per
/// line — no parser dependency needed).
fn parse_baseline(text: &str) -> Vec<(usize, u128)> {
    text.lines()
        .filter_map(|line| {
            let nodes = json_num_field(line, "\"nodes\": ")? as usize;
            let persist_ns = json_num_field(line, "\"persist_ns\": ")?;
            Some((nodes, persist_ns))
        })
        .collect()
}

/// CI smoke: re-measure the persistent publish medians and fail on
/// >10% regression against the recorded baseline.
fn run_check(baseline_arg: &str) -> ! {
    let path = if std::path::Path::new(baseline_arg).is_absolute() {
        PathBuf::from(baseline_arg)
    } else {
        workspace_path(baseline_arg)
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read baseline {}: {err}", path.display());
            std::process::exit(1);
        }
    };
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        eprintln!("no results found in baseline {}", path.display());
        std::process::exit(1);
    }
    println!(
        "E16 publish smoke — persistent medians vs {}",
        path.display()
    );
    let mut failed = false;
    for &nodes in SIZES {
        // Best of two medians: damp scheduler spikes on shared runners.
        let persist_ns = measure_persistent(nodes).min(measure_persistent(nodes));
        match baseline.iter().find(|(n, _)| *n == nodes) {
            Some((_, base_ns)) => {
                let ratio = persist_ns as f64 / *base_ns as f64;
                let allowed = (*base_ns as f64 * CHECK_TOLERANCE) as u128 + CHECK_SLACK_NANOS;
                let verdict = if persist_ns > allowed {
                    failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "publish@{nodes:<7} persistent {:>12}  baseline {:>12}  ratio {ratio:.3}  {verdict}",
                    format_nanos(persist_ns),
                    format_nanos(*base_ns),
                );
            }
            None => {
                failed = true;
                println!("publish@{nodes:<7} missing from baseline");
            }
        }
    }
    if failed {
        eprintln!("persistent publish medians regressed more than 10% vs baseline");
        std::process::exit(1);
    }
    println!("persistent publish medians within 10% of baseline");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(position) = args.iter().position(|a| a == "--check") {
        let Some(baseline) = args.get(position + 1) else {
            eprintln!("error: --check requires a baseline path");
            std::process::exit(1);
        };
        run_check(baseline);
    }

    println!("E16 snapshot publish — persistent vs clone-based");
    let mut measurements: Vec<Measurement> = Vec::new();
    for &nodes in SIZES {
        let instance_bytes = instance_of(nodes).approx_bytes();
        let persist_ns = measure_persistent(nodes);
        let clone_ns = measure_clone_based(nodes);
        let speedup = clone_ns as f64 / persist_ns as f64;
        println!(
            "E16-publish/@{nodes:<7} persistent: [median {:>12}]  clone-based: [median {:>12}]  speedup {speedup:.0}x  (~{:.1} MiB instance)",
            format_nanos(persist_ns),
            format_nanos(clone_ns),
            instance_bytes as f64 / (1024.0 * 1024.0),
        );
        measurements.push(Measurement {
            nodes,
            instance_bytes,
            persist_ns,
            clone_ns,
        });
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"E16-publish\",");
    json.push_str("  \"results\": [\n");
    for (index, m) in measurements.iter().enumerate() {
        let comma = if index + 1 == measurements.len() {
            ""
        } else {
            ","
        };
        let speedup = m.clone_ns as f64 / m.persist_ns as f64;
        // Bytes copied per publish: the clone-based lane structurally
        // copies the whole instance; the persistent lane copies only
        // the constant-size handle (counted as 0 here — the true cost
        // is the O(delta log n) trie nodes the *mutation* copied).
        let _ = writeln!(
            json,
            "    {{\"nodes\": {}, \"instance_bytes\": {}, \"persist_ns\": {}, \"clone_ns\": {}, \"clone_copied_bytes\": {}, \"persist_copied_bytes\": 0, \"speedup\": {speedup:.1}}}{comma}",
            m.nodes, m.instance_bytes, m.persist_ns, m.clone_ns, m.instance_bytes
        );
    }
    json.push_str("  ]\n}\n");

    let path = workspace_path("BENCH_publish.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
