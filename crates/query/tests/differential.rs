//! The cross-backend differential oracle: random generated queries
//! over random instances, with the core pattern matcher, the
//! relational encoding, and the Tarski binary-relation algebra all
//! required to return bit-identical canonicalized row sets — the
//! paper's completeness theorems (Sections 4.3 and 5) as an always-on
//! property test.
//!
//! Tier-1 runs 256 generated query/instance cases; the nightly cron
//! runs the 10 000-case `--ignored` sweep (see `.github/workflows`).

use good_core::gen::{bench_scheme, random_instance, random_workload, GenConfig};
use good_core::instance::Instance;
use good_core::program::Env;
use good_query::exec::run_differential;
use good_query::gen::random_query;

/// The instance pool: `random_workload` programs applied from the
/// empty bench-scheme instance (exercising whatever shape the workload
/// leaves behind, tag classes included) and `random_instance` mixes of
/// several densities, all deterministic in `seed`.
fn instance_for(seed: u64) -> Instance {
    match seed % 3 {
        0 => {
            let mut db = Instance::new(bench_scheme());
            let mut env = Env::new();
            for program in random_workload(seed, 6) {
                env.refuel();
                program.apply(&mut db, &mut env).expect("workload applies");
            }
            db
        }
        1 => random_instance(&GenConfig {
            infos: 12,
            avg_links: 1.5,
            distinct_dates: 4,
            seed,
        }),
        _ => random_instance(&GenConfig {
            infos: 6,
            avg_links: 2.5,
            distinct_dates: 2,
            seed,
        }),
    }
}

fn sweep(cases: u64, offset: u64) {
    for case in 0..cases {
        let seed = offset + case;
        let db = instance_for(seed);
        let query = random_query(seed);
        let text = query.to_string();
        run_differential(&db, &text)
            .unwrap_or_else(|err| panic!("case {seed} failed on `{text}`:\n{}", err.render(&text)));
    }
}

#[test]
fn three_backends_agree_on_256_generated_queries() {
    sweep(256, 0);
}

/// The nightly 10k-case sweep (`cargo test -p good-query --release --
/// --ignored`). Offset past the tier-1 seeds so the two runs cover
/// disjoint cases.
#[test]
#[ignore = "10k-case differential sweep; run by the nightly cron"]
fn three_backends_agree_on_10k_generated_queries() {
    sweep(10_000, 256);
}
