//! Query execution: three independent lanes over one compiled query.
//!
//! * **Core** — the compiled GOOD program (edge additions + starred
//!   edge additions) materializes derived path labels into an `O(1)`
//!   scratch clone, then the native pattern matcher answers the match
//!   (negation included).
//! * **Relational** — property paths are recomputed with a plain-Rust
//!   BFS over exact-length frontiers, the derived edges inserted into
//!   a scratch clone, and `RelBackend` (the paper's relational
//!   encoding) answers the positive match; crossed edges become the
//!   negation macro's set difference.
//! * **Tarski** — the same pairs are recomputed a third way, in the
//!   binary-relation algebra (`compose` / `union` / `identity` /
//!   `transitive_closure`), and `TarskiBackend` answers a
//!   predicate-free match with WHERE predicates post-filtered.
//!
//! The three lanes share only the parsed AST — path computation, join
//! machinery, and negation handling are all independent — so
//! [`run_differential`] is a genuine cross-check of the paper's
//! equivalence theorems, not one computation viewed three ways.
//!
//! Rows are canonicalized identically everywhere: cells render as the
//! GOODQL literal for printables and `label#index` for objects; rows
//! sort lexicographically; `DISTINCT` dedups; `LIMIT` truncates after
//! the sort. Identical `QueryOutput`s therefore mean identical answer
//! sets.

use crate::ast::render_value;
use crate::compile::{compile, CompiledQuery, PathDerivation, Step};
use crate::parser::parse_query;
use crate::QueryError;
use good_core::instance::Instance;
use good_core::matching::{explain_plan_profiled, find_matchings_with, MatchConfig, Matching};
use good_core::pattern::Pattern;
use good_core::program::Env;
use good_graph::NodeId;
use good_relational::backend::RelBackend;
use good_tarski::{BinRel, TarskiBackend};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Which execution lane answers the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The GOOD pattern matcher over the compiled program (default).
    Core,
    /// The relational encoding (`good-relational`).
    Relational,
    /// The binary-relation algebra (`good-tarski`).
    Tarski,
}

impl Backend {
    /// All lanes, in differential-comparison order.
    pub const ALL: [Backend; 3] = [Backend::Core, Backend::Relational, Backend::Tarski];

    /// The lane's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Core => "core",
            Backend::Relational => "relational",
            Backend::Tarski => "tarski",
        }
    }

    /// Parse a CLI name.
    pub fn from_name(name: &str) -> Option<Backend> {
        match name {
            "core" => Some(Backend::Core),
            "relational" | "rel" => Some(Backend::Relational),
            "tarski" => Some(Backend::Tarski),
            _ => None,
        }
    }
}

/// A canonicalized query answer: column names (the RETURN variables)
/// and lexicographically sorted rows of rendered cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutput {
    /// The RETURN variables, in RETURN order.
    pub columns: Vec<String>,
    /// Sorted rows; printables render as literals, objects as
    /// `label#index`.
    pub rows: Vec<Vec<String>>,
}

/// Parse, compile, and execute `text` against `db` on one backend.
pub fn run(db: &Instance, text: &str, backend: Backend) -> Result<QueryOutput, QueryError> {
    let query = parse_query(text)?;
    let compiled = compile(&query, db.scheme())?;
    execute(db, &compiled, backend)
}

/// Execute a compiled query on one backend.
pub fn execute(
    db: &Instance,
    compiled: &CompiledQuery,
    backend: Backend,
) -> Result<QueryOutput, QueryError> {
    let tuples = match backend {
        Backend::Core => core_tuples(db, compiled)?,
        Backend::Relational => relational_tuples(db, compiled)?,
        Backend::Tarski => tarski_tuples(db, compiled)?,
    };
    Ok(project(db, compiled, tuples))
}

/// Execute on all three backends and require bit-identical outputs —
/// the differential oracle. Returns the (agreed) output.
pub fn run_differential(db: &Instance, text: &str) -> Result<QueryOutput, QueryError> {
    let query = parse_query(text)?;
    let compiled = compile(&query, db.scheme())?;
    let core = execute(db, &compiled, Backend::Core)?;
    for backend in [Backend::Relational, Backend::Tarski] {
        let other = execute(db, &compiled, backend)?;
        if other != core {
            return Err(QueryError::Exec(format!(
                "differential mismatch: core returned {} row(s), {} returned {} row(s) \
                 for `{query}`",
                core.rows.len(),
                backend.name(),
                other.rows.len(),
            )));
        }
    }
    Ok(core)
}

/// Parse, compile, and render the compiled program plus the match plan
/// (`explain_plan_profiled` with a pinned single-thread config, so the
/// render is stable for goldens).
pub fn explain(db: &Instance, text: &str) -> Result<String, QueryError> {
    let query = parse_query(text)?;
    let compiled = compile(&query, db.scheme())?;
    let scratch = materialize_core(db, &compiled)?;
    let mut out = compiled.render_program(scratch.scheme());
    let (pattern, nodes) = compiled.pattern(true);
    let plan = explain_plan_profiled(&pattern, &scratch, pinned_config())?;
    let by_node: BTreeMap<NodeId, String> =
        nodes.into_iter().map(|(var, node)| (node, var)).collect();
    out.push('\n');
    out.push_str(&plan.render_with(|node| by_node.get(&node).cloned()));
    Ok(out)
}

/// The plan config pinned for stable golden renders.
pub fn pinned_config() -> MatchConfig {
    MatchConfig {
        threads: 1,
        parallel_threshold: 128,
    }
}

// ---- core lane ------------------------------------------------------------

/// Apply the compiled path-derivation program to a scratch clone.
fn materialize_core(db: &Instance, compiled: &CompiledQuery) -> Result<Instance, QueryError> {
    let mut scratch = db.clone();
    // Pre-register every derived label: a derivation whose seed matches
    // nothing never reaches the minimal scheme extension, but the match
    // pattern still references the label.
    for (class, label) in compiled.derived_triples() {
        scratch.extend_multivalued(class.clone(), label, class)?;
    }
    let mut env = Env::new();
    for step in compiled.core_steps() {
        match step {
            Step::Op(op) => {
                op.apply(&mut scratch, &mut env)?;
            }
            Step::Star(star) => {
                star.apply(&mut scratch, &mut env)?;
            }
        }
    }
    Ok(scratch)
}

fn core_tuples(db: &Instance, compiled: &CompiledQuery) -> Result<Vec<Vec<NodeId>>, QueryError> {
    let scratch = materialize_core(db, compiled)?;
    let (pattern, nodes) = compiled.pattern(true);
    let matchings = find_matchings_with(&pattern, &scratch, MatchConfig::default())?;
    Ok(to_tuples(&matchings, &nodes, &compiled.vars))
}

// ---- relational lane ------------------------------------------------------

fn relational_tuples(
    db: &Instance,
    compiled: &CompiledQuery,
) -> Result<Vec<Vec<NodeId>>, QueryError> {
    let mut scratch = db.clone();
    for path in &compiled.paths {
        let pairs = bfs_pairs(db, path);
        scratch.extend_multivalued(path.class.clone(), path.derived.clone(), path.class.clone())?;
        for (src, dst) in pairs {
            scratch.add_edge(src, path.derived.clone(), dst)?;
        }
    }
    let backend = RelBackend::from_instance(&scratch);
    let (pattern, nodes) = compiled.pattern(true);
    subtract_negated(
        |p| backend.match_pattern(p).map_err(QueryError::from),
        &pattern,
        &nodes,
        &compiled.vars,
    )
}

/// Walk-semantics path pairs by breadth-first search over exact-length
/// frontiers — the relational lane's independent path computation.
fn bfs_pairs(db: &Instance, path: &PathDerivation) -> BTreeSet<(NodeId, NodeId)> {
    let members: Vec<NodeId> = db.nodes_with_label(&path.class).collect();
    let succ: BTreeMap<NodeId, Vec<NodeId>> = members
        .iter()
        .map(|&node| (node, db.targets(node, &path.edge).collect()))
        .collect();
    let mut pairs = BTreeSet::new();
    if path.min == 0 {
        for &node in &members {
            pairs.insert((node, node));
        }
    }
    match path.max {
        Some(max) => {
            // frontier(l) = nodes reachable by some walk of length
            // exactly l; collect frontiers for l in [max(min,1), max].
            let lo = path.min.max(1);
            for &start in &members {
                let mut frontier: BTreeSet<NodeId> = BTreeSet::from([start]);
                for length in 1..=max {
                    let next: BTreeSet<NodeId> = frontier
                        .iter()
                        .flat_map(|node| succ[node].iter().copied())
                        .collect();
                    if length >= lo {
                        for &dst in &next {
                            pairs.insert((start, dst));
                        }
                    }
                    if next.is_empty() {
                        break;
                    }
                    frontier = next;
                }
            }
        }
        None if path.min <= 1 => {
            // Plain reachability (≥ 1 step).
            for &start in &members {
                let mut seen: BTreeSet<NodeId> = BTreeSet::new();
                let mut queue: VecDeque<NodeId> = succ[&start].iter().copied().collect();
                while let Some(node) = queue.pop_front() {
                    if seen.insert(node) {
                        pairs.insert((start, node));
                        queue.extend(succ[&node].iter().copied());
                    }
                }
            }
        }
        None => {
            // Lengths ≥ m: an exact (m-1)-walk to a midpoint, then ≥ 1
            // more steps (the B^(m-1) ∘ TC decomposition, recomputed by
            // search instead of edge additions).
            let mut closure: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
            for &start in &members {
                let mut seen: BTreeSet<NodeId> = BTreeSet::new();
                let mut queue: VecDeque<NodeId> = succ[&start].iter().copied().collect();
                while let Some(node) = queue.pop_front() {
                    if seen.insert(node) {
                        queue.extend(succ[&node].iter().copied());
                    }
                }
                closure.insert(start, seen);
            }
            for &start in &members {
                let mut frontier: BTreeSet<NodeId> = BTreeSet::from([start]);
                for _ in 0..(path.min - 1) {
                    frontier = frontier
                        .iter()
                        .flat_map(|node| succ[node].iter().copied())
                        .collect();
                    if frontier.is_empty() {
                        break;
                    }
                }
                for mid in &frontier {
                    for &dst in &closure[mid] {
                        pairs.insert((start, dst));
                    }
                }
            }
        }
    }
    pairs
}

// ---- tarski lane ----------------------------------------------------------

fn tarski_tuples(db: &Instance, compiled: &CompiledQuery) -> Result<Vec<Vec<NodeId>>, QueryError> {
    let mut scratch = db.clone();
    for path in &compiled.paths {
        let members: Vec<NodeId> = db.nodes_with_label(&path.class).collect();
        let base = BinRel::from_pairs(members.iter().flat_map(|&node| {
            db.targets(node, &path.edge)
                .map(move |dst| (node, dst))
                .collect::<Vec<_>>()
        }));
        let rel = path_rel(&base, &members, path.min, path.max);
        scratch.extend_multivalued(path.class.clone(), path.derived.clone(), path.class.clone())?;
        for (src, dst) in rel.iter() {
            scratch.add_edge(*src, path.derived.clone(), *dst)?;
        }
    }
    let backend = TarskiBackend::from_instance(&scratch);
    // The binary decomposition keeps no value column, so predicates are
    // post-filtered on the tuple images instead of pushed into the match.
    let (pattern, nodes) = compiled.pattern(false);
    let mut tuples = subtract_negated(
        |p| backend.match_pattern(p).map_err(QueryError::from),
        &pattern,
        &nodes,
        &compiled.vars,
    )?;
    for (var, predicate) in &compiled.predicates {
        let index = compiled
            .vars
            .iter()
            .position(|v| v == var)
            .expect("predicate variables are bound");
        tuples.retain(|tuple| {
            db.print_value(tuple[index])
                .is_some_and(|value| predicate.matches(value))
        });
    }
    Ok(tuples)
}

/// The walk-semantics repetition in the binary-relation algebra — the
/// Tarski lane's independent path computation.
fn path_rel(
    base: &BinRel<NodeId>,
    members: &[NodeId],
    min: u32,
    max: Option<u32>,
) -> BinRel<NodeId> {
    let mut rel = match max {
        None => {
            let closure = base.transitive_closure();
            if min <= 1 {
                closure
            } else {
                // B^(min-1) ∘ TC.
                let mut prefix = base.clone();
                for _ in 2..min {
                    prefix = prefix.compose(base);
                }
                prefix.compose(&closure)
            }
        }
        Some(0) => BinRel::from_pairs(Vec::new()),
        Some(max) => {
            // Union of the exact powers B^l for l in [max(min,1), max].
            let lo = min.max(1);
            let mut rel = BinRel::from_pairs(Vec::new());
            let mut power = base.clone();
            for length in 1..=max {
                if length >= lo {
                    rel = rel.union(&power);
                }
                if length < max {
                    power = power.compose(base);
                }
            }
            rel
        }
    };
    if min == 0 {
        rel = rel.union(&BinRel::identity(members.iter().copied()));
    }
    rel
}

// ---- shared helpers -------------------------------------------------------

/// Positive matchings minus the ones that extend to the unnegated
/// pattern — the negation macro's set difference, applied tuple-wise.
/// `positive_part`/`unnegated` preserve the node arena, so tuples from
/// both matches are directly comparable.
fn subtract_negated(
    matcher: impl Fn(&Pattern) -> Result<Vec<Matching>, QueryError>,
    pattern: &Pattern,
    nodes: &BTreeMap<String, NodeId>,
    vars: &[String],
) -> Result<Vec<Vec<NodeId>>, QueryError> {
    let positive = pattern.positive_part();
    let mut tuples = to_tuples(&matcher(&positive)?, nodes, vars);
    if pattern.has_negation() {
        let violating: BTreeSet<Vec<NodeId>> =
            to_tuples(&matcher(&pattern.unnegated())?, nodes, vars)
                .into_iter()
                .collect();
        tuples.retain(|tuple| !violating.contains(tuple));
    }
    Ok(tuples)
}

/// Matchings → var tuples (images of `vars`, in order).
fn to_tuples(
    matchings: &[Matching],
    nodes: &BTreeMap<String, NodeId>,
    vars: &[String],
) -> Vec<Vec<NodeId>> {
    matchings
        .iter()
        .map(|matching| vars.iter().map(|var| matching.image(nodes[var])).collect())
        .collect()
}

/// Project tuples onto the RETURN variables and canonicalize rows.
fn project(db: &Instance, compiled: &CompiledQuery, tuples: Vec<Vec<NodeId>>) -> QueryOutput {
    let indices: Vec<usize> = compiled
        .ast
        .returns
        .iter()
        .map(|var| {
            compiled
                .vars
                .iter()
                .position(|v| v == var)
                .expect("RETURN variables are bound")
        })
        .collect();
    let mut rows: Vec<Vec<String>> = tuples
        .iter()
        .map(|tuple| {
            indices
                .iter()
                .map(|&index| render_cell(db, tuple[index]))
                .collect()
        })
        .collect();
    rows.sort();
    if compiled.ast.distinct {
        rows.dedup();
    }
    if let Some(limit) = compiled.ast.limit {
        rows.truncate(limit as usize);
    }
    QueryOutput {
        columns: compiled.ast.returns.clone(),
        rows,
    }
}

/// One cell: the literal for printables, `label#index` for objects.
fn render_cell(db: &Instance, node: NodeId) -> String {
    match db.print_value(node) {
        Some(value) => render_value(value),
        None => {
            let label = db
                .node_label(node)
                .map_or_else(|| "?".to_string(), |label| label.to_string());
            format!("{label}#{}", node.index())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use good_core::gen::bench_scheme;
    use good_core::label::Label;
    use good_core::value::Value;

    /// A small hand-built instance: a links-to cycle of three Infos plus
    /// a dangling fourth, with names.
    fn small_instance() -> Instance {
        let mut db = Instance::new(bench_scheme());
        let links = Label::new("links-to");
        let name = Label::new("name");
        let infos: Vec<NodeId> = (0..4)
            .map(|_| db.add_object("Info").expect("node"))
            .collect();
        for (index, &info) in infos.iter().enumerate() {
            let text = db
                .add_printable("String", Value::str(format!("doc-{index}")))
                .expect("printable");
            db.add_edge(info, name.clone(), text).expect("edge");
        }
        db.add_edge(infos[0], links.clone(), infos[1])
            .expect("edge");
        db.add_edge(infos[1], links.clone(), infos[2])
            .expect("edge");
        db.add_edge(infos[2], links.clone(), infos[0])
            .expect("edge");
        db.add_edge(infos[0], links.clone(), infos[3])
            .expect("edge");
        db
    }

    fn agreed(db: &Instance, text: &str) -> QueryOutput {
        run_differential(db, text).expect("differential")
    }

    #[test]
    fn simple_match_agrees() {
        let db = small_instance();
        let out = agreed(&db, "MATCH (a:Info)-[:links-to]->(b:Info) RETURN a, b");
        assert_eq!(out.rows.len(), 4);
    }

    #[test]
    fn predicates_agree() {
        let db = small_instance();
        let out = agreed(
            &db,
            "MATCH (a:Info)-[:name]->(n:String) WHERE n CONTAINS \"2\" RETURN n",
        );
        assert_eq!(out.rows, vec![vec!["\"doc-2\"".to_string()]]);
    }

    #[test]
    fn transitive_closure_on_cycle_agrees() {
        let db = small_instance();
        let out = agreed(&db, "MATCH (a:Info)-[:links-to*]->(b:Info) RETURN a, b");
        // The 3-cycle reaches everything incl. itself (9 pairs) plus the
        // dangling node from each cycle member (3 pairs).
        assert_eq!(out.rows.len(), 12);
    }

    #[test]
    fn zero_or_more_includes_identity() {
        let db = small_instance();
        let closure = agreed(&db, "MATCH (a:Info)-[:links-to*]->(b:Info) RETURN a, b");
        let reflexive = agreed(&db, "MATCH (a:Info)-[:links-to*0..]->(b:Info) RETURN a, b");
        // The three cycle members already reach themselves; only the
        // dangling node's identity pair is new.
        assert_eq!(reflexive.rows.len(), closure.rows.len() + 1);
    }

    #[test]
    fn bounded_path_matches_walk_semantics() {
        let db = small_instance();
        // Walks of length exactly 2 from the 3-cycle: each cycle node
        // reaches its second successor, and 2→0→3 reaches the dangler.
        let out = agreed(&db, "MATCH (a:Info)-[:links-to*2]->(b:Info) RETURN a, b");
        assert_eq!(out.rows.len(), 4);
    }

    #[test]
    fn min_bound_shifts_the_window() {
        let db = small_instance();
        // Length ≥ 4 walks exist only through the cycle, which loops, so
        // pairs coincide with the full closure restricted to sources on
        // the cycle.
        let out = agreed(&db, "MATCH (a:Info)-[:links-to*4..]->(b:Info) RETURN a, b");
        assert_eq!(out.rows.len(), 12);
    }

    #[test]
    fn negation_agrees() {
        let db = small_instance();
        let out = agreed(
            &db,
            "MATCH (a:Info), (b:Info) WHERE NOT (a)-[:links-to]->(b) RETURN a, b",
        );
        assert_eq!(out.rows.len(), 16 - 4);
    }

    #[test]
    fn distinct_and_limit_canonicalize() {
        let db = small_instance();
        let all = agreed(&db, "MATCH (a:Info)-[:links-to]->(b:Info) RETURN a");
        assert_eq!(all.rows.len(), 4); // bag semantics: Info#0 twice
        let distinct = agreed(
            &db,
            "MATCH (a:Info)-[:links-to]->(b:Info) RETURN DISTINCT a",
        );
        assert_eq!(distinct.rows.len(), 3);
        let limited = agreed(
            &db,
            "MATCH (a:Info)-[:links-to]->(b:Info) RETURN DISTINCT a LIMIT 2",
        );
        assert_eq!(limited.rows.len(), 2);
        assert_eq!(limited.rows[..], distinct.rows[..2]);
    }

    #[test]
    fn exact_value_constraint_agrees() {
        let db = small_instance();
        let out = agreed(
            &db,
            "MATCH (a:Info)-[:name]->(n:String = \"doc-1\") RETURN a, n",
        );
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn empty_base_edge_set_is_fine() {
        // rec-links-to has no edges in the small instance: the seed adds
        // nothing, and all three lanes must still agree on the empty
        // answer (this exercises derived-label pre-registration).
        let db = small_instance();
        let out = agreed(&db, "MATCH (a:Info)-[:rec-links-to*]->(b:Info) RETURN a, b");
        assert!(out.rows.is_empty());
    }

    #[test]
    fn explain_renders_program_and_plan() {
        let db = small_instance();
        let text = explain(&db, "MATCH (a:Info)-[:links-to*]->(b:Info) RETURN a").expect("explain");
        assert!(text.contains("starred"), "{text}");
        assert!(text.contains("match J where J ="), "{text}");
    }
}
