//! E8 — method machinery overhead: call cost over receiver fan-out and
//! body length, and the price of interface filtering (temporaries
//! created and then restricted away).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use good_bench::instance_of;
use good_core::label::{receiver_label, Label};
use good_core::method::{execute_call, Method, MethodCall, MethodSpec};
use good_core::ops::NodeAddition;
use good_core::pattern::Pattern;
use good_core::program::{Env, Operation};
use good_core::scheme::Scheme;
use std::time::Duration;

/// A method whose body is `body_len` no-op-ish node additions tagging
/// the receiver with temp classes (filtered by the empty interface).
fn temp_tagging_method(body_len: usize) -> Method {
    let mut body = Vec::new();
    for index in 0..body_len {
        let mut p = Pattern::new();
        let head = p.method_head("Tagger");
        let recv = p.node("Info");
        p.edge(head, receiver_label(), recv);
        body.push(Operation::NodeAdd(NodeAddition::new(
            p,
            format!("Temp{index}").as_str(),
            [(Label::new(format!("t{index}")), recv)],
        )));
    }
    Method::new(MethodSpec::new("Tagger", "Info", []), body, Scheme::new())
}

fn bench_body_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8/body-length");
    for body_len in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(body_len),
            &body_len,
            |b, &body_len| {
                b.iter_batched(
                    || instance_of(100),
                    |mut db| {
                        let mut env = Env::with_fuel(1_000_000);
                        env.register(temp_tagging_method(body_len));
                        let mut p = Pattern::new();
                        let info = p.node("Info");
                        let name = p.printable("String", "info-3");
                        p.edge(info, "name", name);
                        execute_call(&MethodCall::new("Tagger", p, info, []), &mut db, &mut env)
                            .expect("call")
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_receiver_fanout(c: &mut Criterion) {
    // One call, many receivers: the set-oriented frame construction.
    let mut group = c.benchmark_group("E8/receiver-fanout");
    for size in [50usize, 200, 800] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter_batched(
                || instance_of(size),
                |mut db| {
                    let mut env = Env::with_fuel(1_000_000);
                    env.register(temp_tagging_method(2));
                    let mut p = Pattern::new();
                    let info = p.node("Info");
                    execute_call(&MethodCall::new("Tagger", p, info, []), &mut db, &mut env)
                        .expect("call")
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_interface_filtering(c: &mut Criterion) {
    // The restriction sweep alone, isolated by calling a body-less
    // method on a large instance: cost ≈ restrict_to_scheme.
    let mut group = c.benchmark_group("E8/interface-filtering");
    for size in [100usize, 400, 1600] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter_batched(
                || instance_of(size),
                |mut db| {
                    let mut env = Env::with_fuel(1_000_000);
                    env.register(Method::new(
                        MethodSpec::new("Noop", "Info", []),
                        Vec::new(),
                        Scheme::new(),
                    ));
                    let mut p = Pattern::new();
                    let info = p.node("Info");
                    execute_call(&MethodCall::new("Noop", p, info, []), &mut db, &mut env)
                        .expect("call")
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_body_length, bench_receiver_fanout, bench_interface_filtering
}
criterion_main!(benches);
