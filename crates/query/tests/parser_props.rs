//! Parser robustness properties, in the house style of
//! `good_core::textual`:
//!
//! * `parse ∘ print` is the identity on generated ASTs — the canonical
//!   pretty-printer and the parser agree exactly, which is what lets
//!   the differential oracle drive generated queries through the full
//!   text pipeline;
//! * the parser never panics, on arbitrary printable strings, on
//!   syntax-shaped near-misses, or on truncations of valid queries;
//! * the length guard rejects oversized input before any parse work.

use good_query::gen::random_query;
use good_query::parser::{parse_query, MAX_QUERY_LEN};
use proptest::strategy::any;
use proptest::string::string_regex;
use proptest::test_runner::{Config, TestRunner};

#[test]
fn pretty_print_then_parse_is_identity() {
    let mut runner = TestRunner::new(Config::with_cases(512));
    runner
        .run(&any::<u64>(), |seed| {
            let query = random_query(seed);
            let text = query.to_string();
            let reparsed = parse_query(&text).unwrap_or_else(|err| {
                panic!(
                    "seed {seed}: generated query failed to parse\n{}",
                    err.render(&text)
                )
            });
            assert_eq!(
                reparsed.normalized(),
                query.normalized(),
                "seed {seed}: parse(print(q)) != q for\n{text}"
            );
            // And printing is a fixpoint: print(parse(print(q))) == print(q).
            assert_eq!(reparsed.to_string(), text, "seed {seed}");
            Ok(())
        })
        .unwrap();
}

#[test]
fn parser_never_panics_on_arbitrary_input() {
    let mut runner = TestRunner::new(Config::with_cases(512));
    runner
        .run(&string_regex("[ -~\n\t]{0,120}").unwrap(), |text| {
            let _ = parse_query(&text); // Ok or Err, never panic
            Ok(())
        })
        .unwrap();
    // Syntax-shaped near-misses: query keywords, brackets, arrows and
    // literals jumbled together (the vendored proptest regex subset has
    // no alternation, so the soup is assembled from a seeded RNG).
    const TOKENS: &[&str] = &[
        "MATCH",
        "WHERE",
        "RETURN",
        "AND",
        "NOT",
        "LIMIT",
        "DISTINCT",
        "BETWEEN",
        "IN",
        "(",
        ")",
        "[",
        "]",
        "-",
        "->",
        "-[:",
        "]->",
        ":",
        ",",
        "*",
        "..",
        "=",
        "<>",
        "<=",
        "a",
        "ab",
        "Info",
        "links-to",
        "0",
        "42",
        "\"x\"",
        "\"",
        "date(",
        "date(1990-01-05)",
        " ",
    ];
    let mut runner = TestRunner::new(Config::with_cases(1024));
    runner
        .run(&any::<u64>(), |seed| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut text = String::new();
            for _ in 0..rng.gen_range(0..40usize) {
                text.push_str(TOKENS[rng.gen_range(0..TOKENS.len())]);
            }
            let _ = parse_query(&text);
            Ok(())
        })
        .unwrap();
}

#[test]
fn parser_never_panics_on_truncated_valid_queries() {
    let mut runner = TestRunner::new(Config::with_cases(256));
    runner
        .run(&any::<u64>(), |seed| {
            let text = random_query(seed).to_string();
            // Cut at an arbitrary char boundary derived from the seed.
            let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
            let cut = boundaries[(seed % boundaries.len() as u64) as usize];
            let _ = parse_query(&text[..cut]);
            // And with a junk byte appended after the cut.
            let mut mangled = text[..cut].to_string();
            mangled.push('§');
            let _ = parse_query(&mangled);
            Ok(())
        })
        .unwrap();
}

#[test]
fn oversized_queries_are_rejected_up_front() {
    let text = format!("MATCH (a:Info) RETURN a{}", " ".repeat(MAX_QUERY_LEN));
    let err = parse_query(&text).expect_err("oversized");
    assert!(err.to_string().contains("too long"), "{err}");
}
