//! E18 — cost-based planner: binary materializing join vs the
//! worst-case-optimal generic join on cyclic patterns
//! (EXPERIMENTS.md §E18).
//!
//! Three lanes on a triangle query over the hub-and-spoke instance
//! (see `good_bench::hub_instance` — the shape where edge-at-a-time
//! joins materialize ~half a million open wedges that the closing
//! edge then discards):
//!
//! * **binary** — `find_matchings_binary`: materializing edge-at-a-
//!   time join, the textbook baseline the planner must beat.
//! * **wcoj** — `find_matchings_wcoj`: generic join, per-variable
//!   sorted-intersection of candidate sets.
//! * **auto** — `find_matchings`: the cost-based planner's own pick
//!   (it must route this pattern to the generic join).
//!
//! Plus planned medians for the acyclic regression canaries (chain-3
//! and the Figure-4 anchored pattern at 1 600 Infos) to catch planner
//! overhead creeping into point-ish queries.
//!
//! Prints criterion-style lines and emits machine-readable results to
//! `BENCH_planner.json` in the workspace root. Doubles as the CI
//! planner smoke: `--check <baseline.json>` re-measures the wcoj/auto/
//! acyclic medians, fails on >10% regression, and asserts the
//! binary-vs-wcoj speedup still clears 10x.

use good_bench::{anchored_pattern, chain_pattern, hub_instance, instance_of, triangle_pattern};
use good_core::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

const SPOKES: usize = 2_400;
const HUBS: usize = 6;
const SAMPLES: usize = 7;
const TARGET_SAMPLE_NANOS: u128 = 40_000_000; // ~40ms per sample
const CHECK_TOLERANCE: f64 = 1.10;
// Acyclic planned medians sit in the tens of µs; a 2µs floor absorbs
// timer granularity without hiding a real regression.
const CHECK_SLACK_NANOS: u128 = 2_000;
/// The acceptance bar: the generic join must beat the materializing
/// binary join by at least this factor on the hub triangle.
const REQUIRED_SPEEDUP: f64 = 10.0;

struct Measurement {
    name: &'static str,
    ns: u128,
    matchings: usize,
}

fn format_nanos(nanos: u128) -> String {
    let nanos = nanos as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// Median per-iteration time of `routine` over `SAMPLES` samples, each
/// sized to roughly `TARGET_SAMPLE_NANOS`.
fn measure(mut routine: impl FnMut()) -> u128 {
    let start = Instant::now();
    routine();
    let once = start.elapsed().as_nanos().max(1);
    let iterations = (TARGET_SAMPLE_NANOS / once).clamp(1, 10_000);
    let mut samples: Vec<u128> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iterations {
            routine();
        }
        samples.push(start.elapsed().as_nanos() / iterations);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn workspace_path(file: &str) -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/
    path.pop(); // workspace root
    path.push(file);
    path
}

fn json_num_field(line: &str, key: &str) -> Option<u128> {
    let start = line.find(key)? + key.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extract `(name, ns)` pairs from a previously emitted
/// `BENCH_planner.json` (flat hand-formatted JSON, one result per
/// line — no parser dependency needed).
fn parse_baseline(text: &str) -> Vec<(String, u128)> {
    text.lines()
        .filter_map(|line| {
            let start = line.find("\"name\": \"")? + "\"name\": \"".len();
            let end = start + line[start..].find('"')?;
            let ns = json_num_field(line, "\"ns\": ")?;
            Some((line[start..end].to_string(), ns))
        })
        .collect()
}

/// The three triangle lanes plus the cross-engine agreement check;
/// returns `(binary, wcoj, auto)` measurements.
fn measure_triangle() -> (Measurement, Measurement, Measurement) {
    let db = hub_instance(SPOKES, HUBS);
    let (pattern, _) = triangle_pattern();

    let choice = plan(&pattern, &db);
    assert!(
        matches!(choice.strategy, JoinStrategy::GenericJoin),
        "planner must route the hub triangle to the generic join, picked {}",
        choice.strategy.name()
    );

    let binary_rows = find_matchings_binary(&pattern, &db).expect("binary");
    let wcoj_rows = find_matchings_wcoj(&pattern, &db).expect("wcoj");
    let auto_rows = find_matchings(&pattern, &db).expect("auto");
    assert_eq!(binary_rows, wcoj_rows, "engines disagree on the triangle");
    assert_eq!(binary_rows, auto_rows, "engines disagree on the triangle");
    let matchings = binary_rows.len();

    let binary_ns = measure(|| {
        find_matchings_binary(&pattern, &db).expect("binary");
    });
    let wcoj_ns = measure(|| {
        find_matchings_wcoj(&pattern, &db).expect("wcoj");
    });
    let auto_ns = measure(|| {
        find_matchings(&pattern, &db).expect("auto");
    });
    (
        Measurement {
            name: "triangle-hub/binary",
            ns: binary_ns,
            matchings,
        },
        Measurement {
            name: "triangle-hub/wcoj",
            ns: wcoj_ns,
            matchings,
        },
        Measurement {
            name: "triangle-hub/auto",
            ns: auto_ns,
            matchings,
        },
    )
}

/// Planned medians for the acyclic canaries at 1 600 Infos.
fn measure_acyclic() -> Vec<Measurement> {
    let db = instance_of(1_600);
    let (chain, _) = chain_pattern(3);
    let (anchored, _, _) = anchored_pattern("info-3");
    let chain_matchings = find_matchings(&chain, &db).expect("chain").len();
    let anchored_matchings = find_matchings(&anchored, &db).expect("anchored").len();
    let chain_ns = measure(|| {
        find_matchings(&chain, &db).expect("chain");
    });
    let anchored_ns = measure(|| {
        find_matchings(&anchored, &db).expect("anchored");
    });
    vec![
        Measurement {
            name: "chain-3@1600/auto",
            ns: chain_ns,
            matchings: chain_matchings,
        },
        Measurement {
            name: "anchored@1600/auto",
            ns: anchored_ns,
            matchings: anchored_matchings,
        },
    ]
}

/// CI smoke: re-measure, fail on >10% regression of the wcoj/auto/
/// acyclic medians against the recorded baseline, and assert the
/// binary-vs-wcoj speedup still clears `REQUIRED_SPEEDUP`.
fn run_check(baseline_arg: &str) -> ! {
    let path = if std::path::Path::new(baseline_arg).is_absolute() {
        PathBuf::from(baseline_arg)
    } else {
        workspace_path(baseline_arg)
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read baseline {}: {err}", path.display());
            std::process::exit(1);
        }
    };
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        eprintln!("no results found in baseline {}", path.display());
        std::process::exit(1);
    }
    println!("E18 planner smoke — medians vs {}", path.display());

    let (binary, wcoj, auto) = measure_triangle();
    let mut current = vec![wcoj, auto];
    current.extend(measure_acyclic());

    let speedup = binary.ns as f64 / current[0].ns as f64;
    println!(
        "triangle-hub binary {} / wcoj {} = {speedup:.1}x",
        format_nanos(binary.ns),
        format_nanos(current[0].ns),
    );
    let mut failed = speedup < REQUIRED_SPEEDUP;
    if failed {
        eprintln!("generic join no longer beats the binary join {REQUIRED_SPEEDUP}x");
    }

    for m in &current {
        match baseline.iter().find(|(name, _)| name == m.name) {
            Some((_, base_ns)) => {
                let ratio = m.ns as f64 / *base_ns as f64;
                let allowed = (*base_ns as f64 * CHECK_TOLERANCE) as u128 + CHECK_SLACK_NANOS;
                let verdict = if m.ns > allowed {
                    failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "{:<22} {:>12}  baseline {:>12}  ratio {ratio:.3}  {verdict}",
                    m.name,
                    format_nanos(m.ns),
                    format_nanos(*base_ns),
                );
            }
            None => {
                failed = true;
                println!("{:<22} missing from baseline", m.name);
            }
        }
    }
    if failed {
        eprintln!("planner medians regressed more than 10% vs baseline");
        std::process::exit(1);
    }
    println!("planner medians within 10% of baseline");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(position) = args.iter().position(|a| a == "--check") {
        let Some(baseline) = args.get(position + 1) else {
            eprintln!("error: --check requires a baseline path");
            std::process::exit(1);
        };
        run_check(baseline);
    }

    println!("E18 cost-based planner — binary join vs generic join");
    let (binary, wcoj, auto) = measure_triangle();
    let speedup = binary.ns as f64 / wcoj.ns as f64;
    println!(
        "E18-planner/triangle-hub  binary: [median {:>12}]  wcoj: [median {:>12}]  auto: [median {:>12}]  speedup {speedup:.0}x  ({} matchings)",
        format_nanos(binary.ns),
        format_nanos(wcoj.ns),
        format_nanos(auto.ns),
        binary.matchings,
    );
    let mut measurements = vec![binary, wcoj, auto];
    for m in measure_acyclic() {
        println!(
            "E18-planner/{:<18} planned: [median {:>12}]  ({} matchings)",
            m.name,
            format_nanos(m.ns),
            m.matchings,
        );
        measurements.push(m);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"E18-planner\",");
    let _ = writeln!(json, "  \"speedup\": {speedup:.1},");
    json.push_str("  \"results\": [\n");
    for (index, m) in measurements.iter().enumerate() {
        let comma = if index + 1 == measurements.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ns\": {}, \"matchings\": {}}}{comma}",
            m.name, m.ns, m.matchings
        );
    }
    json.push_str("  ]\n}\n");

    let path = workspace_path("BENCH_planner.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
