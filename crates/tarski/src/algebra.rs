//! The Tarski (binary) relation algebra as an expression language.
//!
//! Expressions are evaluated against a catalog of named base relations.
//! This is the query language of the Indiana implementation route (paper reference 27);
//! GOOD path expressions compile into it (see [`crate::backend`]).

use crate::binrel::BinRel;
use good_core::error::{GoodError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// A Tarski algebra expression.
#[derive(Debug, Clone, PartialEq)]
pub enum TarskiExpr {
    /// A named base relation.
    Base(String),
    /// `R ∪ S`.
    Union(Box<TarskiExpr>, Box<TarskiExpr>),
    /// `R ∩ S`.
    Intersect(Box<TarskiExpr>, Box<TarskiExpr>),
    /// `R − S`.
    Difference(Box<TarskiExpr>, Box<TarskiExpr>),
    /// Relative product `R ; S`.
    Compose(Box<TarskiExpr>, Box<TarskiExpr>),
    /// Converse `R⁻¹`.
    Converse(Box<TarskiExpr>),
    /// Transitive closure `R⁺`.
    Closure(Box<TarskiExpr>),
    /// Domain coreflexive `dom(R)`.
    Domain(Box<TarskiExpr>),
    /// Range coreflexive `ran(R)`.
    Range(Box<TarskiExpr>),
}

impl TarskiExpr {
    /// A named base relation.
    pub fn base(name: impl Into<String>) -> Self {
        TarskiExpr::Base(name.into())
    }
    /// `self ; other`.
    pub fn then(self, other: TarskiExpr) -> Self {
        TarskiExpr::Compose(Box::new(self), Box::new(other))
    }
    /// `self ∪ other`.
    pub fn or(self, other: TarskiExpr) -> Self {
        TarskiExpr::Union(Box::new(self), Box::new(other))
    }
    /// `self ∩ other`.
    pub fn and(self, other: TarskiExpr) -> Self {
        TarskiExpr::Intersect(Box::new(self), Box::new(other))
    }
    /// `self − other`.
    pub fn minus(self, other: TarskiExpr) -> Self {
        TarskiExpr::Difference(Box::new(self), Box::new(other))
    }
    /// `self⁻¹`.
    pub fn inv(self) -> Self {
        TarskiExpr::Converse(Box::new(self))
    }
    /// `self⁺`.
    pub fn plus(self) -> Self {
        TarskiExpr::Closure(Box::new(self))
    }

    /// Evaluate against a catalog of named relations. Unknown base
    /// relations are an error; use [`TarskiExpr::eval_lenient`] where
    /// absence should denote the empty relation.
    pub fn eval<A: Ord + Clone>(&self, catalog: &BTreeMap<String, BinRel<A>>) -> Result<BinRel<A>> {
        self.eval_impl(catalog, false)
    }

    /// Evaluate, reading unknown base relations as empty — the right
    /// semantics for pattern constraints over incomplete information
    /// (a print value nobody holds simply matches nothing).
    pub fn eval_lenient<A: Ord + Clone>(
        &self,
        catalog: &BTreeMap<String, BinRel<A>>,
    ) -> Result<BinRel<A>> {
        self.eval_impl(catalog, true)
    }

    fn eval_impl<A: Ord + Clone>(
        &self,
        catalog: &BTreeMap<String, BinRel<A>>,
        lenient: bool,
    ) -> Result<BinRel<A>> {
        match self {
            TarskiExpr::Base(name) => match catalog.get(name) {
                Some(relation) => Ok(relation.clone()),
                None if lenient => Ok(BinRel::new()),
                None => Err(GoodError::InvariantViolation(format!(
                    "unknown relation {name}"
                ))),
            },
            TarskiExpr::Union(l, r) => Ok(l
                .eval_impl(catalog, lenient)?
                .union(&r.eval_impl(catalog, lenient)?)),
            TarskiExpr::Intersect(l, r) => Ok(l
                .eval_impl(catalog, lenient)?
                .intersect(&r.eval_impl(catalog, lenient)?)),
            TarskiExpr::Difference(l, r) => Ok(l
                .eval_impl(catalog, lenient)?
                .difference(&r.eval_impl(catalog, lenient)?)),
            TarskiExpr::Compose(l, r) => Ok(l
                .eval_impl(catalog, lenient)?
                .compose(&r.eval_impl(catalog, lenient)?)),
            TarskiExpr::Converse(e) => Ok(e.eval_impl(catalog, lenient)?.converse()),
            TarskiExpr::Closure(e) => Ok(e.eval_impl(catalog, lenient)?.transitive_closure()),
            TarskiExpr::Domain(e) => Ok(e.eval_impl(catalog, lenient)?.domain()),
            TarskiExpr::Range(e) => Ok(e.eval_impl(catalog, lenient)?.range()),
        }
    }
}

impl fmt::Display for TarskiExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TarskiExpr::Base(name) => write!(f, "{name}"),
            TarskiExpr::Union(l, r) => write!(f, "({l} ∪ {r})"),
            TarskiExpr::Intersect(l, r) => write!(f, "({l} ∩ {r})"),
            TarskiExpr::Difference(l, r) => write!(f, "({l} − {r})"),
            TarskiExpr::Compose(l, r) => write!(f, "({l} ; {r})"),
            TarskiExpr::Converse(e) => write!(f, "{e}⁻¹"),
            TarskiExpr::Closure(e) => write!(f, "{e}⁺"),
            TarskiExpr::Domain(e) => write!(f, "dom({e})"),
            TarskiExpr::Range(e) => write!(f, "ran({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn catalog() -> BTreeMap<String, BinRel<u32>> {
        let mut out = BTreeMap::new();
        out.insert(
            "parent".to_string(),
            BinRel::from_pairs([(1u32, 2), (2, 3), (2, 4)]),
        );
        out.insert("likes".to_string(), BinRel::from_pairs([(3u32, 4), (4, 3)]));
        out
    }

    #[test]
    fn grandparent_is_composition() {
        let grand = TarskiExpr::base("parent").then(TarskiExpr::base("parent"));
        let result = grand.eval(&catalog()).unwrap();
        assert_eq!(result, BinRel::from_pairs([(1u32, 3), (1, 4)]));
    }

    #[test]
    fn ancestor_is_closure() {
        let ancestor = TarskiExpr::base("parent").plus();
        let result = ancestor.eval(&catalog()).unwrap();
        assert!(result.contains(&1, &4));
        assert_eq!(result.len(), 5);
    }

    #[test]
    fn child_is_converse() {
        let child = TarskiExpr::base("parent").inv();
        assert!(child.eval(&catalog()).unwrap().contains(&3, &2));
    }

    #[test]
    fn boolean_combinators() {
        let both = TarskiExpr::base("likes").and(TarskiExpr::base("likes").inv());
        assert_eq!(both.eval(&catalog()).unwrap().len(), 2); // mutual likes
        let either = TarskiExpr::base("parent").or(TarskiExpr::base("likes"));
        assert_eq!(either.eval(&catalog()).unwrap().len(), 5);
        let minus = TarskiExpr::base("parent").minus(TarskiExpr::base("likes"));
        assert_eq!(minus.eval(&catalog()).unwrap().len(), 3);
    }

    #[test]
    fn domain_and_range_coreflexives() {
        let dom = TarskiExpr::Domain(Box::new(TarskiExpr::base("parent")));
        assert_eq!(dom.eval(&catalog()).unwrap(), BinRel::identity([1u32, 2]));
        let ran = TarskiExpr::Range(Box::new(TarskiExpr::base("parent")));
        assert_eq!(
            ran.eval(&catalog()).unwrap(),
            BinRel::identity([2u32, 3, 4])
        );
    }

    #[test]
    fn display_renders_algebra_notation() {
        let expr = TarskiExpr::base("parent")
            .then(TarskiExpr::base("parent").inv())
            .plus();
        assert_eq!(expr.to_string(), "(parent ; parent⁻¹)⁺");
    }

    #[test]
    fn unknown_base_is_an_error() {
        assert!(TarskiExpr::base("nope").eval(&catalog()).is_err());
    }

    // ---- property tests: Tarski's axioms on random finite relations ----

    fn arb_rel() -> impl Strategy<Value = BinRel<u8>> {
        proptest::collection::btree_set((0u8..12, 0u8..12), 0..40).prop_map(BinRel::from_pairs)
    }

    proptest! {
        #[test]
        fn composition_associative(r in arb_rel(), s in arb_rel(), t in arb_rel()) {
            prop_assert_eq!(r.compose(&s).compose(&t), r.compose(&s.compose(&t)));
        }

        #[test]
        fn converse_involution(r in arb_rel()) {
            prop_assert_eq!(r.converse().converse(), r);
        }

        #[test]
        fn converse_antidistribution(r in arb_rel(), s in arb_rel()) {
            prop_assert_eq!(
                r.compose(&s).converse(),
                s.converse().compose(&r.converse())
            );
        }

        #[test]
        fn composition_distributes_over_union(r in arb_rel(), s in arb_rel(), t in arb_rel()) {
            prop_assert_eq!(
                r.compose(&s.union(&t)),
                r.compose(&s).union(&r.compose(&t))
            );
        }

        #[test]
        fn closure_is_idempotent_and_transitive(r in arb_rel()) {
            let tc = r.transitive_closure();
            prop_assert_eq!(tc.transitive_closure(), tc.clone());
            // transitivity: tc;tc ⊆ tc
            let composed = tc.compose(&tc);
            prop_assert_eq!(composed.difference(&tc).len(), 0);
        }

        #[test]
        fn identity_neutral(r in arb_rel()) {
            let id = BinRel::identity(0u8..12);
            prop_assert_eq!(id.compose(&r), r.clone());
            prop_assert_eq!(r.compose(&id), r);
        }
    }
}
