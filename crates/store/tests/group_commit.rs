//! Named edge-case crash tests for group commit: the empty batch, the
//! single-program batch, and a batch ending in a method call. Each
//! sweeps every crash point inside its group's I/O window and asserts
//! recovery lands on a batch boundary — the pre-batch or post-batch
//! state, never anything in between.

use good_core::gen::bench_scheme;
use good_core::instance::Instance;
use good_core::label::Label;
use good_core::method::{Method, MethodCall, MethodSpec};
use good_core::ops::NodeAddition;
use good_core::pattern::Pattern;
use good_core::program::{Operation, Program};
use good_core::scheme::Scheme;
use good_store::vfs::{FaultPlan, FaultVfs, Vfs};
use good_store::Store;
use std::sync::Arc;

const JOURNAL: &str = "/group/db.journal";

fn seed_program() -> Program {
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        Pattern::new(),
        "Info",
        [],
    ))])
}

fn tag_program(tag: &str) -> Program {
    let mut pattern = Pattern::new();
    let info = pattern.node("Info");
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        pattern,
        tag,
        [(Label::new("of"), info)],
    ))])
}

/// The `Mark` method: one `Mark` node attached to the receiver `Info`.
fn mark_method() -> Method {
    let mut pattern = Pattern::new();
    let head = pattern.method_head("Mark");
    let receiver = pattern.node("Info");
    pattern.edge(head, good_core::label::receiver_label(), receiver);
    let na = NodeAddition::new(pattern, "Mark", [(Label::new("on"), receiver)]);
    let mut interface = Scheme::new();
    interface.add_object_label("Mark").unwrap();
    interface.add_functional_label("on").unwrap();
    interface.add_object_label("Info").unwrap();
    interface.add_triple("Mark", "on", "Info").unwrap();
    Method::new(
        MethodSpec::new("Mark", "Info", []),
        vec![Operation::NodeAdd(na)],
        interface,
    )
}

fn mark_call_program() -> Program {
    let mut pattern = Pattern::new();
    let receiver = pattern.node("Info");
    let call = MethodCall::new("Mark", pattern, receiver, []);
    Program::from_ops([Operation::Call(call)])
}

/// Build a store with `setup` applied, on a fresh reliable FaultVfs.
fn fresh_store(seed: u64, setup: impl Fn(&mut Store)) -> (Arc<FaultVfs>, Store) {
    let vfs = Arc::new(FaultVfs::new(FaultPlan::reliable(seed)));
    let mut store =
        Store::create_with_vfs(Arc::clone(&vfs) as Arc<dyn Vfs>, JOURNAL, bench_scheme())
            .expect("create store");
    setup(&mut store);
    (vfs, store)
}

/// Sweep every crash point in the I/O window of `batch`'s group commit
/// (discovered on a golden run) and assert the rebooted, reopened
/// store is isomorphic to `pre` or `post` — a batch boundary — never a
/// partial batch. `inspect` gets each recovered instance for extra
/// per-test assertions. Returns how many schedules landed pre / post.
fn sweep_batch_window(
    seed: u64,
    setup: impl Fn(&mut Store),
    batch: &[Program],
    inspect: impl Fn(&Instance),
) -> (usize, usize) {
    // Golden run: window of ops the group occupies, plus oracle states.
    let (vfs, mut store) = fresh_store(seed, &setup);
    let pre = store.instance().clone();
    let window_start = vfs.op_count();
    store.execute_group(batch).expect("golden group commit");
    let window_end = vfs.op_count();
    let post = store.instance().clone();
    drop(store);

    let (mut landed_pre, mut landed_post) = (0usize, 0usize);
    for crash_at in window_start..window_end {
        let vfs = Arc::new(FaultVfs::new(FaultPlan::crash_at(seed, crash_at)));
        let mut store =
            Store::create_with_vfs(Arc::clone(&vfs) as Arc<dyn Vfs>, JOURNAL, bench_scheme())
                .expect("creation precedes the crash window");
        setup(&mut store);
        store
            .execute_group(batch)
            .expect_err("the armed crash point must fail the group");
        assert!(vfs.crashed(), "crash point {crash_at} never fired");
        drop(store);
        let disk: Arc<dyn Vfs> = Arc::new(vfs.reboot());
        let recovered = Store::open_with_vfs(disk, JOURNAL)
            .unwrap_or_else(|err| panic!("recovery at crash point {crash_at} failed: {err}"));
        let state = recovered.instance();
        if state.isomorphic_to(&pre) {
            landed_pre += 1;
        } else if state.isomorphic_to(&post) {
            landed_post += 1;
        } else {
            panic!(
                "crash point {crash_at} recovered mid-batch: {} nodes \
                 (pre {}, post {})",
                state.node_count(),
                pre.node_count(),
                post.node_count()
            );
        }
        inspect(state);
    }
    (landed_pre, landed_post)
}

#[test]
fn empty_batch_performs_no_io_and_cannot_be_torn() {
    let (vfs, mut store) = fresh_store(17, |store| {
        store.execute(&seed_program()).expect("seed");
    });
    let before_ops = vfs.op_count();
    let pre = store.instance().clone();
    // Arm a crash on the next I/O operation: an empty batch must never
    // reach it.
    vfs.set_crash_at(Some(before_ops));
    let outcomes = store.execute_group(&[]).expect("empty batch is a no-op");
    assert!(outcomes.is_empty());
    assert_eq!(vfs.op_count(), before_ops, "empty batch performed I/O");
    assert!(!vfs.crashed());
    drop(store);
    // The journal is unchanged: a reboot + reopen sees the same state.
    let disk: Arc<dyn Vfs> = Arc::new(vfs.reboot());
    let recovered = Store::open_with_vfs(disk, JOURNAL).expect("reopen");
    assert!(recovered.instance().isomorphic_to(&pre));
}

#[test]
fn single_program_batch_recovers_all_or_nothing() {
    let setup = |store: &mut Store| {
        store.execute(&seed_program()).expect("seed");
    };
    let batch = vec![tag_program("Solo")];
    let (landed_pre, landed_post) = sweep_batch_window(18, setup, &batch, |state| {
        // Partial application is impossible for a one-program group,
        // but a half-written record must also never surface as a
        // half-applied program.
        let tags = state.label_count(&Label::new("Solo"));
        assert!(tags <= 1, "duplicate Solo nodes after recovery");
    });
    assert!(landed_pre > 0, "no crash point discarded the record");
    // The append itself is one op and its fsync another; at least the
    // post-fsync crash... there is none inside the window, so a fully
    // durable outcome may legitimately never appear. Assert coverage
    // of the window instead.
    assert!(landed_pre + landed_post >= 2, "window too small to sweep");
}

#[test]
fn batch_ending_in_a_method_call_recovers_to_a_boundary() {
    let setup = |store: &mut Store| {
        store.execute(&seed_program()).expect("seed");
        store.register_method(mark_method()).expect("register");
    };
    let batch = vec![tag_program("First"), mark_call_program()];
    let (landed_pre, landed_post) = sweep_batch_window(19, setup, &batch, |state| {
        // Boundary atomicity ties the two programs together: the tag
        // and the method's Mark node appear together or not at all.
        let tags = state.label_count(&Label::new("First"));
        let marks = state.label_count(&Label::new("Mark"));
        assert_eq!(
            tags, marks,
            "method-call effects split from its batch neighbour"
        );
    });
    assert!(
        landed_pre > 0,
        "no crash point tore the group before its commit marker"
    );
    assert!(
        landed_pre >= 2,
        "sweep never crashed between the group's records"
    );
    let _ = landed_post;
}
