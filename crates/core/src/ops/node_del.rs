//! Node deletion (`ND`, Section 3.3).
//!
//! `ND[J, S, I, m]` removes, for every matching `i` of the source
//! pattern, the node `i(m)` together with all its incident edges — "the
//! maximal instance over S such that ... for each matching i of J in I,
//! i(m) is not a node of I′". The scheme is unchanged.

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::matching::find_matchings;
use crate::ops::OpReport;
use crate::pattern::Pattern;
use good_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A node deletion operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeDeletion {
    /// The source pattern `J`.
    pub pattern: Pattern,
    /// The (doubly outlined) pattern node whose images are removed.
    pub target: NodeId,
}

impl NodeDeletion {
    /// Construct a node deletion.
    pub fn new(pattern: Pattern, target: NodeId) -> Self {
        NodeDeletion { pattern, target }
    }

    /// Apply to `db`.
    pub fn apply(&self, db: &mut Instance) -> Result<OpReport> {
        let positive = self
            .pattern
            .graph()
            .node(self.target)
            .map(|data| !data.negated)
            .unwrap_or(false);
        if !positive || self.pattern.node_label(self.target).is_none() {
            return Err(GoodError::NodeNotInPattern(format!("{:?}", self.target)));
        }
        let matchings = find_matchings(&self.pattern, db)?;
        // Batched application: the full doomed set is computed from the
        // matchings (deduplicated — overlapping matchings may share
        // images), then removed in one pass.
        let doomed: BTreeSet<NodeId> = matchings.iter().map(|m| m.image(self.target)).collect();
        let mut report = OpReport {
            matchings: matchings.len(),
            ..OpReport::default()
        };
        report.nodes_deleted = db.delete_nodes(doomed);
        db.debug_assert_indexes();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{Scheme, SchemeBuilder};
    use crate::value::ValueType;

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .functional("Info", "name", "String")
            .multivalued("Info", "links-to", "Info")
            .build()
    }

    fn named(db: &mut Instance, name: &str) -> NodeId {
        let info = db.add_object("Info").unwrap();
        let s = db.add_printable("String", name).unwrap();
        db.add_edge(info, "name", s).unwrap();
        info
    }

    /// Figure 14: delete the Classical Music info node.
    #[test]
    fn figure14_deletes_node_and_incident_edges() {
        let mut db = Instance::new(scheme());
        let music = named(&mut db, "Music History");
        let classical = named(&mut db, "Classical Music");
        let mozart = named(&mut db, "Mozart");
        db.add_edge(music, "links-to", classical).unwrap();
        db.add_edge(classical, "links-to", mozart).unwrap();

        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.printable("String", "Classical Music");
        p.edge(info, "name", name);
        let report = NodeDeletion::new(p, info).apply(&mut db).unwrap();

        assert_eq!(report.matchings, 1);
        assert_eq!(report.nodes_deleted, 1);
        assert!(!db.contains_node(classical));
        // Mozart is now isolated but still present (Figure 15).
        assert!(db.contains_node(mozart));
        assert_eq!(db.targets(music, &"links-to".into()).count(), 0);
        assert_eq!(db.sources(mozart, &"links-to".into()).count(), 0);
        // Its name printable also remains.
        assert!(db
            .find_printable(
                &"String".into(),
                &crate::value::Value::str("Classical Music")
            )
            .is_some());
        db.validate().unwrap();
    }

    #[test]
    fn one_deletion_removes_all_matched_images() {
        let mut db = Instance::new(scheme());
        for name in ["a", "b", "c"] {
            named(&mut db, name);
        }
        let mut p = Pattern::new();
        let info = p.node("Info");
        let report = NodeDeletion::new(p, info).apply(&mut db).unwrap();
        assert_eq!(report.nodes_deleted, 3);
        assert_eq!(db.label_count(&"Info".into()), 0);
        db.validate().unwrap();
    }

    #[test]
    fn overlapping_matchings_delete_each_node_once() {
        // Pattern Info -links-to-> Info deleting the source: with a
        // chain a->b->c, sources are a and b; both deleted exactly once.
        let mut db = Instance::new(scheme());
        let a = named(&mut db, "a");
        let b = named(&mut db, "b");
        let c = named(&mut db, "c");
        db.add_edge(a, "links-to", b).unwrap();
        db.add_edge(b, "links-to", c).unwrap();
        let mut p = Pattern::new();
        let src = p.node("Info");
        let dst = p.node("Info");
        p.edge(src, "links-to", dst);
        let report = NodeDeletion::new(p, src).apply(&mut db).unwrap();
        assert_eq!(report.matchings, 2);
        assert_eq!(report.nodes_deleted, 2);
        assert!(db.contains_node(c));
        assert!(!db.contains_node(a) && !db.contains_node(b));
    }

    #[test]
    fn deleting_with_no_matchings_is_a_noop() {
        let mut db = Instance::new(scheme());
        named(&mut db, "a");
        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.printable("String", "nope");
        p.edge(info, "name", name);
        let report = NodeDeletion::new(p, info).apply(&mut db).unwrap();
        assert_eq!(report.matchings, 0);
        assert_eq!(report.nodes_deleted, 0);
        assert_eq!(db.label_count(&"Info".into()), 1);
    }

    #[test]
    fn target_must_be_in_pattern() {
        let mut db = Instance::new(scheme());
        let mut foreign = Pattern::new();
        let f = foreign.node("Info");
        let nd = NodeDeletion::new(Pattern::new(), f);
        assert!(matches!(
            nd.apply(&mut db),
            Err(GoodError::NodeNotInPattern(_))
        ));
    }

    #[test]
    fn negation_tag_style_deletion() {
        // The Section 3.3 "No Sound" idiom: tag everything, then delete
        // tags of matched nodes. Here: delete infos that DO link
        // somewhere, keeping only sinks.
        let mut db = Instance::new(scheme());
        let a = named(&mut db, "a");
        let b = named(&mut db, "b");
        db.add_edge(a, "links-to", b).unwrap();
        let mut p = Pattern::new();
        let src = p.node("Info");
        let dst = p.node("Info");
        p.edge(src, "links-to", dst);
        NodeDeletion::new(p, src).apply(&mut db).unwrap();
        assert!(!db.contains_node(a));
        assert!(db.contains_node(b));
    }
}
