//! E17 — the TCP wire-protocol front end: submit round-trip latency
//! percentiles (p50/p99/p999) as a function of concurrent loopback
//! client count, and pipelined wire throughput against the in-process
//! session API at a matched batch ceiling (EXPERIMENTS.md §3).
//!
//! Hand-rolled like E15/E16: raw percentiles, criterion-style lines,
//! machine-readable results in `BENCH_net.json` at the workspace root.
//! `--check BENCH_net.json` re-measures and fails CI on regression:
//! p50 latency per client count against the recorded baseline, and the
//! wire/in-process throughput ratio against a fixed floor — both
//! measured fresh so the gate compares like with like on any machine.

use good_core::gen::bench_scheme;
use good_core::ops::NodeAddition;
use good_core::pattern::Pattern;
use good_core::program::{Operation, Program};
use good_server::client::Client;
use good_server::net::{NetConfig, NetServer};
use good_server::{Server, ServerConfig};
use good_store::vfs::{FaultPlan, FaultVfs, Vfs};
use good_store::Store;
use std::fmt::Write as _;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Concurrent-client sweep: each count submits TOTAL_OPS round trips.
const CLIENT_COUNTS: [usize; 4] = [8, 32, 128, 256];
const TOTAL_OPS: usize = 4096;

/// Pipelined throughput: matched with E15's workload size and largest
/// batch ceiling so the wire/in-process ratio is apples to apples.
const PIPELINED_PROGRAMS: usize = 384;
const PIPELINED_MAX_BATCH: usize = 64;
/// Best-of-N: on the 1-core container scheduler noise only ever adds
/// time, so the minimum is the least-noise estimate of peak capacity.
const PIPELINED_RUNS: usize = 7;

/// `--check` gate: p50 latency may drift up to 50% (+ absolute slack
/// for scheduler spikes on shared runners) over the recorded baseline;
/// the wire must keep at least this fraction of fresh in-process
/// pipelined throughput.
const CHECK_TOLERANCE: f64 = 1.5;
const CHECK_SLACK_NANOS: u128 = 500_000;
const CHECK_MIN_TCP_RATIO: f64 = 0.75;

fn format_nanos(nanos: u128) -> String {
    let nanos = nanos as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

fn labeled_program(label: &str) -> Program {
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        Pattern::new(),
        label,
        [],
    ))])
}

fn fresh_net(max_batch: usize, session_inflight: usize) -> NetServer {
    let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(FaultPlan::reliable(42)));
    let store =
        Store::create_with_vfs(vfs, "/bench/db.journal", bench_scheme()).expect("create store");
    let server = Server::start(
        store,
        ServerConfig {
            queue_capacity: TOTAL_OPS.max(PIPELINED_PROGRAMS) + 1,
            max_batch,
            ..ServerConfig::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    NetServer::start(
        server,
        listener,
        NetConfig {
            max_connections: CLIENT_COUNTS[CLIENT_COUNTS.len() - 1] + 8,
            session_inflight,
            ..NetConfig::default()
        },
    )
    .expect("start net server")
}

struct LatencyStats {
    clients: usize,
    ops: usize,
    p50_ns: u128,
    p99_ns: u128,
    p999_ns: u128,
    programs_per_sec: u64,
}

/// N concurrent clients each running TOTAL_OPS/N submit round trips;
/// per-op latencies are pooled for the percentiles, wall-clock over
/// the whole scope gives aggregate throughput.
fn latency_run(clients: usize) -> LatencyStats {
    let net = fresh_net(16, 64);
    let addr = net.local_addr();
    let per_client = (TOTAL_OPS / clients).max(1);
    let start = Instant::now();
    let mut samples: Vec<u128> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                std::thread::Builder::new()
                    .name(format!("bench-client-{c}"))
                    .stack_size(256 * 1024)
                    .spawn_scoped(scope, move || {
                        let mut client = Client::connect(addr).expect("connect");
                        let mut times = Vec::with_capacity(per_client);
                        for i in 0..per_client {
                            let program = labeled_program(&format!("L{c}x{i}"));
                            let begin = Instant::now();
                            client
                                .submit_wait_retrying(&program, 64)
                                .expect("submit round trip");
                            times.push(begin.elapsed().as_nanos());
                        }
                        client.goodbye().expect("goodbye");
                        times
                    })
                    .expect("spawn bench client")
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed = start.elapsed().as_nanos();
    net.shutdown().expect("shutdown");
    samples.sort_unstable();
    let ops = samples.len();
    LatencyStats {
        clients,
        ops,
        p50_ns: samples[ops / 2],
        p99_ns: samples[(ops * 99 / 100).min(ops - 1)],
        p999_ns: samples[(ops * 999 / 1000).min(ops - 1)],
        programs_per_sec: (ops as u128 * 1_000_000_000 / elapsed.max(1)) as u64,
    }
}

struct Pipelined {
    transport: &'static str,
    best_total_ns: u128,
    programs_per_sec: u64,
}

/// One client, every submit fired before the first ack is read — the
/// wire analogue of E15's pipelined throughput measurement.
fn pipelined_tcp() -> Pipelined {
    let mut samples = Vec::with_capacity(PIPELINED_RUNS);
    for run in 0..PIPELINED_RUNS {
        let net = fresh_net(PIPELINED_MAX_BATCH, PIPELINED_PROGRAMS + 1);
        let mut client = Client::connect(net.local_addr()).expect("connect");
        let programs: Vec<Program> = (0..PIPELINED_PROGRAMS)
            .map(|i| labeled_program(&format!("P{run}x{i}")))
            .collect();
        let start = Instant::now();
        let requests: Vec<u64> = programs
            .iter()
            .map(|p| client.submit(p).expect("submit"))
            .collect();
        for request in requests {
            client.wait_ack(request).expect("ack");
        }
        samples.push(start.elapsed().as_nanos());
        client.goodbye().expect("goodbye");
        net.shutdown().expect("shutdown");
    }
    let best_total_ns = samples.into_iter().min().expect("at least one run");
    Pipelined {
        transport: "tcp",
        best_total_ns,
        programs_per_sec: (PIPELINED_PROGRAMS as u128 * 1_000_000_000 / best_total_ns.max(1))
            as u64,
    }
}

/// The in-process reference at the same batch ceiling and workload.
fn pipelined_in_process() -> Pipelined {
    let mut samples = Vec::with_capacity(PIPELINED_RUNS);
    for run in 0..PIPELINED_RUNS {
        let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(FaultPlan::reliable(42)));
        let store =
            Store::create_with_vfs(vfs, "/bench/db.journal", bench_scheme()).expect("create store");
        let server = Server::start(
            store,
            ServerConfig {
                queue_capacity: PIPELINED_PROGRAMS + 1,
                max_batch: PIPELINED_MAX_BATCH,
                ..ServerConfig::default()
            },
        );
        let session = server.open_session();
        let programs: Vec<Program> = (0..PIPELINED_PROGRAMS)
            .map(|i| labeled_program(&format!("P{run}x{i}")))
            .collect();
        let start = Instant::now();
        let tickets: Vec<_> = programs
            .into_iter()
            .map(|program| server.submit(session, program).expect("submit"))
            .collect();
        for ticket in tickets {
            server.wait(ticket).expect("ack");
        }
        samples.push(start.elapsed().as_nanos());
        drop(server);
    }
    let best_total_ns = samples.into_iter().min().expect("at least one run");
    Pipelined {
        transport: "in-process",
        best_total_ns,
        programs_per_sec: (PIPELINED_PROGRAMS as u128 * 1_000_000_000 / best_total_ns.max(1))
            as u64,
    }
}

fn workspace_path(file: &str) -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/
    path.pop(); // workspace root
    path.push(file);
    path
}

fn json_num_field(line: &str, key: &str) -> Option<u128> {
    let start = line.find(key)? + key.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extract `(clients, p50_ns)` pairs from a previously emitted
/// `BENCH_net.json` (flat hand-formatted JSON, one result per line).
fn parse_baseline(text: &str) -> Vec<(usize, u128)> {
    text.lines()
        .filter_map(|line| {
            let clients = json_num_field(line, "\"clients\": ")? as usize;
            let p50_ns = json_num_field(line, "\"p50_ns\": ")?;
            Some((clients, p50_ns))
        })
        .collect()
}

/// CI smoke: re-measure the wire round-trip p50s and the wire vs
/// in-process throughput ratio; fail on regression.
fn run_check(baseline_arg: &str) -> ! {
    let path = if std::path::Path::new(baseline_arg).is_absolute() {
        PathBuf::from(baseline_arg)
    } else {
        workspace_path(baseline_arg)
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read baseline {}: {err}", path.display());
            std::process::exit(1);
        }
    };
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        eprintln!("no results found in baseline {}", path.display());
        std::process::exit(1);
    }
    println!("E17 net smoke — wire p50 latency vs {}", path.display());
    let mut failed = false;
    // Only the two smallest client counts: enough signal for a gate,
    // cheap enough for every push.
    for &clients in &CLIENT_COUNTS[..2] {
        // Best of two: damp scheduler spikes on shared runners.
        let fresh = latency_run(clients).p50_ns.min(latency_run(clients).p50_ns);
        match baseline.iter().find(|(c, _)| *c == clients) {
            Some((_, base_ns)) => {
                let ratio = fresh as f64 / *base_ns as f64;
                let allowed = (*base_ns as f64 * CHECK_TOLERANCE) as u128 + CHECK_SLACK_NANOS;
                let verdict = if fresh > allowed {
                    failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "net@{clients:<4} clients p50 {:>12}  baseline {:>12}  ratio {ratio:.3}  {verdict}",
                    format_nanos(fresh),
                    format_nanos(*base_ns),
                );
            }
            None => {
                failed = true;
                println!("net@{clients:<4} clients missing from baseline");
            }
        }
    }
    // Throughput ratio, both sides measured fresh on this machine;
    // best of two interleaved attempts damps load spikes further.
    let (mut tcp_rate, mut ref_rate, mut ratio) = (0, 0, 0.0);
    for _ in 0..2 {
        let tcp = pipelined_tcp();
        let reference = pipelined_in_process();
        let attempt = tcp.programs_per_sec as f64 / reference.programs_per_sec as f64;
        if attempt > ratio {
            (tcp_rate, ref_rate, ratio) =
                (tcp.programs_per_sec, reference.programs_per_sec, attempt);
        }
    }
    let verdict = if ratio < CHECK_MIN_TCP_RATIO {
        failed = true;
        "REGRESSED"
    } else {
        "ok"
    };
    println!(
        "pipelined tcp {tcp_rate} prog/s vs in-process {ref_rate} prog/s  ratio {ratio:.3} \
         (floor {CHECK_MIN_TCP_RATIO})  {verdict}"
    );
    if failed {
        eprintln!("wire-protocol performance regressed vs baseline");
        std::process::exit(1);
    }
    println!("wire-protocol performance within tolerance");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(position) = args.iter().position(|a| a == "--check") {
        let Some(baseline) = args.get(position + 1) else {
            eprintln!("error: --check requires a baseline path");
            std::process::exit(1);
        };
        run_check(baseline);
    }

    println!("E17 net — wire round-trip latency and pipelined throughput (1-core container)");

    let stats: Vec<LatencyStats> = CLIENT_COUNTS.iter().map(|&c| latency_run(c)).collect();
    for s in &stats {
        println!(
            "{:<60} time: [p50 {}] (p99 {}, p999 {}, {} programs/s)",
            format!("E17-net/round-trip/clients-{}", s.clients),
            format_nanos(s.p50_ns),
            format_nanos(s.p99_ns),
            format_nanos(s.p999_ns),
            s.programs_per_sec
        );
    }

    let pipelined = [pipelined_tcp(), pipelined_in_process()];
    for p in &pipelined {
        println!(
            "{:<60} time: [best {}] ({} programs/s)",
            format!(
                "E17-net/pipelined/{}/max-batch-{}",
                p.transport, PIPELINED_MAX_BATCH
            ),
            format_nanos(p.best_total_ns),
            p.programs_per_sec
        );
    }
    println!(
        "wire keeps {:.1}% of in-process pipelined throughput",
        100.0 * pipelined[0].programs_per_sec as f64 / pipelined[1].programs_per_sec as f64
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"E17-net\",");
    json.push_str("  \"round_trip\": [\n");
    for (index, s) in stats.iter().enumerate() {
        let comma = if index + 1 == stats.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"clients\": {}, \"ops\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"p999_ns\": {}, \"programs_per_sec\": {}}}{comma}",
            s.clients, s.ops, s.p50_ns, s.p99_ns, s.p999_ns, s.programs_per_sec
        );
    }
    json.push_str("  ],\n  \"pipelined\": [\n");
    for (index, p) in pipelined.iter().enumerate() {
        let comma = if index + 1 == pipelined.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"transport\": \"{}\", \"max_batch\": {}, \"programs\": {}, \
             \"best_total_ns\": {}, \"programs_per_sec\": {}}}{comma}",
            p.transport,
            PIPELINED_MAX_BATCH,
            PIPELINED_PROGRAMS,
            p.best_total_ns,
            p.programs_per_sec
        );
    }
    json.push_str("  ]\n}\n");

    let path = workspace_path("BENCH_net.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
