//! The paper's running example, narrated: Figures 1–16 on the
//! hyper-media object base.
//!
//! Run with `cargo run --example hypermedia`.

use good::hypermedia::{build_instance, figures};
use good::model::error::Result;
use good::model::label::Label;
use good::model::matching::find_matchings;
use good::model::program::Env;
use good::model::value::Value;

fn main() -> Result<()> {
    // Figures 1–3: scheme and instance.
    let (mut db, handles) = build_instance();
    println!(
        "Figures 1-3: hyper-media instance with {} nodes and {} edges",
        db.node_count(),
        db.edge_count()
    );
    println!(
        "  (the Jan 12, 1990 date is ONE node shared by {} `created` edges)",
        db.sources(
            db.find_printable(&"Date".into(), &Value::date(1990, 1, 12))
                .expect("date"),
            &Label::new("created"),
        )
        .count()
    );

    // Figures 4–5: the pattern and its two matchings.
    let (pattern, nodes) = figures::fig4_pattern();
    let matchings = find_matchings(&pattern, &db)?;
    println!(
        "\nFigure 4: pattern has {} matchings (the paper shows two)",
        matchings.len()
    );
    for matching in &matchings {
        let other = matching.image(nodes.other);
        let name = db
            .functional_target(other, &"name".into())
            .and_then(|n| db.print_value(n).cloned());
        println!("  Rock links to {}", name.expect("named"));
    }

    // Figures 6–7: node addition tags the two targets.
    let report = figures::fig6_node_addition().apply(&mut db)?;
    println!(
        "\nFigure 6: node addition created {} tag nodes",
        report.created_nodes.len()
    );

    // Figure 8: aggregate pairs of creation dates.
    let report = figures::fig8_node_addition().apply(&mut db)?;
    println!(
        "Figure 8: {} matchings yielded {} Pair aggregates",
        report.matchings,
        report.created_nodes.len()
    );

    // Figures 10–11: edge addition.
    let report = figures::fig10_edge_addition().apply(&mut db)?;
    println!(
        "Figure 10: added {} data-creation edges",
        report.edges_added
    );

    // Figures 12–13: building a set object.
    let mut env = Env::new();
    let set = figures::figs12_13_build_set(&mut db, &mut env)?;
    println!(
        "Figures 12-13: set object collects {} infos created on Jan 14, 1990",
        db.targets(set, &"contains".into()).count()
    );

    // Figures 14–15: node deletion isolates Mozart.
    figures::fig14_node_deletion().apply(&mut db)?;
    println!(
        "Figure 14: Classical Music deleted; Mozart now has in-degree {}",
        db.graph().in_degree(handles.mozart)
    );

    // Figure 16: update the last-modified date.
    figures::fig16_update(&mut db, &mut env)?;
    let modified = db
        .functional_target(handles.music_history, &"modified".into())
        .and_then(|d| db.print_value(d).cloned());
    println!(
        "Figure 16: Music History last modified {}",
        modified.expect("date")
    );

    db.validate()?;
    println!("\ninstance still validates — done");
    Ok(())
}
