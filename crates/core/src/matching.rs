//! Pattern matching — the engine every GOOD operation is driven by.
//!
//! Section 3 of the paper: "a matching of J in I is a total mapping
//! `i : M → N` satisfying (1) labels are preserved, (2) print labels are
//! preserved, (3) edges are preserved." Matchings are graph
//! homomorphisms — *not* required to be injective.
//!
//! Two engines are provided:
//!
//! * [`find_matchings`] — the production engine: backtracking search
//!   over a dense [`Frame`] with dynamic most-constrained-node
//!   selection. Candidate sets come from the instance's adjacency
//!   index — `(node label, edge label)` postings for bound neighbours,
//!   support-set intersections for unanchored nodes — instead of
//!   whole-label scans. Large searches are split into *morsels* of
//!   root-node candidates and solved on multiple threads (see
//!   [`MatchConfig`]); the canonical sort makes the result bit-for-bit
//!   identical at any thread count. Crossed (negated) parts use the
//!   paper's extension semantics; printable predicates are supported.
//! * [`find_matchings_naive`] — candidate cross-product enumeration with
//!   a post-hoc edge filter. Exponential; kept as differential-testing
//!   ground truth and as the baseline of benchmark E1.
//!
//! Both return matchings in a canonical deterministic order so that the
//! set-oriented operations of Section 3 are reproducible run to run.

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::label::Label;
use crate::pattern::{Pattern, PatternNode, PatternNodeKind};
use crate::persist::PSet;
use crate::planner::{self, JoinStrategy};
use crate::wcoj;
use good_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bound-neighbour images with at most this many incident edges are
/// scanned directly during candidate derivation instead of probed
/// through the adjacency index (mirrors `Instance::has_edge`).
const SCAN_LIMIT: usize = 8;

/// A matching: a total mapping from pattern nodes to instance nodes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Matching(BTreeMap<NodeId, NodeId>);

impl Matching {
    /// The image of a pattern node.
    ///
    /// # Panics
    /// Panics if `pattern_node` is not in the matching's domain — GOOD
    /// operations only ever ask for nodes of their own source pattern.
    pub fn image(&self, pattern_node: NodeId) -> NodeId {
        self.0[&pattern_node]
    }

    /// The image, or `None` when outside the domain.
    pub fn get(&self, pattern_node: NodeId) -> Option<NodeId> {
        self.0.get(&pattern_node).copied()
    }

    /// Iterate over `(pattern node, instance node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.0.iter().map(|(p, i)| (*p, *i))
    }

    /// Number of bound pattern nodes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty matching (of the empty pattern).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Build from pairs (for tests).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        Matching(pairs.into_iter().collect())
    }
}

// ---- threading configuration -------------------------------------------

/// Process-wide default for [`MatchConfig::threads`]; 0 means "ask the
/// OS" via `available_parallelism`.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide default worker count used when
/// [`MatchConfig::threads`] is 0. Passing 0 restores auto-detection.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The resolved process-wide default worker count.
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => machine_parallelism(),
        n => n,
    }
}

/// `available_parallelism`, probed once. The std call re-reads cgroup
/// quota files on Linux (~10 µs), which would dwarf an anchored point
/// query if paid per `find_matchings` call.
fn machine_parallelism() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    match CACHED.load(Ordering::Relaxed) {
        0 => {
            let probed = std::thread::available_parallelism().map_or(1, |n| n.get());
            CACHED.store(probed, Ordering::Relaxed);
            probed
        }
        n => n,
    }
}

/// Tuning knobs for [`find_matchings_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchConfig {
    /// Worker thread count. 0 resolves to [`default_threads`] (which in
    /// turn defaults to the machine's available parallelism).
    pub threads: usize,
    /// Minimum number of root candidates before the search goes
    /// parallel; below it the morsel machinery is not worth its setup
    /// cost and the sequential path runs instead.
    pub parallel_threshold: usize,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            threads: 0,
            parallel_threshold: 128,
        }
    }
}

impl MatchConfig {
    /// A sequential configuration (one worker, any input size).
    pub fn sequential() -> Self {
        MatchConfig {
            threads: 1,
            parallel_threshold: usize::MAX,
        }
    }

    /// Override the worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            default_threads().max(1)
        } else {
            self.threads
        }
    }
}

// ---- binding frame ------------------------------------------------------

/// A dense partial binding: pattern-node arena index → instance node.
///
/// Replaces the `BTreeMap<NodeId, NodeId>` of the original engine; bind,
/// unbind, and lookup are all a single vector access. Sized by the
/// pattern graph's `node_index_bound`, which `positive_part`/`unnegated`
/// preserve, so one frame layout serves both the positive search and the
/// negation-extension search.
#[derive(Debug, Clone)]
struct Frame {
    slots: Vec<Option<NodeId>>,
    bound: usize,
}

impl Frame {
    fn new(capacity: usize) -> Self {
        Frame {
            slots: vec![None; capacity],
            bound: 0,
        }
    }

    #[inline]
    fn get(&self, node: NodeId) -> Option<NodeId> {
        self.slots[node.index()]
    }

    #[inline]
    fn bind(&mut self, node: NodeId, image: NodeId) {
        debug_assert!(self.slots[node.index()].is_none());
        self.slots[node.index()] = Some(image);
        self.bound += 1;
    }

    #[inline]
    fn unbind(&mut self, node: NodeId) {
        debug_assert!(self.slots[node.index()].is_some());
        self.slots[node.index()] = None;
        self.bound -= 1;
    }
}

/// Does the instance node `candidate` satisfy `node`'s local constraints
/// (label, print value, predicate)?
pub(crate) fn node_compatible(instance: &Instance, node: &PatternNode, candidate: NodeId) -> bool {
    let PatternNodeKind::Class(label) = &node.kind else {
        return false;
    };
    if instance.node_label(candidate) != Some(label) {
        return false;
    }
    if let Some(required) = &node.print {
        if instance.print_value(candidate) != Some(required) {
            return false;
        }
    }
    if let Some(predicate) = &node.predicate {
        match instance.print_value(candidate) {
            Some(value) if predicate.matches(value) => {}
            _ => return false,
        }
    }
    true
}

/// The backtracking core: extend a [`Frame`] to cover all of `nodes`,
/// invoking `on_match` for each complete assignment. Shared immutably
/// across worker threads by the parallel driver.
struct Search<'a> {
    pattern: &'a Pattern,
    instance: &'a Instance,
    nodes: Vec<NodeId>,
}

impl<'a> Search<'a> {
    /// One frame sized for this search's pattern.
    fn frame(&self) -> Frame {
        Frame::new(self.pattern.graph().node_index_bound())
    }

    /// Materialize a complete frame as a [`Matching`].
    fn to_matching(&self, frame: &Frame) -> Matching {
        Matching(
            self.nodes
                .iter()
                .map(|&n| (n, frame.get(n).expect("complete frame")))
                .collect(),
        )
    }

    /// Candidate instance nodes for `pnode` given the current partial
    /// `frame`, derived from the adjacency index.
    ///
    /// (`SCAN_LIMIT` mirrors `Instance::has_edge`: below it a direct
    /// edge-list scan beats the two label hashes an index probe costs.)
    ///
    /// Priority: exact printable value (one probe) → smallest postings
    /// set of an edge to a bound neighbour (exact) → intersection of the
    /// support sets of all incident edge labels (complete
    /// over-approximation; exactness is restored by `edges_consistent`
    /// as neighbours get bound) → whole label extent (isolated nodes).
    fn candidates(&self, pnode: NodeId, frame: &Frame) -> Vec<NodeId> {
        let data = self.pattern.graph().node(pnode).expect("live pattern node");
        let PatternNodeKind::Class(label) = &data.kind else {
            return Vec::new();
        };
        // Exact printable value: at most one candidate via the index.
        if let Some(value) = &data.print {
            return match self.instance.find_printable(label, value) {
                Some(node) => vec![node],
                None => Vec::new(),
            };
        }
        // Bound neighbour: candidates are the neighbours of its image
        // along the connecting edge. A low-degree image is scanned
        // directly (cheaper than hashing two labels for an index probe);
        // a high-degree one uses the postings under (λ(pnode), edge
        // label), which are exact and degree-independent. A probed
        // anchor with no postings means no candidate at all.
        enum Anchor<'i> {
            Postings(&'i PSet<NodeId>),
            ScanSources(NodeId),
            ScanTargets(NodeId),
        }
        let mut best: Option<(usize, Anchor<'_>, &Label)> = None;
        let mut anchored = false;
        for edge in self.pattern.graph().out_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            if let Some(bound) = frame.get(edge.dst) {
                anchored = true;
                let elabel = &edge.payload.label;
                let degree = self.instance.in_degree(bound);
                if degree <= SCAN_LIMIT {
                    if best.as_ref().is_none_or(|(len, _, _)| degree < *len) {
                        best = Some((degree, Anchor::ScanSources(bound), elabel));
                    }
                } else {
                    match self.instance.indexed_sources(label, elabel, bound) {
                        Some(set) => {
                            if best.as_ref().is_none_or(|(len, _, _)| set.len() < *len) {
                                best = Some((set.len(), Anchor::Postings(set), elabel));
                            }
                        }
                        None => return Vec::new(),
                    }
                }
            }
        }
        for edge in self.pattern.graph().in_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            if let Some(bound) = frame.get(edge.src) {
                anchored = true;
                let elabel = &edge.payload.label;
                let degree = self.instance.out_degree(bound);
                if degree <= SCAN_LIMIT {
                    if best.as_ref().is_none_or(|(len, _, _)| degree < *len) {
                        best = Some((degree, Anchor::ScanTargets(bound), elabel));
                    }
                } else {
                    match self.instance.indexed_targets(label, elabel, bound) {
                        Some(set) => {
                            if best.as_ref().is_none_or(|(len, _, _)| set.len() < *len) {
                                best = Some((set.len(), Anchor::Postings(set), elabel));
                            }
                        }
                        None => return Vec::new(),
                    }
                }
            }
        }
        if anchored {
            let (_, anchor, elabel) = best.expect("anchored search has an anchor");
            return match anchor {
                Anchor::Postings(set) => set
                    .iter()
                    .copied()
                    .filter(|c| node_compatible(self.instance, data, *c))
                    .collect(),
                Anchor::ScanSources(bound) => {
                    let mut cands: Vec<NodeId> = self
                        .instance
                        .sources(bound, elabel)
                        .filter(|c| node_compatible(self.instance, data, *c))
                        .collect();
                    cands.sort_unstable();
                    cands.dedup();
                    cands
                }
                Anchor::ScanTargets(bound) => {
                    let mut cands: Vec<NodeId> = self
                        .instance
                        .targets(bound, elabel)
                        .filter(|c| node_compatible(self.instance, data, *c))
                        .collect();
                    cands.sort_unstable();
                    cands.dedup();
                    cands
                }
            };
        }
        // No bound neighbour: intersect the support sets of every
        // incident edge label, smallest first.
        let mut supports: Vec<&PSet<NodeId>> = Vec::new();
        for edge in self.pattern.graph().out_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            match self.instance.out_support(label, &edge.payload.label) {
                Some(set) => supports.push(set),
                None => return Vec::new(),
            }
        }
        for edge in self.pattern.graph().in_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            match self.instance.in_support(label, &edge.payload.label) {
                Some(set) => supports.push(set),
                None => return Vec::new(),
            }
        }
        if !supports.is_empty() {
            supports.sort_by_key(|set| set.len());
            let (first, rest) = supports.split_first().expect("non-empty");
            return first
                .iter()
                .copied()
                .filter(|c| rest.iter().all(|set| set.contains(c)))
                .filter(|c| node_compatible(self.instance, data, *c))
                .collect();
        }
        // Isolated pattern node: fall back to the label extent.
        self.instance
            .nodes_with_label(label)
            .filter(|c| node_compatible(self.instance, data, *c))
            .collect()
    }

    /// All (non-negated) pattern edges between bound nodes must exist in
    /// the instance once both endpoints are bound. We check edges
    /// incident to the node just bound.
    fn edges_consistent(&self, pnode: NodeId, frame: &Frame) -> bool {
        let image = frame.get(pnode).expect("pnode just bound");
        for edge in self.pattern.graph().out_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            if let Some(dst) = frame.get(edge.dst) {
                if !self.instance.has_edge(image, &edge.payload.label, dst) {
                    return false;
                }
            }
        }
        for edge in self.pattern.graph().in_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            // Self-loops were handled by the out_edges pass.
            if edge.src == pnode {
                continue;
            }
            if let Some(src) = frame.get(edge.src) {
                if !self.instance.has_edge(src, &edge.payload.label, image) {
                    return false;
                }
            }
        }
        true
    }

    /// A cheap upper-bound estimate of `pnode`'s candidate count under
    /// the current frame, without materializing the list. Used for
    /// most-constrained-node selection: full lists are built only for
    /// the node actually chosen. All numbers are O(1) — index set sizes
    /// or neighbour degrees, never an edge-list traversal.
    fn candidate_estimate(&self, pnode: NodeId, frame: &Frame) -> usize {
        let data = self.pattern.graph().node(pnode).expect("live pattern node");
        let PatternNodeKind::Class(label) = &data.kind else {
            return 0;
        };
        if data.print.is_some() {
            return 1;
        }
        let mut best = self.instance.label_count(label);
        for edge in self.pattern.graph().out_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            let size = match frame.get(edge.dst) {
                Some(bound) => {
                    let degree = self.instance.in_degree(bound);
                    if degree <= SCAN_LIMIT {
                        degree
                    } else {
                        self.instance
                            .indexed_sources(label, &edge.payload.label, bound)
                            .map_or(0, PSet::len)
                    }
                }
                None => self
                    .instance
                    .out_support(label, &edge.payload.label)
                    .map_or(0, PSet::len),
            };
            best = best.min(size);
        }
        for edge in self.pattern.graph().in_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            let size = match frame.get(edge.src) {
                Some(bound) => {
                    let degree = self.instance.out_degree(bound);
                    if degree <= SCAN_LIMIT {
                        degree
                    } else {
                        self.instance
                            .indexed_targets(label, &edge.payload.label, bound)
                            .map_or(0, PSet::len)
                    }
                }
                None => self
                    .instance
                    .in_support(label, &edge.payload.label)
                    .map_or(0, PSet::len),
            };
            best = best.min(size);
        }
        best
    }

    /// Human description of the access path [`Search::candidates`] would
    /// take for `pnode` once every node in `planned` is bound. Used by
    /// [`explain_plan`]; mirrors the candidate-derivation priority.
    fn describe_access(&self, pnode: NodeId, planned: &BTreeSet<NodeId>) -> String {
        let data = self.pattern.graph().node(pnode).expect("live pattern node");
        let PatternNodeKind::Class(label) = &data.kind else {
            return "method head (not matchable)".into();
        };
        let predicate_note = if data.predicate.is_some() {
            " + predicate filter"
        } else {
            ""
        };
        if let Some(value) = &data.print {
            return format!("printable probe ({label} = {value})");
        }
        let mut anchors: Vec<String> = Vec::new();
        let mut unanchored = 0usize;
        for edge in self.pattern.graph().out_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            if planned.contains(&edge.dst) {
                anchors.push(format!("-[{}]->", edge.payload.label));
            } else {
                unanchored += 1;
            }
        }
        for edge in self.pattern.graph().in_edges(pnode) {
            if edge.payload.negated || edge.src == pnode {
                continue;
            }
            if planned.contains(&edge.src) {
                anchors.push(format!("<-[{}]-", edge.payload.label));
            } else {
                unanchored += 1;
            }
        }
        if !anchors.is_empty() {
            format!(
                "index probe: smallest ({label}, edge) postings of a bound neighbour \
                 via {}{predicate_note} (anchors with degree <= {SCAN_LIMIT} scan edge lists)",
                anchors.join(" / ")
            )
        } else if unanchored > 0 {
            format!(
                "support intersection over {unanchored} incident edge label(s) \
                 on {label}{predicate_note}"
            )
        } else {
            format!("label extent scan of {label}{predicate_note}")
        }
    }

    /// The most constrained unbound node, by candidate estimate.
    fn most_constrained(&self, frame: &Frame) -> Option<NodeId> {
        self.nodes
            .iter()
            .filter(|n| frame.get(**n).is_none())
            .map(|&n| (self.candidate_estimate(n, frame), n))
            .min()
            .map(|(_, n)| n)
    }

    fn solve(
        &self,
        frame: &mut Frame,
        steps: &mut u64,
        on_match: &mut impl FnMut(&Frame) -> bool,
    ) -> bool {
        *steps += 1;
        if frame.bound == self.nodes.len() {
            return on_match(frame);
        }
        // Most-constrained-node selection on cheap estimates; only the
        // winner's candidate list is materialized.
        let next = self
            .most_constrained(frame)
            .expect("at least one unbound node");
        let candidates = self.candidates(next, frame);
        for candidate in candidates {
            frame.bind(next, candidate);
            if self.edges_consistent(next, frame) && !self.solve(frame, steps, on_match) {
                return false;
            }
            frame.unbind(next);
        }
        true
    }

    /// Enumerate every matching of this search's (positive) pattern,
    /// unsorted. The root node — the cost-based planner's choice when
    /// `root_override` is given, the most-constrained node otherwise —
    /// seeds the search; splits its candidate list into morsels claimed
    /// by worker threads via an atomic cursor when the list is large
    /// enough; the caller's canonical sort makes the merged result
    /// independent of scheduling.
    fn enumerate(&self, config: MatchConfig, root_override: Option<NodeId>) -> Vec<Matching> {
        let threads = config.resolved_threads();
        if self.nodes.is_empty() {
            // The empty pattern has exactly one (empty) matching.
            return vec![self.to_matching(&self.frame())];
        }
        let empty = self.frame();
        let (root, root_candidates) = {
            let mut plan_span = good_trace::span("match", "match/plan");
            let root = root_override
                .filter(|n| self.nodes.contains(n))
                .unwrap_or_else(|| self.most_constrained(&empty).expect("non-empty pattern"));
            let root_candidates = self.candidates(root, &empty);
            plan_span.arg("root_candidates", root_candidates.len());
            (root, root_candidates)
        };
        if threads <= 1 || root_candidates.len() < config.parallel_threshold {
            let mut roots_span = good_trace::span("match", "match/roots");
            let mut steps = 0u64;
            let mut results = Vec::new();
            let mut frame = self.frame();
            for &candidate in &root_candidates {
                frame.bind(root, candidate);
                if self.edges_consistent(root, &frame) {
                    self.solve(&mut frame, &mut steps, &mut |complete| {
                        results.push(self.to_matching(complete));
                        true
                    });
                }
                frame.unbind(root);
            }
            roots_span.arg("roots", root_candidates.len());
            roots_span.arg("matchings", results.len());
            roots_span.arg("steps", steps);
            return results;
        }
        // Morsel-driven: workers claim contiguous chunks of the root
        // candidate list with a fetch_add cursor, so fast morsels steal
        // the slack left by slow ones.
        let morsel = (root_candidates.len() / (threads * 8)).clamp(1, 1024);
        let cursor = AtomicUsize::new(0);
        let mut merged: Vec<Matching> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    let root_candidates = &root_candidates;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        let mut frame = self.frame();
                        loop {
                            let start = cursor.fetch_add(morsel, Ordering::Relaxed);
                            if start >= root_candidates.len() {
                                break;
                            }
                            let end = (start + morsel).min(root_candidates.len());
                            // Morsel spans are worker-thread roots. Their
                            // args (chunk bounds, matchings, steps) are
                            // deterministic even though worker assignment
                            // is not; `SpanTree::canonicalize` erases the
                            // scheduling order.
                            let mut morsel_span = good_trace::span("match", "match/morsel");
                            let mut steps = 0u64;
                            let before = local.len();
                            for &candidate in &root_candidates[start..end] {
                                frame.bind(root, candidate);
                                if self.edges_consistent(root, &frame) {
                                    self.solve(&mut frame, &mut steps, &mut |complete| {
                                        local.push(self.to_matching(complete));
                                        true
                                    });
                                }
                                frame.unbind(root);
                            }
                            morsel_span.arg("start", start);
                            morsel_span.arg("len", end - start);
                            morsel_span.arg("matchings", local.len() - before);
                            morsel_span.arg("steps", steps);
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                merged.extend(handle.join().expect("matching worker panicked"));
            }
        });
        merged
    }
}

/// Can `matching` (over the positive part) be extended to a matching of
/// the complete (unnegated) pattern?
pub(crate) fn extends_to_full(pattern: &Pattern, instance: &Instance, matching: &Matching) -> bool {
    let full = pattern.unnegated();
    let nodes: Vec<NodeId> = full.graph().node_ids().collect();
    let search = Search {
        pattern: &full,
        instance,
        nodes,
    };
    // `positive_part`/`unnegated` preserve the node arena layout, so the
    // matching's pattern-node ids index the full pattern's frame.
    let mut frame = search.frame();
    for (pnode, image) in matching.iter() {
        frame.bind(pnode, image);
    }
    // Pre-bound part must already satisfy the full pattern's edges among
    // bound nodes (crossed edges between positive nodes).
    for (pnode, _) in matching.iter() {
        if !search.edges_consistent(pnode, &frame) {
            return false;
        }
    }
    let mut found = false;
    let mut steps = 0u64;
    search.solve(&mut frame, &mut steps, &mut |_| {
        found = true;
        false // stop at first witness
    });
    found
}

/// Find all matchings of `pattern` in `instance`, in canonical order,
/// using the process-default [`MatchConfig`].
///
/// Crossed parts are evaluated with the paper's semantics: a matching of
/// the positive part survives iff it *cannot* be enlarged to the
/// complete pattern (Section 4.1, Figure 27).
/// # Example
///
/// ```
/// use good_core::prelude::*;
///
/// let scheme = SchemeBuilder::new()
///     .object("Info")
///     .multivalued("Info", "links-to", "Info")
///     .build();
/// let mut db = Instance::new(scheme);
/// let a = db.add_object("Info")?;
/// let b = db.add_object("Info")?;
/// db.add_edge(a, "links-to", b)?;
///
/// let mut pattern = Pattern::new();
/// let src = pattern.node("Info");
/// let dst = pattern.node("Info");
/// pattern.edge(src, "links-to", dst);
///
/// let matchings = find_matchings(&pattern, &db)?;
/// assert_eq!(matchings.len(), 1);
/// assert_eq!(matchings[0].image(src), a);
/// assert_eq!(matchings[0].image(dst), b);
/// # Ok::<(), GoodError>(())
/// ```
pub fn find_matchings(pattern: &Pattern, instance: &Instance) -> Result<Vec<Matching>> {
    find_matchings_with(pattern, instance, MatchConfig::default())
}

/// [`find_matchings`] with explicit threading configuration.
///
/// The result is bit-for-bit identical for every `config`: both the
/// sequential and the morsel-parallel path enumerate the complete
/// solution set, and the canonical sort erases scheduling order.
pub fn find_matchings_with(
    pattern: &Pattern,
    instance: &Instance,
    config: MatchConfig,
) -> Result<Vec<Matching>> {
    if pattern.has_method_head() {
        return Err(GoodError::InvalidPattern(
            "patterns with method-head nodes must be rewritten by a method call before matching"
                .into(),
        ));
    }
    pattern.validate(instance.scheme())?;

    let mut find_span = good_trace::span("match", "match/find");
    let started = find_span.is_live().then(std::time::Instant::now);

    let positive = pattern.positive_part();
    let nodes: Vec<NodeId> = positive.graph().node_ids().collect();
    let pattern_nodes = nodes.len();
    // Cost-based planning: rank binding orders on the incrementally
    // maintained statistics and pick the evaluation strategy. Pure
    // arithmetic over per-edge scalars — cheap enough for point queries.
    let choice = planner::plan(&positive, instance);
    let mut results = match choice.strategy {
        JoinStrategy::GenericJoin => {
            good_trace::counter_add("planner.wcoj", 1);
            wcoj::enumerate_generic(&positive, instance, &choice.order, None)
        }
        JoinStrategy::Expand => {
            good_trace::counter_add("planner.expand", 1);
            let search = Search {
                pattern: &positive,
                instance,
                nodes,
            };
            search.enumerate(config, choice.order.first().copied())
        }
    };
    results.sort();
    results.dedup();

    let positive_results = results.len();
    if pattern.has_negation() {
        results.retain(|m| !extends_to_full(pattern, instance, m));
    }
    if find_span.is_live() {
        find_span.arg("pattern_nodes", pattern_nodes);
        find_span.arg("matchings", results.len());
        find_span.arg("negation", pattern.has_negation());
        find_span.arg("strategy", choice.strategy.name());
        find_span.arg("est_rows", choice.est_rows);
        good_trace::counter_add("match.calls", 1);
        good_trace::counter_add(
            "match.negation_filtered",
            (positive_results - results.len()) as u64,
        );
        if let Some(t0) = started {
            good_trace::observe_ns("match.find_ns", t0.elapsed().as_nanos() as u64);
        }
    }
    Ok(results)
}

// ---- EXPLAIN -------------------------------------------------------------

/// One step of an EXPLAIN plan: which pattern node the search binds
/// next, and through which access path.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// The pattern node bound at this step.
    pub node: NodeId,
    /// Its class label.
    pub label: String,
    /// Human description of the access path (printable probe, index
    /// probe, support intersection, or label extent scan).
    pub access: String,
    /// Estimated candidates scanned per partial row at this step (the
    /// cost model's scan width, rounded).
    pub estimate: usize,
    /// Estimated partial matchings alive after this step, from the
    /// cost-based planner's cardinality propagation.
    pub est_rows: f64,
    /// Actual partial matchings that survived this step — filled by
    /// [`explain_plan_profiled`], `None` on unprofiled plans.
    pub actual_rows: Option<u64>,
}

/// A static description of the plan [`find_matchings_with`] would run
/// for a pattern against an instance — produced by [`explain_plan`]
/// without executing the search, or by [`explain_plan_profiled`] with
/// per-step actual row counts.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Binding steps in the cost-based planner's order — the exact
    /// order the generic-join path executes, and the root (plus cold
    /// ranking) of the expand path.
    pub steps: Vec<PlanStep>,
    /// Exact candidate count for the root node.
    pub root_candidates: usize,
    /// Resolved worker thread count.
    pub threads: usize,
    /// Root-candidate count below which the search stays sequential.
    pub parallel_threshold: usize,
    /// Whether the morsel-parallel path would run.
    pub parallel: bool,
    /// Morsel size (0 when sequential).
    pub morsel: usize,
    /// Whether matchings are post-filtered by the negation extension
    /// check.
    pub negation: bool,
    /// The planner's evaluation strategy decision.
    pub strategy: JoinStrategy,
    /// Whether the positive pattern contains a (non-self-loop) cycle.
    pub cyclic: bool,
    /// Estimated final matching count.
    pub est_rows: f64,
    /// Estimated total cost (Σ rows-before × scan width).
    pub est_cost: f64,
    /// Final matching count measured by [`explain_plan_profiled`]
    /// (after the negation post-filter), `None` on unprofiled plans.
    pub actual_matchings: Option<usize>,
}

impl Plan {
    /// Render with pattern nodes shown as `n<index>`.
    pub fn render(&self) -> String {
        self.render_with(|_| None)
    }

    /// Render as an indented text report, resolving pattern-node
    /// display names through `name` (fall back: `n<index>`).
    pub fn render_with(&self, name: impl Fn(NodeId) -> Option<String>) -> String {
        let mut out = String::new();
        let negation = if self.negation {
            "negation post-filter"
        } else {
            "no negation"
        };
        out.push_str(&format!(
            "match plan ({} step{}, {negation}):\n",
            self.steps.len(),
            if self.steps.len() == 1 { "" } else { "s" }
        ));
        for (index, step) in self.steps.iter().enumerate() {
            let display = name(step.node).unwrap_or_else(|| format!("n{}", step.node.index()));
            let actual = match step.actual_rows {
                Some(rows) => format!(", actual {rows} rows"),
                None => String::new(),
            };
            out.push_str(&format!(
                "  {}. bind {display} [{}] via {}  (est. {}, ~{:.0} rows{actual})\n",
                index + 1,
                step.label,
                step.access,
                step.estimate,
                step.est_rows,
            ));
        }
        let cyclic = if self.cyclic { "cyclic" } else { "acyclic" };
        out.push_str(&format!(
            "strategy: {} ({cyclic}, est. cost {:.0}, est. {:.0} matchings{})\n",
            self.strategy.name(),
            self.est_cost,
            self.est_rows,
            match self.actual_matchings {
                Some(count) => format!(", actual {count}"),
                None => String::new(),
            },
        ));
        if self.parallel {
            out.push_str(&format!(
                "root candidates: {} -> morsel-parallel ({} threads, morsel {}, threshold {})\n",
                self.root_candidates, self.threads, self.morsel, self.parallel_threshold
            ));
        } else {
            out.push_str(&format!(
                "root candidates: {} -> sequential ({} threads available, threshold {})\n",
                self.root_candidates, self.threads, self.parallel_threshold
            ));
        }
        out
    }

    /// Render as a JSON object for the server's slow-query log and
    /// stats wire frame: strategy, cost model totals, and per-step
    /// estimated-vs-actual rows. `actual_rows`/`actual_matchings` are
    /// `null` on unprofiled plans.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"strategy\":\"{}\",\"cyclic\":{},\"parallel\":{},\"negation\":{},\"root_candidates\":{},\"est_cost\":{:.1},\"est_rows\":{:.1},\"actual_matchings\":{},\"steps\":[",
            good_trace::escape_json_str(self.strategy.name()),
            self.cyclic,
            self.parallel,
            self.negation,
            self.root_candidates,
            self.est_cost,
            self.est_rows,
            match self.actual_matchings {
                Some(count) => count.to_string(),
                None => "null".to_string(),
            },
        );
        for (index, step) in self.steps.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"node\":{},\"label\":\"{}\",\"access\":\"{}\",\"estimate\":{},\"est_rows\":{:.1},\"actual_rows\":{}}}",
                step.node.index(),
                good_trace::escape_json_str(&step.label),
                good_trace::escape_json_str(&step.access),
                step.estimate,
                step.est_rows,
                match step.actual_rows {
                    Some(rows) => rows.to_string(),
                    None => "null".to_string(),
                },
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Describe, without running it, the plan [`find_matchings_with`] would
/// choose for `pattern` against `instance` under `config`: the
/// cost-based binding order with per-step access paths and cardinality
/// estimates, the expand-vs-generic-join strategy decision, the exact
/// root candidate count, and the sequential-vs-morsel decision.
pub fn explain_plan(pattern: &Pattern, instance: &Instance, config: MatchConfig) -> Result<Plan> {
    explain(pattern, instance, config, false)
}

/// [`explain_plan`] plus execution: runs the planned order once,
/// filling each step's `actual_rows` with the number of partial
/// matchings that survived it and the plan's `actual_matchings` with
/// the final (negation-filtered) count, so per-step estimate error is
/// visible. Observes the estimate error into the
/// `match.plan.est_error_pct` trace histogram when tracing is live.
pub fn explain_plan_profiled(
    pattern: &Pattern,
    instance: &Instance,
    config: MatchConfig,
) -> Result<Plan> {
    explain(pattern, instance, config, true)
}

fn explain(
    pattern: &Pattern,
    instance: &Instance,
    config: MatchConfig,
    profile: bool,
) -> Result<Plan> {
    if pattern.has_method_head() {
        return Err(GoodError::InvalidPattern(
            "patterns with method-head nodes must be rewritten by a method call before matching"
                .into(),
        ));
    }
    pattern.validate(instance.scheme())?;
    let positive = pattern.positive_part();
    let nodes: Vec<NodeId> = positive.graph().node_ids().collect();
    let search = Search {
        pattern: &positive,
        instance,
        nodes,
    };
    let empty = search.frame();
    let threads = config.resolved_threads();
    let choice = planner::plan(&positive, instance);

    // Profile: execute the planned order once, counting the partial
    // matchings that survive each depth. The generic enumerator walks
    // exactly the planned static order, so its per-depth counts are the
    // per-step actuals for both strategies.
    let (actuals, actual_matchings) = if profile {
        let mut span = good_trace::span("match", "match/explain");
        let mut counts = vec![0u64; choice.order.len()];
        let mut results =
            wcoj::enumerate_generic(&positive, instance, &choice.order, Some(&mut counts));
        results.sort();
        results.dedup();
        if pattern.has_negation() {
            results.retain(|m| !extends_to_full(pattern, instance, m));
        }
        span.arg("matchings", results.len());
        span.arg("strategy", choice.strategy.name());
        (Some(counts), Some(results.len()))
    } else {
        (None, None)
    };

    let mut planned: BTreeSet<NodeId> = BTreeSet::new();
    let mut steps = Vec::new();
    let mut root_candidates = 0usize;
    for (index, step) in choice.steps.iter().enumerate() {
        let node = step.node;
        if planned.is_empty() {
            root_candidates = search.candidates(node, &empty).len();
        }
        let label = match &positive.graph().node(node).expect("live pattern node").kind {
            PatternNodeKind::Class(label) => label.to_string(),
            _ => "?".into(),
        };
        let access = search.describe_access(node, &planned);
        let actual_rows = actuals.as_ref().map(|counts| counts[index]);
        if let Some(actual) = actual_rows {
            let estimated = step.est_rows.max(0.0);
            let error_pct = if actual == 0 {
                (estimated * 100.0) as u64
            } else {
                ((estimated - actual as f64).abs() / actual as f64 * 100.0) as u64
            };
            good_trace::observe("match.plan.est_error_pct", error_pct);
        }
        steps.push(PlanStep {
            node,
            label,
            access,
            estimate: step.est_scanned.round() as usize,
            est_rows: step.est_rows,
            actual_rows,
        });
        planned.insert(node);
    }
    let parallel = choice.strategy == JoinStrategy::Expand
        && !choice.order.is_empty()
        && threads > 1
        && root_candidates >= config.parallel_threshold;
    let morsel = if parallel {
        (root_candidates / (threads * 8)).clamp(1, 1024)
    } else {
        0
    };
    Ok(Plan {
        steps,
        root_candidates,
        threads,
        parallel_threshold: config.parallel_threshold,
        parallel,
        morsel,
        negation: pattern.has_negation(),
        strategy: choice.strategy,
        cyclic: choice.cyclic,
        est_rows: choice.est_rows,
        est_cost: choice.est_cost,
        actual_matchings,
    })
}

/// True if the pattern matches at least once (early-exit variant).
pub fn matches_once(pattern: &Pattern, instance: &Instance) -> Result<bool> {
    // Negation requires full enumeration of the positive part anyway
    // only per-matching; reuse find_matchings for simplicity there.
    if pattern.has_negation() {
        return Ok(!find_matchings(pattern, instance)?.is_empty());
    }
    if pattern.has_method_head() {
        return Err(GoodError::InvalidPattern(
            "patterns with method-head nodes must be rewritten before matching".into(),
        ));
    }
    pattern.validate(instance.scheme())?;
    let nodes: Vec<NodeId> = pattern.graph().node_ids().collect();
    let search = Search {
        pattern,
        instance,
        nodes,
    };
    let mut found = false;
    let mut frame = search.frame();
    let mut steps = 0u64;
    search.solve(&mut frame, &mut steps, &mut |_| {
        found = true;
        false
    });
    Ok(found)
}

/// Ablation variant of [`find_matchings`]: backtracking with the same
/// candidate derivation but a *static* node order (pattern-node id
/// order) instead of dynamic most-constrained-node selection. Exists to
/// quantify, in benchmark E1, how much the selection heuristic buys.
pub fn find_matchings_static_order(
    pattern: &Pattern,
    instance: &Instance,
) -> Result<Vec<Matching>> {
    if pattern.has_method_head() {
        return Err(GoodError::InvalidPattern(
            "patterns with method-head nodes must be rewritten before matching".into(),
        ));
    }
    pattern.validate(instance.scheme())?;
    let positive = pattern.positive_part();
    let mut order: Vec<NodeId> = positive.graph().node_ids().collect();
    order.sort();
    let search = Search {
        pattern: &positive,
        instance,
        nodes: order.clone(),
    };

    fn solve_static(
        search: &Search<'_>,
        order: &[NodeId],
        depth: usize,
        frame: &mut Frame,
        results: &mut Vec<Matching>,
    ) {
        if depth == order.len() {
            results.push(search.to_matching(frame));
            return;
        }
        let next = order[depth];
        for candidate in search.candidates(next, frame) {
            frame.bind(next, candidate);
            if search.edges_consistent(next, frame) {
                solve_static(search, order, depth + 1, frame, results);
            }
            frame.unbind(next);
        }
    }

    let mut results = Vec::new();
    solve_static(&search, &order, 0, &mut search.frame(), &mut results);
    results.sort();
    results.dedup();
    if pattern.has_negation() {
        results.retain(|m| !extends_to_full(pattern, instance, m));
    }
    Ok(results)
}

/// Naive enumeration: per-node candidate lists, full cross product,
/// post-hoc edge check. Ground truth for differential tests and the
/// baseline of benchmark E1. Negation is evaluated the same way as the
/// planned engine.
pub fn find_matchings_naive(pattern: &Pattern, instance: &Instance) -> Result<Vec<Matching>> {
    if pattern.has_method_head() {
        return Err(GoodError::InvalidPattern(
            "patterns with method-head nodes must be rewritten before matching".into(),
        ));
    }
    pattern.validate(instance.scheme())?;
    let positive = pattern.positive_part();
    let nodes: Vec<NodeId> = positive.graph().node_ids().collect();

    let mut candidate_lists: Vec<Vec<NodeId>> = Vec::with_capacity(nodes.len());
    for &node in &nodes {
        let data = positive.graph().node(node).expect("live");
        let PatternNodeKind::Class(label) = &data.kind else {
            return Err(GoodError::InvalidPattern(
                "method head in positive part".into(),
            ));
        };
        let cands: Vec<NodeId> = instance
            .nodes_with_label(label)
            .filter(|c| node_compatible(instance, data, *c))
            .collect();
        candidate_lists.push(cands);
    }

    let mut results = Vec::new();
    let mut assignment: Vec<usize> = vec![0; nodes.len()];
    'outer: loop {
        // Build the binding for the current assignment.
        if candidate_lists.iter().all(|c| !c.is_empty()) || nodes.is_empty() {
            let binding: BTreeMap<NodeId, NodeId> = nodes
                .iter()
                .enumerate()
                .map(|(k, &n)| (n, candidate_lists[k][assignment[k]]))
                .collect();
            let ok = positive.graph().edges().all(|edge| {
                edge.payload.negated
                    || instance.has_edge(
                        binding[&edge.src],
                        &edge.payload.label,
                        binding[&edge.dst],
                    )
            });
            if ok {
                results.push(Matching(binding));
            }
        } else {
            break;
        }
        // Advance the odometer.
        if nodes.is_empty() {
            break;
        }
        let mut k = nodes.len();
        loop {
            if k == 0 {
                break 'outer;
            }
            k -= 1;
            assignment[k] += 1;
            if assignment[k] < candidate_lists[k].len() {
                break;
            }
            assignment[k] = 0;
        }
    }
    results.sort();
    results.dedup();
    if pattern.has_negation() {
        results.retain(|m| !extends_to_full(pattern, instance, m));
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::ValuePredicate;
    use crate::scheme::{Scheme, SchemeBuilder};
    use crate::value::{Value, ValueType};

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .printable("Date", ValueType::Date)
            .functional("Info", "name", "String")
            .functional("Info", "created", "Date")
            .functional("Info", "modified", "Date")
            .multivalued("Info", "links-to", "Info")
            .build()
    }

    /// A small slice of the paper's instance: Rock links to The Doors
    /// and Pinkfloyd; Jazz links to nothing.
    fn small_instance() -> (Instance, [NodeId; 4]) {
        let mut db = Instance::new(scheme());
        let rock = db.add_object("Info").unwrap();
        let doors = db.add_object("Info").unwrap();
        let floyd = db.add_object("Info").unwrap();
        let jazz = db.add_object("Info").unwrap();
        let names = [
            ("Rock", rock),
            ("The Doors", doors),
            ("Pinkfloyd", floyd),
            ("Jazz", jazz),
        ];
        for (name, node) in names {
            let s = db.add_printable("String", name).unwrap();
            db.add_edge(node, "name", s).unwrap();
        }
        let d14 = db.add_printable("Date", Value::date(1990, 1, 14)).unwrap();
        let d12 = db.add_printable("Date", Value::date(1990, 1, 12)).unwrap();
        db.add_edge(rock, "created", d14).unwrap();
        db.add_edge(doors, "created", d12).unwrap();
        db.add_edge(floyd, "created", d14).unwrap();
        db.add_edge(jazz, "created", d12).unwrap();
        db.add_edge(rock, "links-to", doors).unwrap();
        db.add_edge(rock, "links-to", floyd).unwrap();
        (db, [rock, doors, floyd, jazz])
    }

    /// The paper's Figure 4 pattern: Info named Rock created Jan 14 1990
    /// linking to another Info.
    fn figure4() -> (Pattern, NodeId, NodeId) {
        let mut p = Pattern::new();
        let info = p.node("Info");
        let date = p.printable("Date", Value::date(1990, 1, 14));
        let name = p.printable("String", "Rock");
        let other = p.node("Info");
        p.edge(info, "created", date);
        p.edge(info, "name", name);
        p.edge(info, "links-to", other);
        (p, info, other)
    }

    #[test]
    fn figure4_has_exactly_two_matchings() {
        let (db, [rock, doors, floyd, _]) = small_instance();
        let (pattern, info, other) = figure4();
        let matchings = find_matchings(&pattern, &db).unwrap();
        assert_eq!(matchings.len(), 2);
        for m in &matchings {
            assert_eq!(m.image(info), rock);
        }
        let others: Vec<NodeId> = matchings.iter().map(|m| m.image(other)).collect();
        assert!(others.contains(&doors) && others.contains(&floyd));
    }

    #[test]
    fn planned_equals_naive_equals_static() {
        let (db, _) = small_instance();
        let (pattern, _, _) = figure4();
        let a = find_matchings(&pattern, &db).unwrap();
        let b = find_matchings_naive(&pattern, &db).unwrap();
        let c = find_matchings_static_order(&pattern, &db).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn static_order_handles_negation() {
        let (db, [rock, ..]) = small_instance();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let other = p.negated_node("Info");
        p.edge(info, "links-to", other);
        let planned = find_matchings(&p, &db).unwrap();
        let fixed = find_matchings_static_order(&p, &db).unwrap();
        assert_eq!(planned, fixed);
        assert!(fixed.iter().all(|m| m.image(info) != rock));
    }

    #[test]
    fn empty_pattern_has_one_empty_matching() {
        let (db, _) = small_instance();
        let matchings = find_matchings(&Pattern::new(), &db).unwrap();
        assert_eq!(matchings.len(), 1);
        assert!(matchings[0].is_empty());
        let naive = find_matchings_naive(&Pattern::new(), &db).unwrap();
        assert_eq!(naive, matchings);
    }

    #[test]
    fn matchings_are_homomorphisms_not_injections() {
        // Pattern: Info -links-to-> Info, both unconstrained. A self-link
        // would match with both nodes equal. Build one.
        let mut db = Instance::new(scheme());
        let a = db.add_object("Info").unwrap();
        db.add_edge(a, "links-to", a).unwrap();
        let mut p = Pattern::new();
        let x = p.node("Info");
        let y = p.node("Info");
        p.edge(x, "links-to", y);
        let matchings = find_matchings(&p, &db).unwrap();
        assert_eq!(matchings.len(), 1);
        assert_eq!(matchings[0].image(x), matchings[0].image(y));
        assert_eq!(find_matchings_naive(&p, &db).unwrap(), matchings);
    }

    #[test]
    fn unmatched_pattern_yields_nothing() {
        let (db, _) = small_instance();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.printable("String", "Mozart");
        p.edge(info, "name", name);
        assert!(find_matchings(&p, &db).unwrap().is_empty());
        assert!(!matches_once(&p, &db).unwrap());
    }

    #[test]
    fn disconnected_pattern_takes_cross_product() {
        let (db, _) = small_instance();
        let mut p = Pattern::new();
        p.node("Info");
        p.node("Info");
        let matchings = find_matchings(&p, &db).unwrap();
        assert_eq!(matchings.len(), 16); // 4 × 4
        assert_eq!(find_matchings_naive(&p, &db).unwrap(), matchings);
    }

    #[test]
    fn negated_edge_filters_matchings() {
        // Figure 26 in miniature: infos whose created date has no
        // modified edge from the same info.
        let (mut db, [rock, ..]) = small_instance();
        let d14 = db
            .find_printable(&"Date".into(), &Value::date(1990, 1, 14))
            .unwrap();
        db.add_edge(rock, "modified", d14).unwrap();

        let mut p = Pattern::new();
        let info = p.node("Info");
        let date = p.node("Date");
        p.edge(info, "created", date);
        p.negated_edge(info, "modified", date);

        let matchings = find_matchings(&p, &db).unwrap();
        // rock's created==modified date, so rock is excluded; doors,
        // floyd, jazz survive.
        assert_eq!(matchings.len(), 3);
        assert!(matchings.iter().all(|m| m.image(info) != rock));
        assert_eq!(find_matchings_naive(&p, &db).unwrap(), matchings);
    }

    #[test]
    fn negated_node_filters_matchings() {
        // Infos that do not link to anything.
        let (db, [rock, doors, floyd, jazz]) = small_instance();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let other = p.negated_node("Info");
        p.edge(info, "links-to", other);
        let matchings = find_matchings(&p, &db).unwrap();
        let images: Vec<NodeId> = matchings.iter().map(|m| m.image(info)).collect();
        assert!(!images.contains(&rock));
        assert!(images.contains(&doors) && images.contains(&floyd) && images.contains(&jazz));
        assert_eq!(find_matchings_naive(&p, &db).unwrap(), matchings);
    }

    #[test]
    fn predicate_ranges() {
        let (db, [rock, doors, floyd, jazz]) = small_instance();
        // Infos created in the window Jan 13–31, 1990.
        let mut p = Pattern::new();
        let info = p.node("Info");
        let date = p.predicate_node(
            "Date",
            ValuePredicate::Between(Value::date(1990, 1, 13), Value::date(1990, 1, 31)),
        );
        p.edge(info, "created", date);
        let matchings = find_matchings(&p, &db).unwrap();
        let images: Vec<NodeId> = matchings.iter().map(|m| m.image(info)).collect();
        assert_eq!(images.len(), 2);
        assert!(images.contains(&rock) && images.contains(&floyd));
        assert!(!images.contains(&doors) && !images.contains(&jazz));
        assert_eq!(find_matchings_naive(&p, &db).unwrap(), matchings);
    }

    #[test]
    fn matchings_are_deterministic_and_sorted() {
        let (db, _) = small_instance();
        let mut p = Pattern::new();
        p.node("Info");
        let a = find_matchings(&p, &db).unwrap();
        let b = find_matchings(&p, &db).unwrap();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(a, sorted);
    }

    #[test]
    fn parallel_engine_is_deterministic() {
        // Force the morsel path (threshold 0) at several worker counts
        // and demand bit-for-bit equality with the sequential engine,
        // on a pattern with multiple matchings per root candidate.
        let (db, _) = small_instance();
        let mut p = Pattern::new();
        let x = p.node("Info");
        let y = p.node("Info");
        p.edge(x, "links-to", y);
        let sequential = find_matchings_with(&p, &db, MatchConfig::sequential()).unwrap();
        for threads in [2, 4, 8] {
            let parallel = find_matchings_with(
                &p,
                &db,
                MatchConfig {
                    threads,
                    parallel_threshold: 0,
                },
            )
            .unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_engine_handles_negation_and_empty_pattern() {
        let (db, _) = small_instance();
        let config = MatchConfig {
            threads: 4,
            parallel_threshold: 0,
        };
        let empty = find_matchings_with(&Pattern::new(), &db, config).unwrap();
        assert_eq!(empty.len(), 1);
        let mut p = Pattern::new();
        let info = p.node("Info");
        let other = p.negated_node("Info");
        p.edge(info, "links-to", other);
        let sequential = find_matchings_with(&p, &db, MatchConfig::sequential()).unwrap();
        let parallel = find_matchings_with(&p, &db, config).unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn default_thread_override_roundtrips() {
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        set_default_threads(0);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn method_head_patterns_rejected() {
        let (db, _) = small_instance();
        let mut p = Pattern::new();
        p.method_head("M");
        assert!(matches!(
            find_matchings(&p, &db),
            Err(GoodError::InvalidPattern(_))
        ));
    }

    #[test]
    fn invalid_pattern_is_an_error() {
        let (db, _) = small_instance();
        let mut p = Pattern::new();
        p.node("Nope");
        assert!(find_matchings(&p, &db).is_err());
    }

    #[test]
    fn matches_once_early_exit() {
        let (db, _) = small_instance();
        let mut p = Pattern::new();
        p.node("Info");
        assert!(matches_once(&p, &db).unwrap());
    }
}
