//! Relational completeness in action (Section 4.3): model an employee
//! database, run an algebra query both natively and as a compiled GOOD
//! program, and check they agree.
//!
//! Run with `cargo run --example relational`.

use good::model::error::Result;
use good::model::program::Env;
use good::relational::algebra::Predicate;
use good::relational::compile::Compiler;
use good::relational::encode::{decode, encode};
use good::relational::relation::{RelDatabase, RelSchema, Relation};
use good::relational::RelExpr;
use good_core::value::{Value, ValueType};

fn main() -> Result<()> {
    // ---- a small company database --------------------------------------
    let mut emp = Relation::new(RelSchema::new([
        ("name", ValueType::Str),
        ("dept", ValueType::Str),
        ("salary", ValueType::Int),
    ]));
    emp.extend([
        vec![Value::str("ann"), Value::str("db"), Value::int(95)],
        vec![Value::str("bob"), Value::str("os"), Value::int(80)],
        vec![Value::str("cal"), Value::str("db"), Value::int(85)],
        vec![Value::str("dee"), Value::str("pl"), Value::int(90)],
    ])
    .unwrap();
    let mut dept = Relation::new(RelSchema::new([
        ("dept", ValueType::Str),
        ("head", ValueType::Str),
    ]));
    dept.extend([
        vec![Value::str("db"), Value::str("ann")],
        vec![Value::str("os"), Value::str("bob")],
        vec![Value::str("pl"), Value::str("dee")],
    ])
    .unwrap();
    let mut db = RelDatabase::new();
    db.add("emp", emp);
    db.add("dept", dept);

    // ---- the query: non-head db employees --------------------------------
    let query = RelExpr::base("emp")
        .join(RelExpr::base("dept"))
        .select(Predicate::AttrEqConst("dept".into(), Value::str("db")))
        .project(["name", "head"])
        .difference(
            RelExpr::base("dept")
                .project(["head"])
                .rename([("head", "name")])
                .product(RelExpr::base("dept").project(["head"])),
        );

    // Native evaluation.
    let native = query.eval(&db)?;
    println!("--- native relational algebra ---\n{native}");

    // GOOD evaluation: encode → compile → run → decode.
    let mut instance = encode(&db)?;
    println!(
        "encoded as a GOOD instance: {} nodes, {} edges",
        instance.node_count(),
        instance.edge_count()
    );
    let compiled = Compiler::new().compile(&query, &db)?;
    println!(
        "compiled to a GOOD program of {} operations:\n{}",
        compiled.program.len(),
        compiled.program
    );
    compiled.program.apply(&mut instance, &mut Env::new())?;
    let simulated = decode(&instance, &compiled.class, &compiled.schema)?;
    println!("--- via GOOD simulation ---\n{simulated}");

    assert_eq!(native, simulated, "Codd completeness holds");
    println!("native and GOOD agree — relational completeness demonstrated");
    Ok(())
}
