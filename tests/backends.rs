//! Differential testing of the four pattern-evaluation routes
//! (DESIGN.md E7's correctness side):
//!
//! 1. the native backtracking matcher (`good_core::matching`),
//! 2. the naive cross-product matcher (ground truth),
//! 3. the Section 5 relational backend (`good_relational::backend`),
//! 4. the Tarski binary-relation backend (`good_tarski`).
//!
//! All four must produce identical matchings on random instances and
//! random positive patterns; the first two must also agree on patterns
//! with crossed parts and predicates.

use good::model::gen::{random_instance, GenConfig};
use good::model::instance::Instance;
use good::model::matching::{find_matchings, find_matchings_naive};
use good::model::pattern::{Pattern, ValuePredicate};
use good::model::value::Value;
use good::relational::backend::RelBackend;
use good::tarski::TarskiBackend;
use good_graph::NodeId;
use proptest::prelude::*;

/// A random positive pattern over the bench scheme: a small core of
/// Info nodes with random links-to edges plus optional date/name
/// constraints.
#[derive(Debug, Clone)]
struct PatternSpec {
    nodes: usize,
    edges: Vec<(usize, usize)>,
    with_date: bool,
    named: Option<u8>,
}

fn arb_pattern_spec() -> impl Strategy<Value = PatternSpec> {
    (
        1usize..4,
        proptest::collection::vec((0usize..4, 0usize..4), 0..4),
        any::<bool>(),
        proptest::option::of(0u8..30),
    )
        .prop_map(|(nodes, raw_edges, with_date, named)| {
            let edges = raw_edges
                .into_iter()
                .map(|(a, b)| (a % nodes, b % nodes))
                .collect();
            PatternSpec {
                nodes,
                edges,
                with_date,
                named,
            }
        })
}

fn build_pattern(spec: &PatternSpec) -> (Pattern, Vec<NodeId>) {
    let mut pattern = Pattern::new();
    let nodes: Vec<NodeId> = (0..spec.nodes).map(|_| pattern.node("Info")).collect();
    for (a, b) in &spec.edges {
        // Avoid duplicating the same multivalued pattern edge (a
        // pattern is an instance: edge sets are sets).
        pattern.edge(nodes[*a], "links-to", nodes[*b]);
    }
    if spec.with_date {
        let date = pattern.node("Date");
        pattern.edge(nodes[0], "created", date);
    }
    if let Some(name_index) = spec.named {
        let name = pattern.printable("String", format!("info-{name_index}"));
        pattern.edge(nodes[0], "name", name);
    }
    (pattern, nodes)
}

fn all_backends_agree(pattern: &Pattern, db: &Instance) {
    let native = find_matchings(pattern, db).unwrap();
    let naive = find_matchings_naive(pattern, db).unwrap();
    assert_eq!(native, naive, "native vs naive");
    let relational = RelBackend::from_instance(db)
        .match_pattern(pattern)
        .unwrap();
    assert_eq!(native, relational, "native vs relational backend");
    let tarski = TarskiBackend::from_instance(db)
        .match_pattern(pattern)
        .unwrap();
    assert_eq!(native, tarski, "native vs tarski backend");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn positive_patterns_agree_across_all_backends(
        seed in 0u64..1000,
        spec in arb_pattern_spec(),
    ) {
        let db = random_instance(&GenConfig {
            infos: 20,
            avg_links: 2.0,
            distinct_dates: 3,
            seed,
        });
        let (pattern, _) = build_pattern(&spec);
        all_backends_agree(&pattern, &db);
    }

    #[test]
    fn negation_agrees_between_planned_and_naive(
        seed in 0u64..1000,
        spec in arb_pattern_spec(),
    ) {
        let db = random_instance(&GenConfig {
            infos: 12,
            avg_links: 1.5,
            distinct_dates: 3,
            seed,
        });
        let (mut pattern, nodes) = build_pattern(&spec);
        let sink = pattern.negated_node("Info");
        pattern.negated_edge(nodes[0], "links-to", sink);
        let planned = find_matchings(&pattern, &db).unwrap();
        let naive = find_matchings_naive(&pattern, &db).unwrap();
        prop_assert_eq!(planned, naive);
    }

    #[test]
    fn predicates_agree_between_planned_and_naive(seed in 0u64..1000) {
        let db = random_instance(&GenConfig {
            infos: 25,
            avg_links: 1.0,
            distinct_dates: 8,
            seed,
        });
        let mut pattern = Pattern::new();
        let info = pattern.node("Info");
        let date = pattern.predicate_node(
            "Date",
            ValuePredicate::Between(Value::date(1990, 1, 2), Value::date(1990, 1, 5)),
        );
        pattern.edge(info, "created", date);
        let planned = find_matchings(&pattern, &db).unwrap();
        let naive = find_matchings_naive(&pattern, &db).unwrap();
        prop_assert_eq!(planned, naive);
    }
}

#[test]
fn hypermedia_patterns_agree_across_backends() {
    let (db, _) = good::hypermedia::build_instance();
    // Figure 4 (positive): all four routes.
    let (pattern, _) = good::hypermedia::figures::fig4_pattern();
    all_backends_agree(&pattern, &db);
    // A deeper chain.
    let mut pattern = Pattern::new();
    let a = pattern.node("Info");
    let b = pattern.node("Info");
    let c = pattern.node("Info");
    pattern.edge(a, "links-to", b);
    pattern.edge(b, "links-to", c);
    all_backends_agree(&pattern, &db);
}

#[test]
fn macro_negation_agrees_with_matcher_negation_on_random_instances() {
    use good::model::macros::negation::expand_negation;
    use good::model::program::Env;
    for seed in 0..6 {
        let mut db = random_instance(&GenConfig {
            infos: 15,
            avg_links: 1.5,
            distinct_dates: 3,
            seed,
        });
        let mut pattern = Pattern::new();
        let info = pattern.node("Info");
        let other = pattern.negated_node("Info");
        pattern.negated_edge(info, "links-to", other);
        let direct = find_matchings(&pattern, &db).unwrap();
        let expansion = expand_negation(&pattern, "Sink").unwrap();
        let via_macro = expansion.evaluate(&mut db, &mut Env::new()).unwrap();
        assert_eq!(via_macro, direct, "seed {seed}");
    }
}
