//! The recursion macro (Section 4.1, Figures 28–29).
//!
//! A *starred* edge addition is "repeated as long as new edges can be
//! added". [`RecursiveEdgeAddition`] provides that fixpoint semantics
//! directly, and [`transitive_closure_method`] implements the paper's
//! general simulation: a recursive method whose body performs the
//! underlying non-starred operation and then calls itself on a pattern
//! "augmented with a crossed part that corresponds to the starred part:
//! this expresses the stopping condition for the recursion" (Figure 29).
//!
//! The canonical instance is transitive closure of a multivalued
//! property (`links-to` ⇒ `rec-links-to`), which the paper proves is
//! "impossible using only the basic five operations".

use crate::error::Result;
use crate::instance::Instance;
use crate::label::{Label, RECEIVER_EDGE};
use crate::method::{Method, MethodCall, MethodSpec};
use crate::ops::{EdgeAddition, OpReport};
use crate::pattern::Pattern;
use crate::program::{Env, Operation};
use crate::scheme::Scheme;
use serde::{Deserialize, Serialize};

/// A starred edge addition: apply the underlying [`EdgeAddition`] until
/// it adds no new edges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecursiveEdgeAddition {
    /// The underlying (non-starred) edge addition.
    pub base: EdgeAddition,
}

impl RecursiveEdgeAddition {
    /// Construct from the underlying edge addition.
    pub fn new(base: EdgeAddition) -> Self {
        RecursiveEdgeAddition { base }
    }

    /// Iterate to fixpoint. Each round burns one unit of fuel, so a
    /// (theoretically impossible for EA, but cheap to guard) runaway
    /// loop is caught by the environment.
    pub fn apply(&self, db: &mut Instance, env: &mut Env) -> Result<OpReport> {
        let mut total = OpReport::default();
        loop {
            env.burn_fuel()?;
            let report = self.base.apply(db)?;
            let progressed = report.edges_added > 0;
            total.absorb(&report);
            if !progressed {
                return Ok(total);
            }
        }
    }
}

/// Build the paper's Figure 29 construction for the transitive closure
/// of `base_edge` over `node_label` into `closure_edge`: a recursive
/// method `RLT` plus the program that seeds and invokes it.
///
/// Returns `(method, seed, call)`:
/// * `seed` is the Figure 28 first operation — the plain edge addition
///   deriving `closure_edge` for directly `base_edge`-connected pairs —
///   expressed as a method call so the whole computation is one
///   registered-method affair; concretely it is the initial `MC` whose
///   pattern is `X -base→ Y`, calling the method with receiver `X` and
///   argument `Y`.
/// * `method` must be registered in the [`Env`] before running `call`.
pub fn transitive_closure_method(
    node_label: impl Into<Label>,
    base_edge: impl Into<Label>,
    closure_edge: impl Into<Label>,
) -> (Method, MethodCall) {
    let node_label = node_label.into();
    let base_edge = base_edge.into();
    let closure_edge = closure_edge.into();
    let method_name = format!("TC-{closure_edge}");
    let arg = Label::new("arg");

    let spec = MethodSpec::new(
        method_name.clone(),
        node_label.clone(),
        [(arg.clone(), node_label.clone())],
    );

    // Body op 1: the underlying edge addition — add
    // receiver -closure→ argument.
    let mut p1 = Pattern::new();
    let head1 = p1.method_head(&method_name);
    let recv1 = p1.node(node_label.clone());
    let arg1 = p1.node(node_label.clone());
    p1.edge(head1, Label::system(RECEIVER_EDGE), recv1);
    p1.edge(head1, arg.clone(), arg1);
    let ea = EdgeAddition::multivalued(p1, recv1, closure_edge.clone(), arg1);

    // Body op 2: the recursive call — for each `next` with
    // argument -base→ next and NOT receiver -closure→ next (the crossed
    // stopping condition), call self with (receiver, next).
    let mut p2 = Pattern::new();
    let head2 = p2.method_head(&method_name);
    let recv2 = p2.node(node_label.clone());
    let arg2 = p2.node(node_label.clone());
    let next2 = p2.node(node_label.clone());
    p2.edge(head2, Label::system(RECEIVER_EDGE), recv2);
    p2.edge(head2, arg.clone(), arg2);
    p2.edge(arg2, base_edge.clone(), next2);
    p2.negated_edge(recv2, closure_edge.clone(), next2);
    let recursive = MethodCall::new(method_name.clone(), p2, recv2, [(arg.clone(), next2)]);

    // The method's interface declares the closure edge so it survives
    // the final restriction.
    let mut interface = Scheme::new();
    interface
        .add_object_label(node_label.clone())
        .expect("fresh interface scheme");
    interface
        .add_multivalued(node_label.clone(), closure_edge.clone(), node_label.clone())
        .expect("fresh interface scheme");

    let method = Method::new(
        spec,
        vec![Operation::EdgeAdd(ea), Operation::Call(recursive)],
        interface,
    );

    // The initial call (bottom of Figure 29): for every directly
    // connected pair.
    let mut p = Pattern::new();
    let src = p.node(node_label.clone());
    let dst = p.node(node_label);
    p.edge(src, base_edge, dst);
    let call = MethodCall::new(method_name, p, src, [(arg, dst)]);

    (method, call)
}

/// Convenience: the Figure 28 starred-edge-addition formulation of
/// transitive closure, as a [`RecursiveEdgeAddition`]-based program.
/// Returns `(seed, star)` — apply `seed` once, then `star` to fixpoint.
pub fn transitive_closure_star(
    node_label: impl Into<Label>,
    base_edge: impl Into<Label>,
    closure_edge: impl Into<Label>,
) -> (EdgeAddition, RecursiveEdgeAddition) {
    let node_label = node_label.into();
    let base_edge = base_edge.into();
    let closure_edge = closure_edge.into();

    // Seed: X -base→ Y ⇒ X -closure→ Y.
    let mut p = Pattern::new();
    let x = p.node(node_label.clone());
    let y = p.node(node_label.clone());
    p.edge(x, base_edge.clone(), y);
    let seed = EdgeAddition::multivalued(p, x, closure_edge.clone(), y);

    // Star: X -closure→ Y -base→ Z ⇒ X -closure→ Z, repeated.
    let mut p = Pattern::new();
    let x = p.node(node_label.clone());
    let y = p.node(node_label.clone());
    let z = p.node(node_label);
    p.edge(x, closure_edge.clone(), y);
    p.edge(y, base_edge, z);
    let star = RecursiveEdgeAddition::new(EdgeAddition::multivalued(p, x, closure_edge, z));

    (seed, star)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::execute_call;
    use crate::scheme::{Scheme, SchemeBuilder};
    use good_graph::NodeId;
    use std::collections::BTreeSet;

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .multivalued("Info", "links-to", "Info")
            .multivalued("Info", "rec-links-to", "Info")
            .build()
    }

    fn chain(n: usize) -> (Instance, Vec<NodeId>) {
        let mut db = Instance::new(scheme());
        let nodes: Vec<NodeId> = (0..n).map(|_| db.add_object("Info").unwrap()).collect();
        for w in nodes.windows(2) {
            db.add_edge(w[0], "links-to", w[1]).unwrap();
        }
        (db, nodes)
    }

    fn closure_pairs(db: &Instance) -> BTreeSet<(NodeId, NodeId)> {
        let label = Label::new("rec-links-to");
        db.graph()
            .edges()
            .filter(|e| e.payload.label == label)
            .map(|e| (e.src, e.dst))
            .collect()
    }

    fn expected_closure(db: &Instance) -> BTreeSet<(NodeId, NodeId)> {
        let links = Label::new("links-to");
        let tc = good_graph::algo::transitive_closure_by(db.graph(), |e| e.label == links);
        tc.into_iter()
            .flat_map(|(src, dsts)| dsts.into_iter().map(move |dst| (src, dst)))
            .collect()
    }

    #[test]
    fn starred_edge_addition_computes_closure_on_chain() {
        let (mut db, nodes) = chain(5);
        let (seed, star) = transitive_closure_star("Info", "links-to", "rec-links-to");
        let mut env = Env::new();
        seed.apply(&mut db).unwrap();
        star.apply(&mut db, &mut env).unwrap();
        assert_eq!(closure_pairs(&db), expected_closure(&db));
        assert_eq!(closure_pairs(&db).len(), 10); // C(5,2) ordered pairs on a chain
        assert!(closure_pairs(&db).contains(&(nodes[0], nodes[4])));
        db.validate().unwrap();
    }

    #[test]
    fn starred_edge_addition_handles_cycles() {
        let (mut db, nodes) = chain(3);
        db.add_edge(nodes[2], "links-to", nodes[0]).unwrap();
        let (seed, star) = transitive_closure_star("Info", "links-to", "rec-links-to");
        let mut env = Env::new();
        seed.apply(&mut db).unwrap();
        star.apply(&mut db, &mut env).unwrap();
        // On a cycle everything reaches everything, including itself.
        assert_eq!(closure_pairs(&db).len(), 9);
        assert_eq!(closure_pairs(&db), expected_closure(&db));
    }

    #[test]
    fn recursive_method_computes_closure() {
        let (mut db, _) = chain(5);
        let (method, call) = transitive_closure_method("Info", "links-to", "rec-links-to");
        let mut env = Env::new();
        env.register(method);
        execute_call(&call, &mut db, &mut env).unwrap();
        assert_eq!(closure_pairs(&db), expected_closure(&db));
        // No frame residue.
        assert!(db.graph().nodes().all(|n| !n.payload.label.is_system()));
        db.validate().unwrap();
    }

    #[test]
    fn recursive_method_handles_cycles_and_diamonds() {
        let (mut db, nodes) = chain(4);
        db.add_edge(nodes[3], "links-to", nodes[1]).unwrap(); // cycle 1-2-3
        db.add_edge(nodes[0], "links-to", nodes[2]).unwrap(); // shortcut
        let (method, call) = transitive_closure_method("Info", "links-to", "rec-links-to");
        let mut env = Env::new();
        env.register(method);
        execute_call(&call, &mut db, &mut env).unwrap();
        assert_eq!(closure_pairs(&db), expected_closure(&db));
    }

    #[test]
    fn method_and_star_agree() {
        let (mut db_a, nodes) = chain(6);
        db_a.add_edge(nodes[5], "links-to", nodes[2]).unwrap();
        let mut db_b = db_a.clone();

        let (seed, star) = transitive_closure_star("Info", "links-to", "rec-links-to");
        let mut env = Env::new();
        seed.apply(&mut db_a).unwrap();
        star.apply(&mut db_a, &mut env).unwrap();

        let (method, call) = transitive_closure_method("Info", "links-to", "rec-links-to");
        env.register(method);
        execute_call(&call, &mut db_b, &mut env).unwrap();

        assert_eq!(closure_pairs(&db_a), closure_pairs(&db_b));
    }

    #[test]
    fn empty_base_relation_terminates_immediately() {
        let mut db = Instance::new(scheme());
        db.add_object("Info").unwrap();
        let (method, call) = transitive_closure_method("Info", "links-to", "rec-links-to");
        let mut env = Env::new();
        env.register(method);
        execute_call(&call, &mut db, &mut env).unwrap();
        assert!(closure_pairs(&db).is_empty());
    }

    #[test]
    fn fuel_bounds_runaway_fixpoints() {
        let (mut db, _) = chain(50);
        let (seed, star) = transitive_closure_star("Info", "links-to", "rec-links-to");
        seed.apply(&mut db).unwrap();
        let mut env = Env::with_fuel(3);
        let err = star.apply(&mut db, &mut env).unwrap_err();
        assert!(matches!(err, crate::error::GoodError::OutOfFuel { .. }));
    }
}
