//! Persistence: schemes and instances round-trip through JSON with all
//! indexes rebuilt and invariants re-validated on load, and corrupted
//! payloads are rejected rather than admitted.

use good::hypermedia::{build_instance, build_scheme};
use good::model::gen::{random_instance, GenConfig};
use good::model::instance::Instance;
use good::model::scheme::Scheme;
use good::model::value::Value;

#[test]
fn scheme_roundtrips() {
    let scheme = build_scheme();
    let json = serde_json::to_string_pretty(&scheme).unwrap();
    let back: Scheme = serde_json::from_str(&json).unwrap();
    assert_eq!(back, scheme);
    back.validate().unwrap();
}

#[test]
fn hypermedia_instance_roundtrips_with_working_indexes() {
    let (db, h) = build_instance();
    let json = serde_json::to_string(&db).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    assert!(back.isomorphic_to(&db));
    back.validate().unwrap();
    // Node ids survive (generational arena is serialized), so handles
    // keep working.
    assert_eq!(back.node_label(h.pinkfloyd), db.node_label(h.pinkfloyd));
    // The printable index was rebuilt.
    assert!(back
        .find_printable(&"Date".into(), &Value::date(1990, 1, 12))
        .is_some());
}

#[test]
fn random_instances_roundtrip() {
    for seed in 0..5 {
        let db = random_instance(&GenConfig {
            infos: 30,
            avg_links: 2.0,
            distinct_dates: 4,
            seed,
        });
        let json = serde_json::to_string(&db).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert!(back.isomorphic_to(&db));
        back.validate().unwrap();
    }
}

#[test]
fn corrupted_payloads_are_rejected_on_load() {
    let (db, _) = build_instance();
    let json = serde_json::to_string(&db).unwrap();
    // Forge a duplicate printable: duplicate every "Jan 12" date value
    // by editing the serialized print of the Jan 14 node.
    let forged = json.replace(
        "{\"year\":1990,\"month\":1,\"day\":14}",
        "{\"year\":1990,\"month\":1,\"day\":12}",
    );
    assert_ne!(forged, json);
    let result: Result<Instance, _> = serde_json::from_str(&forged);
    assert!(
        result.is_err(),
        "duplicate printable values must be rejected"
    );
}

#[test]
fn pattern_and_operation_roundtrips() {
    let (pattern, _) = good::hypermedia::figures::fig4_pattern();
    let json = serde_json::to_string(&pattern).unwrap();
    let back: good::model::pattern::Pattern = serde_json::from_str(&json).unwrap();
    assert_eq!(back.node_count(), pattern.node_count());

    let na = good::hypermedia::figures::fig6_node_addition();
    let json = serde_json::to_string(&na).unwrap();
    let back: good::model::ops::NodeAddition = serde_json::from_str(&json).unwrap();
    // Apply both to fresh copies; results must be isomorphic.
    let (mut a, _) = build_instance();
    let (mut b, _) = build_instance();
    na.apply(&mut a).unwrap();
    back.apply(&mut b).unwrap();
    assert!(a.isomorphic_to(&b));
}

#[test]
fn methods_roundtrip() {
    let method = good::hypermedia::figures::fig20_update_method();
    let json = serde_json::to_string(&method).unwrap();
    let back: good::model::method::Method = serde_json::from_str(&json).unwrap();
    assert_eq!(back.spec, method.spec);
    assert_eq!(back.body.len(), method.body.len());
}
