//! Snapshot publication: epoch-tagged, atomically rotated immutable
//! [`Instance`] handles, with a bounded MVCC version ring.
//!
//! GOOD's operational semantics treat pattern matching as a read-only
//! function of a *fixed* instance (Section 3; likewise the
//! operational-semantics and evaluation-complexity literature on graph
//! query languages). That makes snapshot isolation the natural
//! concurrency model: writers produce a fresh instance value, publish
//! it with one pointer rotation, and every reader that grabbed the
//! previous pointer keeps computing over a frozen, immutable graph —
//! no torn reads, no locks on the match path.
//!
//! Because [`Instance`] is persistent (structurally shared `PVec`/
//! `PMap` internals — see `good_graph::pvec` and `crate::persist`),
//! retaining a published version costs a few `Arc` bumps plus the
//! O(delta · log n) trie nodes that version does *not* share with its
//! neighbours. [`SnapshotCell`] exploits that: every publish is pushed
//! onto a version ring, [`SnapshotCell::load_at`] serves time-travel
//! reads against any retained epoch, and a [`RetentionPolicy`]
//! (count- and/or byte-capped) trims the tail.
//!
//! [`SnapshotCell`] stays std-only (the `arc-swap` idiom without the
//! dependency): a `Mutex` held only for the nanoseconds of a pointer
//! clone or swap, plus an `AtomicU64` epoch mirror so epoch polls
//! never contend with publishes. Readers pay one mutex lock + one
//! `Arc::clone` per *snapshot acquisition*, and nothing at all per
//! read — matching, `explain`, DOT rendering, and browsing all run
//! against the `&Instance` behind the `Arc`.

use crate::instance::Instance;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An epoch-tagged published snapshot.
///
/// The epoch is a monotone generation counter: it increments on every
/// [`SnapshotCell::publish`], so a reader can cheaply detect that the
/// world has moved on (`server` uses it to report how many batches a
/// long-held snapshot is behind) without ever blocking a writer.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The frozen instance. Immutable by construction: the only route
    /// to this `Arc` is through a cell publish, and cells never hand
    /// out `&mut`.
    pub instance: Arc<Instance>,
    /// The generation this snapshot was published at (0 = the cell's
    /// initial value).
    pub epoch: u64,
}

impl Snapshot {
    /// The frozen instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }
}

/// How many historical versions the cell's MVCC ring retains.
///
/// The current version is always kept and does not count against
/// either limit. Retained versions are structurally shared with their
/// neighbours, so the marginal cost of one more version is the delta
/// it does not share — the byte cap therefore uses the *unshared*
/// [`Instance::approx_bytes`] estimate as a conservative bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Maximum historical versions kept behind the current one.
    /// 0 disables time travel entirely.
    pub max_versions: usize,
    /// Approximate byte budget for historical versions (each version
    /// scored by `Instance::approx_bytes`). 0 means unlimited — and
    /// also skips the O(graph) size estimate on the publish path, so
    /// leave it 0 unless a byte bound is actually needed.
    pub max_bytes: usize,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy {
            max_versions: 64,
            max_bytes: 0,
        }
    }
}

impl RetentionPolicy {
    /// Retain nothing but the current version (PR 4 behavior).
    pub fn none() -> Self {
        RetentionPolicy {
            max_versions: 0,
            max_bytes: 0,
        }
    }

    /// Retain up to `versions` historical versions, no byte cap.
    pub fn versions(versions: usize) -> Self {
        RetentionPolicy {
            max_versions: versions,
            max_bytes: 0,
        }
    }
}

/// One retained version: epoch, handle, and its (lazily skipped)
/// approx-byte score — 0 when the policy has no byte cap.
type Version = (u64, Arc<Instance>, usize);

#[derive(Debug)]
struct Ring {
    /// Retained versions in epoch order; the back is the current one.
    versions: VecDeque<Version>,
    policy: RetentionPolicy,
    /// Sum of the byte scores of non-current versions.
    history_bytes: usize,
}

impl Ring {
    /// Push a freshly published version and trim history to policy.
    fn push(&mut self, epoch: u64, instance: Arc<Instance>) {
        let bytes = if self.policy.max_bytes > 0 {
            instance.approx_bytes()
        } else {
            0
        };
        if let Some(previous) = self.versions.back() {
            self.history_bytes += previous.2;
        }
        self.versions.push_back((epoch, instance, bytes));
        while self.versions.len() - 1 > self.policy.max_versions {
            let (_, _, bytes) = self.versions.pop_front().expect("non-empty");
            self.history_bytes -= bytes;
        }
        if self.policy.max_bytes > 0 {
            while self.history_bytes > self.policy.max_bytes && self.versions.len() > 1 {
                let (_, _, bytes) = self.versions.pop_front().expect("non-empty");
                self.history_bytes -= bytes;
            }
        }
    }
}

/// The publication cell: a mutex-held version ring plus an atomic
/// epoch mirror.
///
/// ```
/// use good_core::snapshot::{RetentionPolicy, SnapshotCell};
/// use good_core::instance::Instance;
/// use good_core::scheme::Scheme;
///
/// let cell = SnapshotCell::new(Instance::new(Scheme::new()));
/// let before = cell.load();
/// cell.publish(Instance::new(Scheme::new()));
/// let after = cell.load();
/// assert_eq!(before.epoch, 0);
/// assert_eq!(after.epoch, 1);
/// // `before` still reads the frozen pre-publish instance...
/// assert_eq!(before.instance().node_count(), 0);
/// // ...and epoch 0 is also servable directly from the ring.
/// assert_eq!(cell.load_at(0).unwrap().epoch, 0);
/// ```
#[derive(Debug)]
pub struct SnapshotCell {
    ring: Mutex<Ring>,
    /// Mirror of the newest epoch so [`SnapshotCell::epoch`] is one
    /// atomic load — epoch polls never contend with publishes.
    epoch: AtomicU64,
}

impl SnapshotCell {
    /// A cell initially publishing `instance` at epoch 0, with the
    /// default retention policy.
    pub fn new(instance: Instance) -> Self {
        Self::new_shared(Arc::new(instance), RetentionPolicy::default())
    }

    /// A cell initially publishing `instance` at epoch 0 under
    /// `policy`. Takes the instance by `Arc` so a caller that keeps
    /// its own handle (the server's writer does) shares rather than
    /// clones.
    pub fn new_shared(instance: Arc<Instance>, policy: RetentionPolicy) -> Self {
        let bytes = if policy.max_bytes > 0 {
            instance.approx_bytes()
        } else {
            0
        };
        let mut versions = VecDeque::new();
        versions.push_back((0, instance, bytes));
        SnapshotCell {
            ring: Mutex::new(Ring {
                versions,
                policy,
                history_bytes: 0,
            }),
            epoch: AtomicU64::new(0),
        }
    }

    /// Acquire the current snapshot: one short lock, one `Arc::clone`.
    /// The returned handle stays valid (and immutable) forever,
    /// regardless of later publishes.
    pub fn load(&self) -> Snapshot {
        let guard = self.ring.lock().expect("snapshot cell poisoned");
        let (epoch, instance, _) = guard.versions.back().expect("ring never empty");
        Snapshot {
            instance: Arc::clone(instance),
            epoch: *epoch,
        }
    }

    /// Time-travel read: the snapshot published at exactly `epoch`, if
    /// the ring still retains it. `None` means the version was trimmed
    /// by the retention policy (or never existed).
    pub fn load_at(&self, epoch: u64) -> Option<Snapshot> {
        let guard = self.ring.lock().expect("snapshot cell poisoned");
        let i = guard
            .versions
            .binary_search_by_key(&epoch, |(e, _, _)| *e)
            .ok()?;
        let (epoch, instance, _) = &guard.versions[i];
        Some(Snapshot {
            instance: Arc::clone(instance),
            epoch: *epoch,
        })
    }

    /// The current epoch: a single atomic load, no mutex.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The epochs currently retained by the ring, oldest first (the
    /// last entry is the current version).
    pub fn retained_epochs(&self) -> Vec<u64> {
        let guard = self.ring.lock().expect("snapshot cell poisoned");
        guard.versions.iter().map(|(e, _, _)| *e).collect()
    }

    /// Publish a new instance value, rotating the pointer and bumping
    /// the epoch. Readers holding older snapshots are unaffected; the
    /// previous version stays servable via [`SnapshotCell::load_at`]
    /// until the retention policy trims it.
    pub fn publish(&self, instance: Instance) -> u64 {
        self.publish_arc(Arc::new(instance))
    }

    /// [`SnapshotCell::publish`] for an already-shared instance (lets a
    /// writer that keeps its own `Arc` publish with zero copies).
    pub fn publish_arc(&self, instance: Arc<Instance>) -> u64 {
        let mut guard = self.ring.lock().expect("snapshot cell poisoned");
        let epoch = guard.versions.back().expect("ring never empty").0 + 1;
        guard.push(epoch, instance);
        // Mirror under the lock: epoch() observers see monotone values
        // that never run ahead of a load().
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeBuilder;

    fn tiny() -> Instance {
        let scheme = SchemeBuilder::new().object("Info").build();
        Instance::new(scheme)
    }

    fn with_nodes(count: usize) -> Instance {
        let mut db = tiny();
        for _ in 0..count {
            db.add_object("Info").unwrap();
        }
        db
    }

    #[test]
    fn load_returns_the_published_value() {
        let cell = SnapshotCell::new(tiny());
        let snap = cell.load();
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.instance().node_count(), 0);
    }

    #[test]
    fn publish_rotates_without_disturbing_held_snapshots() {
        let cell = SnapshotCell::new(tiny());
        let held = cell.load();
        let epoch = cell.publish(with_nodes(1));
        assert_eq!(epoch, 1);
        assert_eq!(cell.epoch(), 1);
        // The held snapshot still sees the old world.
        assert_eq!(held.instance().node_count(), 0);
        assert_eq!(held.epoch, 0);
        // A fresh load sees the new one.
        let fresh = cell.load();
        assert_eq!(fresh.instance().node_count(), 1);
        assert_eq!(fresh.epoch, 1);
    }

    #[test]
    fn epochs_are_monotone_across_publishes() {
        let cell = SnapshotCell::new(tiny());
        for expected in 1..=5 {
            assert_eq!(cell.publish(tiny()), expected);
        }
    }

    #[test]
    fn load_at_serves_every_retained_epoch() {
        let cell = SnapshotCell::new(with_nodes(0));
        for i in 1..=10 {
            cell.publish(with_nodes(i));
        }
        for epoch in 0..=10u64 {
            let snap = cell.load_at(epoch).expect("retained");
            assert_eq!(snap.epoch, epoch);
            assert_eq!(snap.instance().node_count(), epoch as usize);
        }
        assert!(cell.load_at(11).is_none());
    }

    #[test]
    fn count_retention_trims_oldest_versions() {
        let cell = SnapshotCell::new_shared(Arc::new(tiny()), RetentionPolicy::versions(3));
        for i in 1..=10 {
            cell.publish(with_nodes(i));
        }
        // Current (10) plus 3 history entries.
        assert_eq!(cell.retained_epochs(), vec![7, 8, 9, 10]);
        assert!(cell.load_at(6).is_none());
        assert_eq!(cell.load_at(7).unwrap().instance().node_count(), 7);
        // A handle loaded before a trim survives the trim.
        let held = cell.load_at(7).unwrap();
        for i in 11..=20 {
            cell.publish(with_nodes(i));
        }
        assert!(cell.load_at(7).is_none());
        assert_eq!(held.instance().node_count(), 7);
    }

    #[test]
    fn zero_retention_keeps_only_current() {
        let cell = SnapshotCell::new_shared(Arc::new(tiny()), RetentionPolicy::none());
        cell.publish(with_nodes(1));
        cell.publish(with_nodes(2));
        assert_eq!(cell.retained_epochs(), vec![2]);
        assert!(cell.load_at(1).is_none());
        assert_eq!(cell.load_at(2).unwrap().epoch, 2);
    }

    #[test]
    fn byte_retention_trims_when_over_budget() {
        let policy = RetentionPolicy {
            max_versions: usize::MAX,
            // Small enough that a handful of 50-node instances blow it.
            max_bytes: with_nodes(50).approx_bytes() * 2,
        };
        let cell = SnapshotCell::new_shared(Arc::new(tiny()), policy);
        for i in 1..=10 {
            cell.publish(with_nodes(50 + i));
        }
        let retained = cell.retained_epochs();
        // The byte cap kicked in: far fewer than 11 versions remain,
        // but the current one always survives.
        assert!(retained.len() < 11, "retained {retained:?}");
        assert_eq!(*retained.last().unwrap(), 10);
    }

    #[test]
    fn concurrent_loads_and_publishes_do_not_tear() {
        use std::sync::atomic::AtomicBool;
        let cell = Arc::new(SnapshotCell::new(tiny()));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.load();
                        // Every observable state is a fully built
                        // instance: node counts are 0 or 1, never junk.
                        assert!(snap.instance().node_count() <= 1);
                        // The atomic mirror never lags a loaded epoch.
                        assert!(cell.epoch() >= snap.epoch);
                    }
                });
            }
            for round in 0..100 {
                let mut next = tiny();
                if round % 2 == 0 {
                    next.add_object("Info").unwrap();
                }
                cell.publish(next);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.epoch(), 100);
    }
}
