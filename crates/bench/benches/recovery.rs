//! E13 — crash-recovery cost: `Store::open` (journal replay) latency
//! as a function of journal length, and the effect of checkpointing
//! (EXPERIMENTS.md §3).
//!
//! Like the E12 bench this hand-rolls its measurement loop to get raw
//! medians, printing criterion-style lines and emitting
//! machine-readable results to `BENCH_store.json` in the workspace
//! root so recovery-time regressions are visible across commits.

use good_core::gen::bench_scheme;
use good_core::ops::NodeAddition;
use good_core::pattern::Pattern;
use good_core::program::{Operation, Program};
use good_store::Store;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

const JOURNAL_LENGTHS: [usize; 3] = [100, 400, 1600];
const SAMPLES: usize = 7;
const TARGET_SAMPLE_NANOS: u128 = 60_000_000; // ~60ms per sample

struct Measurement {
    records: usize,
    checkpointed: bool,
    median_ns: u128,
    nodes: usize,
}

fn format_nanos(nanos: u128) -> String {
    let nanos = nanos as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// Median per-iteration time of `routine` over `SAMPLES` samples, each
/// sized to roughly `TARGET_SAMPLE_NANOS`.
fn measure(mut routine: impl FnMut()) -> u128 {
    let start = Instant::now();
    routine();
    let once = start.elapsed().as_nanos().max(1);
    let iterations = (TARGET_SAMPLE_NANOS / once).clamp(1, 10_000);
    let mut samples: Vec<u128> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iterations {
            routine();
        }
        samples.push(start.elapsed().as_nanos() / iterations);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn tmp(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("good-e13-{name}-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Node additions are set-semantic (re-adding an identical node is a
/// no-op), so each record introduces a distinct label to make every
/// replayed record do real work.
fn seed_program(index: usize) -> Program {
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        Pattern::new(),
        format!("Seed{index}").as_str(),
        [],
    ))])
}

fn populate(path: &PathBuf, records: usize) -> Store {
    let mut store = Store::create(path, bench_scheme()).expect("create");
    for index in 0..records {
        store.execute(&seed_program(index)).expect("append");
    }
    store
}

fn main() {
    println!("E13 recovery cost — journal replay latency vs length");
    let mut measurements: Vec<Measurement> = Vec::new();

    for records in JOURNAL_LENGTHS {
        let path = tmp(&format!("replay-{records}"));
        let store = populate(&path, records);
        let nodes = store.instance().node_count();
        drop(store);
        let median_ns = measure(|| {
            let reopened = Store::open(&path).expect("open");
            assert_eq!(reopened.record_count(), records + 1);
        });
        println!(
            "{:<60} time: [median {}] ({nodes} nodes)",
            format!("E13-recovery/replay/records-{records}"),
            format_nanos(median_ns),
        );
        measurements.push(Measurement {
            records,
            checkpointed: false,
            median_ns,
            nodes,
        });
        let _ = std::fs::remove_file(&path);
    }

    // The checkpointed counterpart: the same state collapsed into one
    // snapshot record — what recovery costs after housekeeping.
    {
        let records = *JOURNAL_LENGTHS.last().expect("lengths");
        let path = tmp("checkpointed");
        let mut store = populate(&path, records);
        store.checkpoint().expect("checkpoint");
        let nodes = store.instance().node_count();
        drop(store);
        let median_ns = measure(|| {
            let reopened = Store::open(&path).expect("open");
            assert_eq!(reopened.record_count(), 1);
        });
        println!(
            "{:<60} time: [median {}] ({nodes} nodes)",
            format!("E13-recovery/replay-checkpointed/records-{records}"),
            format_nanos(median_ns),
        );
        measurements.push(Measurement {
            records,
            checkpointed: true,
            median_ns,
            nodes,
        });
        let _ = std::fs::remove_file(&path);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"E13-recovery\",");
    json.push_str("  \"results\": [\n");
    for (index, m) in measurements.iter().enumerate() {
        let comma = if index + 1 == measurements.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"journal_records\": {}, \"checkpointed\": {}, \"median_open_ns\": {}, \"nodes\": {}}}{comma}",
            m.records, m.checkpointed, m.median_ns, m.nodes
        );
    }
    json.push_str("  ]\n}\n");

    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/
    path.pop(); // workspace root
    path.push("BENCH_store.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
