//! Incremental cardinality statistics for the cost-based planner.
//!
//! The matcher's join-order choices (see [`crate::planner`]) need three
//! figures per scheme triple `(source label, edge label, target label)`:
//! how many edges carry that shape, how many distinct sources emit one,
//! and how many distinct targets receive one — plus power-of-two
//! *degree histograms* in both directions so skew (a few hub nodes
//! hiding behind a benign average) stays visible.
//!
//! [`InstanceStats`] is owned by [`crate::instance::Instance`] and
//! maintained *incrementally* by the same mutation paths that keep the
//! adjacency index fresh: edge insertion and removal adjust the touched
//! triple in O(1), batched deletions that rebuild the adjacency index
//! wholesale rebuild the stats in the same pass, and deserialization
//! rebuilds them from the loaded graph. No read path ever scans the
//! graph to answer a statistics probe.
//!
//! Storage mirrors the adjacency index's nesting discipline: three
//! [`SharedMap`] levels keyed `source label → edge label → target
//! label`, so planner probes borrow three `&Label`s (no tuple-key
//! clones) and cloning the whole structure is an `Arc` bump — the
//! O(delta) snapshot-publish property of the instance is preserved.
//! The key space is bounded by the scheme's triple set `P`, never by
//! instance size.
//!
//! Like the adjacency index, the incrementally maintained figures must
//! be *exactly* what a fresh [`InstanceStats::build`] over the graph
//! produces (empty entries are pruned on removal precisely so the
//! comparison is equality); `Instance::validate_indexes` audits this,
//! and a differential proptest drives it through random workloads.

use crate::instance::{EdgeData, NodeData};
use crate::label::Label;
use crate::persist::SharedMap;
use good_graph::{Graph, NodeId};
use std::collections::HashMap;

/// Number of power-of-two buckets in a [`DegreeHistogram`] — bucket 31
/// absorbs every degree of 2³¹ and beyond.
pub const DEGREE_BUCKETS: usize = 32;

/// A power-of-two histogram of per-node degrees: bucket `k` counts the
/// anchors whose degree `d` satisfies `2^k <= d < 2^(k+1)` (degree-0
/// anchors are not represented — they have no edge of this shape).
///
/// Maintained by *transitions*: when an edge insertion moves a source
/// from degree `d` to `d + 1`, the old bucket is decremented and the
/// new one incremented, so the histogram always equals the one a full
/// degree scan would produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeHistogram {
    buckets: [u64; DEGREE_BUCKETS],
}

impl Default for DegreeHistogram {
    fn default() -> Self {
        DegreeHistogram {
            buckets: [0; DEGREE_BUCKETS],
        }
    }
}

impl DegreeHistogram {
    #[inline]
    fn bucket(degree: u64) -> usize {
        debug_assert!(degree >= 1);
        (63 - degree.leading_zeros() as usize).min(DEGREE_BUCKETS - 1)
    }

    /// Record one anchor moving from degree `old` to degree `new`
    /// (either may be 0, meaning the anchor leaves or enters the
    /// population).
    pub fn record_transition(&mut self, old: u64, new: u64) {
        if old > 0 {
            let bucket = &mut self.buckets[Self::bucket(old)];
            debug_assert!(*bucket > 0, "histogram underflow");
            *bucket = bucket.saturating_sub(1);
        }
        if new > 0 {
            self.buckets[Self::bucket(new)] += 1;
        }
    }

    /// Number of anchors with at least one edge (the *distinct
    /// source/target* count the planner divides by).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True if no anchor carries an edge.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| *b == 0)
    }

    /// An upper bound on the largest degree present: `2^(k+1) - 1` of
    /// the highest non-empty bucket (0 when empty). The planner uses
    /// it to spot hub skew an average would hide.
    pub fn max_degree_bound(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|b| *b > 0)
            .map_or(0, |k| (2u64 << k) - 1)
    }

    /// The raw buckets, `buckets()[k]` counting degrees in
    /// `[2^k, 2^(k+1))`.
    pub fn buckets(&self) -> &[u64; DEGREE_BUCKETS] {
        &self.buckets
    }
}

/// Statistics for one scheme triple `(source label, λ, target label)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TripleStats {
    /// Number of instance edges with this shape.
    pub edges: u64,
    /// Per-source degree histogram (how many `target label` nodes each
    /// source reaches via `λ`).
    pub out_degrees: DegreeHistogram,
    /// Per-target degree histogram (how many `source label` nodes
    /// reach each target via `λ`).
    pub in_degrees: DegreeHistogram,
}

impl TripleStats {
    /// Distinct sources with at least one edge of this shape.
    pub fn distinct_sources(&self) -> u64 {
        self.out_degrees.count()
    }

    /// Distinct targets with at least one edge of this shape.
    pub fn distinct_targets(&self) -> u64 {
        self.in_degrees.count()
    }

    /// Average out-degree over sources that have the edge at all (the
    /// planner's per-row fan-out when expanding source → target).
    pub fn avg_out(&self) -> f64 {
        let sources = self.distinct_sources();
        if sources == 0 {
            0.0
        } else {
            self.edges as f64 / sources as f64
        }
    }

    /// Average in-degree over targets that have the edge at all (the
    /// per-row fan-in when expanding target → source).
    pub fn avg_in(&self) -> f64 {
        let targets = self.distinct_targets();
        if targets == 0 {
            0.0
        } else {
            self.edges as f64 / targets as f64
        }
    }
}

/// The nested per-triple map: `source label → edge label → target
/// label → stats`.
type TripleMap = SharedMap<Label, SharedMap<Label, SharedMap<Label, TripleStats>>>;

/// Per-instance cardinality statistics, incrementally maintained (see
/// the module docs). Node counts per label and distinct printable
/// values per label are *not* duplicated here: the instance's label and
/// printable indexes already hold them as O(1) set sizes
/// ([`crate::instance::Instance::label_count`] /
/// [`crate::instance::Instance::printable_value_count`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InstanceStats {
    triples: TripleMap,
}

impl InstanceStats {
    /// The statistics of one scheme triple, probed with three borrowed
    /// labels (no allocation). `None` means no such edge exists.
    pub fn triple(
        &self,
        src_label: &Label,
        edge: &Label,
        dst_label: &Label,
    ) -> Option<&TripleStats> {
        self.triples.get(src_label)?.get(edge)?.get(dst_label)
    }

    /// Number of distinct triples with at least one edge.
    pub fn triple_count(&self) -> usize {
        self.triples
            .values()
            .map(|by_edge| by_edge.values().map(SharedMap::len).sum::<usize>())
            .sum()
    }

    /// Every `(source label, edge label, target label, stats)` entry in
    /// deterministic (sorted) order. The underlying maps iterate in
    /// hash order; anything user-facing (CLI `stats`, tests) must go
    /// through here.
    pub fn triples_sorted(&self) -> Vec<(&Label, &Label, &Label, &TripleStats)> {
        let mut entries: Vec<(&Label, &Label, &Label, &TripleStats)> = self
            .triples
            .iter()
            .flat_map(|(src, by_edge)| {
                by_edge.iter().flat_map(move |(edge, by_dst)| {
                    by_dst
                        .iter()
                        .map(move |(dst, stats)| (src, edge, dst, stats))
                })
            })
            .collect();
        entries.sort_by_key(|(src, edge, dst, _)| (*src, *edge, *dst));
        entries
    }

    /// Record an edge insertion of shape `(src_label, edge, dst_label)`
    /// whose source now has out-degree `new_out` and whose target now
    /// has in-degree `new_in` (both restricted to this triple's shape;
    /// the caller reads them off the adjacency index in O(1)).
    pub(crate) fn record_added(
        &mut self,
        src_label: &Label,
        edge: &Label,
        dst_label: &Label,
        new_out: u64,
        new_in: u64,
    ) {
        let stats = self
            .triples
            .get_or_insert_with(src_label, SharedMap::new)
            .get_or_insert_with(edge, SharedMap::new)
            .get_or_insert_with(dst_label, TripleStats::default);
        stats.edges += 1;
        stats.out_degrees.record_transition(new_out - 1, new_out);
        stats.in_degrees.record_transition(new_in - 1, new_in);
    }

    /// Record an edge removal (degrees are the *post-removal* values,
    /// read off the already-updated adjacency index). Triples that
    /// empty are pruned so the structure stays equal to a fresh
    /// rebuild.
    pub(crate) fn record_removed(
        &mut self,
        src_label: &Label,
        edge: &Label,
        dst_label: &Label,
        new_out: u64,
        new_in: u64,
    ) {
        let Some(by_edge) = self.triples.get_mut(src_label) else {
            return;
        };
        if let Some(by_dst) = by_edge.get_mut(edge) {
            if let Some(stats) = by_dst.get_mut(dst_label) {
                stats.edges = stats.edges.saturating_sub(1);
                stats.out_degrees.record_transition(new_out + 1, new_out);
                stats.in_degrees.record_transition(new_in + 1, new_in);
                if stats.edges == 0 {
                    by_dst.remove(dst_label);
                }
            }
            if by_dst.is_empty() {
                by_edge.remove(edge);
            }
        }
        if by_edge.is_empty() {
            self.triples.remove(src_label);
        }
    }

    /// Build the statistics of `graph` from scratch — the bulk-rebuild
    /// and deserialization path, and the oracle the incremental figures
    /// are differentially tested against.
    pub fn build(graph: &Graph<NodeData, EdgeData>) -> Self {
        // Aggregate per-triple degree maps with borrowed keys; labels
        // are cloned once per distinct triple at fold time, not once
        // per edge.
        type Agg<'g> = HashMap<(&'g Label, &'g Label, &'g Label), TripleAgg>;
        #[derive(Default)]
        struct TripleAgg {
            edges: u64,
            out_degrees: HashMap<NodeId, u64>,
            in_degrees: HashMap<NodeId, u64>,
        }
        let mut agg: Agg<'_> = HashMap::new();
        for edge in graph.edges() {
            let src_label = &graph.node(edge.src).expect("live").label;
            let dst_label = &graph.node(edge.dst).expect("live").label;
            let entry = agg
                .entry((src_label, &edge.payload.label, dst_label))
                .or_default();
            entry.edges += 1;
            *entry.out_degrees.entry(edge.src).or_insert(0) += 1;
            *entry.in_degrees.entry(edge.dst).or_insert(0) += 1;
        }
        let mut stats = InstanceStats::default();
        for ((src_label, edge, dst_label), triple_agg) in agg {
            let mut out_degrees = DegreeHistogram::default();
            for degree in triple_agg.out_degrees.values() {
                out_degrees.record_transition(0, *degree);
            }
            let mut in_degrees = DegreeHistogram::default();
            for degree in triple_agg.in_degrees.values() {
                in_degrees.record_transition(0, *degree);
            }
            stats
                .triples
                .get_or_insert_with(src_label, SharedMap::new)
                .get_or_insert_with(edge, SharedMap::new)
                .get_or_insert_with(dst_label, || TripleStats {
                    edges: triple_agg.edges,
                    out_degrees,
                    in_degrees,
                });
        }
        stats
    }

    /// A structure-unsharing copy (every map level re-collected),
    /// mirroring `AdjacencyIndex::deep_clone` for the E16 baseline.
    pub(crate) fn deep_clone(&self) -> Self {
        InstanceStats {
            triples: self
                .triples
                .iter()
                .map(|(src, by_edge)| {
                    (
                        src.clone(),
                        by_edge
                            .iter()
                            .map(|(edge, by_dst)| {
                                (
                                    edge.clone(),
                                    by_dst
                                        .iter()
                                        .map(|(dst, stats)| (dst.clone(), stats.clone()))
                                        .collect(),
                                )
                            })
                            .collect(),
                    )
                })
                .collect(),
        }
    }

    /// Rough heap footprint in bytes across all three nesting levels.
    pub fn approx_bytes(&self) -> usize {
        self.triples.approx_bytes()
            + self
                .triples
                .values()
                .map(|by_edge| {
                    by_edge.approx_bytes()
                        + by_edge.values().map(SharedMap::approx_bytes).sum::<usize>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_power_of_two() {
        let mut h = DegreeHistogram::default();
        for degree in [1u64, 2, 3, 4, 7, 8, 1024] {
            h.record_transition(0, degree);
        }
        // 1 → bucket 0; 2, 3 → bucket 1; 4, 7 → bucket 2; 8 → bucket 3;
        // 1024 → bucket 10.
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.count(), 7);
        assert_eq!(h.max_degree_bound(), 2047);
    }

    #[test]
    fn histogram_transitions_round_trip() {
        let mut h = DegreeHistogram::default();
        h.record_transition(0, 1);
        h.record_transition(1, 2);
        h.record_transition(2, 3);
        assert_eq!(h.count(), 1);
        assert_eq!(h.buckets()[1], 1);
        h.record_transition(3, 2);
        h.record_transition(2, 1);
        h.record_transition(1, 0);
        assert!(h.is_empty());
        assert_eq!(h.max_degree_bound(), 0);
    }

    #[test]
    fn huge_degrees_saturate_the_last_bucket() {
        let mut h = DegreeHistogram::default();
        h.record_transition(0, u64::MAX);
        assert_eq!(h.buckets()[DEGREE_BUCKETS - 1], 1);
        h.record_transition(u64::MAX, u64::MAX - 1);
        assert_eq!(h.buckets()[DEGREE_BUCKETS - 1], 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn triple_stats_averages() {
        let mut stats = TripleStats::default();
        assert_eq!(stats.avg_out(), 0.0);
        stats.edges = 6;
        stats.out_degrees.record_transition(0, 3);
        stats.out_degrees.record_transition(0, 3);
        stats.in_degrees.record_transition(0, 1);
        assert_eq!(stats.distinct_sources(), 2);
        assert_eq!(stats.avg_out(), 3.0);
        assert_eq!(stats.avg_in(), 6.0);
    }
}
