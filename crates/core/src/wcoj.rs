//! Generic (worst-case-optimal) join evaluation for cyclic patterns.
//!
//! Binary edge-at-a-time plans are doomed on cyclic patterns: whatever
//! the join order, some prefix materializes an *open* version of the
//! cycle (all wedges of a triangle, say) before the closing edge can
//! filter it, and that intermediate can be asymptotically larger than
//! the final result (the AGM bound — see "Foundations of Modern Query
//! Languages for Graph Databases" in PAPERS.md). The generic-join
//! discipline avoids this by joining one *variable* at a time instead:
//! each pattern node binds to the sorted intersection of **all** its
//! candidate sets under the current partial assignment — every
//! bound-neighbour posting list, the support sets of its still-unbound
//! edges, and its printable/predicate constraints — so no partial
//! assignment survives that violates any already-decidable edge.
//!
//! The intersection is evaluated the classic way: materialize the
//! smallest candidate set, then membership-probe the rest (postings
//! probes and `has_edge` are O(1)-ish through the adjacency index).
//! The variable order comes from the cost-based planner
//! ([`crate::planner::plan`]), which routes patterns here when their
//! costed estimate predicts a binary blow-up.
//!
//! Results are canonical — sorted, deduplicated, negation
//! post-filtered — and bit-identical to every other engine; the
//! differential proptest suite (`tests/differential.rs`) enforces this.

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::label::Label;
use crate::matching::{extends_to_full, node_compatible, Matching};
use crate::pattern::{Pattern, PatternNodeKind};
use crate::persist::PSet;
use good_graph::NodeId;

/// Bound-neighbour images with at most this many incident edges are
/// scanned directly instead of probed through the adjacency index
/// (mirrors the backtracking engine).
const SCAN_LIMIT: usize = 8;

/// One variable of the generic join: the pattern node plus its edges
/// into earlier (already bound at candidate time) and later variables,
/// resolved once per enumeration.
struct Variable {
    node: NodeId,
    /// `(earlier variable's arena slot, edge label index, direction)`
    /// for every positive edge between this node and an earlier one.
    /// Direction is from the perspective of *this* node: `Out` means
    /// `this -λ-> earlier`.
    earlier: Vec<(usize, usize, Direction)>,
    /// Edge label indexes of positive self-loops on this node.
    self_loops: Vec<usize>,
    /// `(edge label index, direction)` of positive edges to later
    /// variables — used as support-set filters, the generic join's
    /// "every relation containing the variable" discipline.
    later: Vec<(usize, Direction)>,
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Out,
    In,
}

/// Enumerate all matchings of `pattern` (its positive part must equal
/// `pattern` — callers pass `pattern.positive_part()`) by generic join
/// in the given variable `order`. When `actuals` is provided, slot `d`
/// receives the number of partial assignments that survived depth `d`
/// (the per-step actual row counts `explain` reports).
pub(crate) fn enumerate_generic(
    pattern: &Pattern,
    instance: &Instance,
    order: &[NodeId],
    mut actuals: Option<&mut [u64]>,
) -> Vec<Matching> {
    let graph = pattern.graph();
    let capacity = graph.node_index_bound();
    if order.is_empty() {
        return vec![Matching::from_pairs([])];
    }

    // Resolve the pattern's edge labels once; candidates reference them
    // by index so the inner loop never clones a label.
    let labels: Vec<_> = graph
        .edges()
        .filter(|edge| !edge.payload.negated)
        .map(|edge| (edge.src, edge.dst, edge.payload.label.clone()))
        .collect();

    let mut depth_of: Vec<usize> = vec![usize::MAX; capacity];
    for (depth, node) in order.iter().enumerate() {
        depth_of[node.index()] = depth;
    }
    let variables: Vec<Variable> = order
        .iter()
        .enumerate()
        .map(|(depth, &node)| {
            let mut earlier = Vec::new();
            let mut self_loops = Vec::new();
            let mut later = Vec::new();
            for (index, (src, dst, _)) in labels.iter().enumerate() {
                if *src == node && *dst == node {
                    self_loops.push(index);
                } else if *src == node {
                    if depth_of[dst.index()] < depth {
                        earlier.push((dst.index(), index, Direction::Out));
                    } else {
                        later.push((index, Direction::Out));
                    }
                } else if *dst == node {
                    if depth_of[src.index()] < depth {
                        earlier.push((src.index(), index, Direction::In));
                    } else {
                        later.push((index, Direction::In));
                    }
                }
            }
            Variable {
                node,
                earlier,
                self_loops,
                later,
            }
        })
        .collect();

    let mut frame: Vec<Option<NodeId>> = vec![None; capacity];
    let mut results = Vec::new();
    let mut scratch: Vec<Vec<NodeId>> = vec![Vec::new(); order.len()];

    // Iterative depth-first enumeration over the fixed variable order.
    let mut cursors: Vec<usize> = vec![0; order.len()];
    let mut depth = 0usize;
    candidates(
        instance,
        pattern,
        &variables[0],
        &labels,
        &frame,
        &mut scratch[0],
    );
    cursors[0] = 0;
    loop {
        if cursors[depth] < scratch[depth].len() {
            let image = scratch[depth][cursors[depth]];
            cursors[depth] += 1;
            frame[variables[depth].node.index()] = Some(image);
            if let Some(actuals) = actuals.as_deref_mut() {
                actuals[depth] += 1;
            }
            if depth + 1 == order.len() {
                results.push(Matching::from_pairs(
                    order.iter().map(|&n| (n, frame[n.index()].expect("bound"))),
                ));
                frame[variables[depth].node.index()] = None;
            } else {
                depth += 1;
                let (_, rest) = scratch.split_at_mut(depth);
                candidates(
                    instance,
                    pattern,
                    &variables[depth],
                    &labels,
                    &frame,
                    &mut rest[0],
                );
                cursors[depth] = 0;
            }
        } else {
            frame[variables[depth].node.index()] = None;
            if depth == 0 {
                break;
            }
            depth -= 1;
            frame[variables[depth].node.index()] = None;
        }
    }
    results
}

/// Fill `out` with the sorted intersection of every candidate set of
/// `variable` under the partial assignment in `frame`.
fn candidates(
    instance: &Instance,
    pattern: &Pattern,
    variable: &Variable,
    labels: &[(NodeId, NodeId, Label)],
    frame: &[Option<NodeId>],
    out: &mut Vec<NodeId>,
) {
    out.clear();
    let data = pattern.graph().node(variable.node).expect("live");
    let PatternNodeKind::Class(label) = &data.kind else {
        return;
    };

    // Survives every decidable constraint except the base enumeration?
    let passes = |candidate: NodeId, skip: Option<usize>| -> bool {
        if !node_compatible(instance, data, candidate) {
            return false;
        }
        for &(slot, edge_index, direction) in &variable.earlier {
            if Some(edge_index) == skip {
                continue;
            }
            let bound = frame[slot].expect("earlier variable is bound");
            let elabel = &labels[edge_index].2;
            let present = match direction {
                Direction::Out => instance.has_edge(candidate, elabel, bound),
                Direction::In => instance.has_edge(bound, elabel, candidate),
            };
            if !present {
                return false;
            }
        }
        for &edge_index in &variable.self_loops {
            let elabel = &labels[edge_index].2;
            if !instance.has_edge(candidate, elabel, candidate) {
                return false;
            }
        }
        // Support sets of edges to later variables: a complete
        // over-approximation, so pruning here is sound and keeps dead
        // branches from ever being entered.
        for &(edge_index, direction) in &variable.later {
            let elabel = &labels[edge_index].2;
            let supported = match direction {
                Direction::Out => instance
                    .out_support(label, elabel)
                    .is_some_and(|set| set.contains(&candidate)),
                Direction::In => instance
                    .in_support(label, elabel)
                    .is_some_and(|set| set.contains(&candidate)),
            };
            if !supported {
                return false;
            }
        }
        true
    };

    // Exact printable value: a single probe is the whole base set.
    if let Some(value) = &data.print {
        if let Some(found) = instance.find_printable(label, value) {
            if passes(found, None) {
                out.push(found);
            }
        }
        return;
    }

    // Base set: the smallest bound-neighbour posting list (generic
    // join iterates the smallest relation and probes the others).
    let mut best: Option<(usize, usize)> = None; // (size, earlier index)
    for (position, &(slot, edge_index, direction)) in variable.earlier.iter().enumerate() {
        let bound = frame[slot].expect("earlier variable is bound");
        let elabel = &labels[edge_index].2;
        let size = match direction {
            Direction::Out => {
                let degree = instance.in_degree(bound);
                if degree <= SCAN_LIMIT {
                    degree
                } else {
                    instance
                        .indexed_sources(label, elabel, bound)
                        .map_or(0, PSet::len)
                }
            }
            Direction::In => {
                let degree = instance.out_degree(bound);
                if degree <= SCAN_LIMIT {
                    degree
                } else {
                    instance
                        .indexed_targets(label, elabel, bound)
                        .map_or(0, PSet::len)
                }
            }
        };
        if best.is_none_or(|(len, _)| size < len) {
            best = Some((size, position));
        }
    }
    if let Some((_, position)) = best {
        let (slot, edge_index, direction) = variable.earlier[position];
        let bound = frame[slot].expect("earlier variable is bound");
        let elabel = &labels[edge_index].2;
        match direction {
            Direction::Out => {
                if instance.in_degree(bound) <= SCAN_LIMIT {
                    out.extend(instance.sources(bound, elabel));
                } else if let Some(set) = instance.indexed_sources(label, elabel, bound) {
                    out.extend(set.iter().copied());
                }
            }
            Direction::In => {
                if instance.out_degree(bound) <= SCAN_LIMIT {
                    out.extend(instance.targets(bound, elabel));
                } else if let Some(set) = instance.indexed_targets(label, elabel, bound) {
                    out.extend(set.iter().copied());
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&c| passes(c, Some(edge_index)));
        return;
    }

    // No bound neighbour (the root of the order, or a fresh
    // component): intersect the support sets of the incident edge
    // labels, smallest first; fall back to the label extent.
    let mut supports: Vec<&PSet<NodeId>> = Vec::new();
    for &(edge_index, direction) in &variable.later {
        let elabel = &labels[edge_index].2;
        let set = match direction {
            Direction::Out => instance.out_support(label, elabel),
            Direction::In => instance.in_support(label, elabel),
        };
        match set {
            Some(set) => supports.push(set),
            None => return,
        }
    }
    // `passes` re-checks membership in every support, so iterating the
    // smallest one is a true multi-way intersection.
    if let Some(first) = supports.iter().min_by_key(|set| set.len()) {
        out.extend(first.iter().copied().filter(|&c| passes(c, None)));
    } else {
        out.extend(
            instance
                .nodes_with_label(label)
                .filter(|&c| passes(c, None)),
        );
    }
}

/// Find all matchings of `pattern` with the generic-join engine,
/// regardless of what strategy the planner would pick. Results are
/// bit-identical to [`crate::matching::find_matchings`].
pub fn find_matchings_wcoj(pattern: &Pattern, instance: &Instance) -> Result<Vec<Matching>> {
    if pattern.has_method_head() {
        return Err(GoodError::InvalidPattern(
            "patterns with method-head nodes must be rewritten before matching".into(),
        ));
    }
    pattern.validate(instance.scheme())?;
    let positive = pattern.positive_part();
    let choice = crate::planner::plan(&positive, instance);
    let mut results = enumerate_generic(&positive, instance, &choice.order, None);
    results.sort();
    results.dedup();
    if pattern.has_negation() {
        results.retain(|m| !extends_to_full(pattern, instance, m));
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{find_matchings, find_matchings_naive};
    use crate::scheme::{Scheme, SchemeBuilder};
    use crate::value::ValueType;

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .functional("Info", "name", "String")
            .multivalued("Info", "links-to", "Info")
            .build()
    }

    fn cyclic_instance() -> Instance {
        let mut db = Instance::new(scheme());
        let nodes: Vec<_> = (0..8).map(|_| db.add_object("Info").unwrap()).collect();
        // A 4-cycle, a triangle sharing a node with it, a self-loop,
        // and a pendant.
        for k in 0..4 {
            db.add_edge(nodes[k], "links-to", nodes[(k + 1) % 4])
                .unwrap();
        }
        db.add_edge(nodes[3], "links-to", nodes[4]).unwrap();
        db.add_edge(nodes[4], "links-to", nodes[5]).unwrap();
        db.add_edge(nodes[5], "links-to", nodes[3]).unwrap();
        db.add_edge(nodes[6], "links-to", nodes[6]).unwrap();
        db.add_edge(nodes[6], "links-to", nodes[7]).unwrap();
        let name = db.add_printable("String", "hub").unwrap();
        db.add_edge(nodes[3], "name", name).unwrap();
        db
    }

    fn assert_engines_agree(pattern: &Pattern, db: &Instance) {
        let planned = find_matchings(pattern, db).unwrap();
        let naive = find_matchings_naive(pattern, db).unwrap();
        let wcoj = find_matchings_wcoj(pattern, db).unwrap();
        assert_eq!(planned, naive);
        assert_eq!(planned, wcoj);
    }

    #[test]
    fn triangle_matches_agree_with_all_engines() {
        let db = cyclic_instance();
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.node("Info");
        let c = p.node("Info");
        p.edge(a, "links-to", b);
        p.edge(b, "links-to", c);
        p.edge(c, "links-to", a);
        assert_engines_agree(&p, &db);
        // Three rotations of the {3,4,5} triangle, plus the self-loop
        // node matching all three variables at once (homomorphisms are
        // not injective).
        assert_eq!(find_matchings(&p, &db).unwrap().len(), 4);
    }

    #[test]
    fn four_cycle_and_chains_agree() {
        let db = cyclic_instance();
        let mut square = Pattern::new();
        let n: Vec<_> = (0..4).map(|_| square.node("Info")).collect();
        for k in 0..4 {
            square.edge(n[k], "links-to", n[(k + 1) % 4]);
        }
        assert_engines_agree(&square, &db);

        let mut chain = Pattern::new();
        let a = chain.node("Info");
        let b = chain.node("Info");
        let c = chain.node("Info");
        chain.edge(a, "links-to", b);
        chain.edge(b, "links-to", c);
        assert_engines_agree(&chain, &db);
    }

    #[test]
    fn self_loops_and_printables_agree() {
        let db = cyclic_instance();
        let mut p = Pattern::new();
        let x = p.node("Info");
        p.edge(x, "links-to", x);
        assert_engines_agree(&p, &db);

        let mut anchored = Pattern::new();
        let info = anchored.node("Info");
        let name = anchored.printable("String", "hub");
        let other = anchored.node("Info");
        anchored.edge(info, "name", name);
        anchored.edge(info, "links-to", other);
        assert_engines_agree(&anchored, &db);
    }

    #[test]
    fn negation_and_empty_pattern_agree() {
        let db = cyclic_instance();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let other = p.negated_node("Info");
        p.edge(info, "links-to", other);
        assert_engines_agree(&p, &db);
        assert_engines_agree(&Pattern::new(), &db);
    }

    #[test]
    fn disconnected_pattern_cross_product_agrees() {
        let db = cyclic_instance();
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.node("Info");
        let c = p.node("Info");
        p.edge(a, "links-to", b);
        let _ = c; // isolated third node
        assert_engines_agree(&p, &db);
    }

    #[test]
    fn per_depth_actuals_are_recorded() {
        let db = cyclic_instance();
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.node("Info");
        p.edge(a, "links-to", b);
        let positive = p.positive_part();
        let choice = crate::planner::plan(&positive, &db);
        let mut actuals = vec![0u64; choice.order.len()];
        let results = enumerate_generic(&positive, &db, &choice.order, Some(&mut actuals));
        assert_eq!(actuals[choice.order.len() - 1], results.len() as u64);
        assert!(actuals[0] >= 1);
    }
}
