//! The metrics JSON snapshot shape: schema round-trip through the
//! vendored JSON reader, and proptests that arbitrary metric names and
//! values — control characters, quotes, backslashes, unicode — always
//! serialize to parseable JSON with the values intact (the escaping
//! contract of `MetricsSnapshot::to_json`).

use good_trace::{HistogramSnapshot, MetricsSnapshot};
use proptest::prelude::*;
use serde_json::Value;

/// Metric names drawn from a hostile alphabet: quotes, backslashes,
/// ASCII control characters (NUL through US), slashes, and multi-byte
/// unicode up to emoji — everything the JSON escaper must handle.
fn hostile_text(max: usize) -> impl Strategy<Value = String> {
    const CLASS: &str = "[\"\\\\\u{0}-\u{1f}a-z/=\u{e9}\u{4e16}\u{1f600}-\u{1f603}]";
    proptest::string::string_regex(&format!("{CLASS}{{0,{max}}}"))
        .expect("hostile alphabet pattern")
}

fn parse(json: &str) -> Value {
    serde_json::from_str(json)
        .unwrap_or_else(|err| panic!("snapshot JSON must parse: {err}\n{json}"))
}

#[test]
fn snapshot_json_schema_round_trips_through_the_reader() {
    let snapshot = MetricsSnapshot {
        counters: vec![
            ("net/accepted".into(), 12),
            ("server/committed".into(), u64::MAX),
        ],
        gauges: vec![
            ("net/connections".into(), 3),
            ("server/queue_depth".into(), -1),
        ],
        histograms: vec![(
            "server/commit_ns".into(),
            HistogramSnapshot {
                count: 4,
                sum: 1_000,
                max: 700,
                buckets: vec![(127, 1), (255, 2), (1023, 1)],
            },
        )],
    };
    let doc = parse(&snapshot.to_json());

    assert_eq!(doc["counters"]["net/accepted"].as_u64(), Some(12));
    // u64::MAX exceeds i64: the vendored reader parses integers as
    // i128, so the full range survives.
    assert_eq!(
        doc["counters"]["server/committed"].as_f64(),
        Some(u64::MAX as f64)
    );
    assert_eq!(doc["gauges"]["net/connections"].as_i64(), Some(3));
    assert_eq!(doc["gauges"]["server/queue_depth"].as_i64(), Some(-1));
    let histogram = &doc["histograms"]["server/commit_ns"];
    assert_eq!(histogram["count"].as_u64(), Some(4));
    assert_eq!(histogram["sum"].as_u64(), Some(1_000));
    assert_eq!(histogram["max"].as_u64(), Some(700));
    let buckets = histogram["buckets"].as_seq().expect("buckets array");
    assert_eq!(buckets.len(), 3);
    assert_eq!(buckets[1].at(0).and_then(Value::as_u64), Some(255));
    assert_eq!(buckets[1].at(1).and_then(Value::as_u64), Some(2));

    // Empty snapshot: still a complete, parseable schema.
    let empty = parse(&MetricsSnapshot::default().to_json());
    for section in ["counters", "gauges", "histograms"] {
        assert_eq!(empty[section].as_map().map(<[_]>::len), Some(0));
    }
}

#[test]
fn live_snapshot_json_parses_against_the_same_schema() {
    // The always-on registry renders through the same code path; a
    // smoke check that a real live snapshot (whatever other tests in
    // this process have recorded) parses.
    static PROBE: good_trace::LiveCounter = good_trace::LiveCounter::new("metrics_json/probe");
    PROBE.incr();
    let doc = parse(&good_trace::live_metrics_snapshot_json());
    assert!(doc["counters"]["metrics_json/probe"].as_u64().unwrap() >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary names — including quotes, backslashes, control
    /// characters, and unicode — always yield parseable JSON, and every
    /// name/value pair survives the round trip exactly.
    #[test]
    fn prop_arbitrary_names_and_values_stay_parseable(
        counters in proptest::collection::vec((hostile_text(12), any::<u64>()), 0..8),
        gauges in proptest::collection::vec((hostile_text(12), any::<i64>()), 0..8),
        hist_name in hostile_text(12),
        observations in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let mut histogram = HistogramSnapshot::default();
        for &value in &observations {
            histogram.count += 1;
            histogram.sum = histogram.sum.saturating_add(value);
            histogram.max = histogram.max.max(value);
        }
        histogram.buckets = if observations.is_empty() {
            Vec::new()
        } else {
            vec![(u64::MAX, observations.len() as u64)]
        };
        let snapshot = MetricsSnapshot {
            counters: counters.clone(),
            gauges: gauges.clone(),
            histograms: vec![(hist_name.clone(), histogram.clone())],
        };
        let doc = parse(&snapshot.to_json());

        // Lookup returns a duplicated name's first occurrence, so
        // assert against that.
        for (name, value) in &counters {
            let expected = counters.iter().find(|(n, _)| n == name).unwrap().1;
            let got = doc["counters"][name.as_str()].as_f64();
            prop_assert_eq!(got, Some(expected as f64), "counter {:?} = {}", name, value);
        }
        for (name, value) in &gauges {
            let expected = gauges.iter().find(|(n, _)| n == name).unwrap().1;
            let got = doc["gauges"][name.as_str()].as_i64();
            prop_assert_eq!(got, Some(expected), "gauge {:?} = {}", name, value);
        }
        let entry = &doc["histograms"][hist_name.as_str()];
        prop_assert_eq!(entry["count"].as_u64(), Some(histogram.count));
        prop_assert_eq!(entry["max"].as_f64(), Some(histogram.max as f64));
    }

    /// The escaping helper itself: any string embedded via
    /// `escape_json_str` parses back to the original.
    #[test]
    fn prop_escape_json_str_round_trips(text in hostile_text(40)) {
        let json = format!("\"{}\"", good_trace::escape_json_str(&text));
        let back: String = serde_json::from_str(&json)
            .unwrap_or_else(|err| panic!("escaped string must parse: {err}\n{json}"));
        prop_assert_eq!(back, text);
    }
}
