//! Object base schemes.
//!
//! Section 2 of the paper: an object base scheme is a five-tuple
//! `S = (OL, POL, FEL, MEL, P)` with `P ⊆ OL × (MEL ∪ FEL) × (OL ∪ POL)`.
//! [`Scheme`] stores the four finite label sets plus the triple set `P`,
//! and — beyond the paper — the constant domain of each printable label
//! and the set of triples marked as `isa` subclass edges (Section 4.2).
//!
//! Schemes evolve: node addition, edge addition and abstraction each
//! produce "the minimal scheme of which S is a subscheme" over which the
//! enlarged pattern is a pattern. The `extend_*` methods implement those
//! minimal extensions and are also what [`Scheme::union`] builds on for
//! the method-interface semantics of Section 3.6.

use crate::error::{GoodError, Result};
use crate::label::{EdgeKind, Label, NodeKind};
use crate::value::ValueType;
use good_graph::dot::{DotEdge, DotNode};
use good_graph::Graph;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A scheme triple `(source label, edge label, target label) ∈ P`.
pub type Triple = (Label, Label, Label);

/// An object base scheme.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scheme {
    objects: BTreeSet<Label>,
    printables: BTreeMap<Label, ValueType>,
    functional: BTreeSet<Label>,
    multivalued: BTreeSet<Label>,
    triples: BTreeSet<Triple>,
    /// Subset of `triples` whose (functional) edges are interpreted as
    /// subclass (`isa`) edges, per Section 4.2.
    subclass: BTreeSet<Triple>,
}

impl Scheme {
    /// An empty scheme.
    pub fn new() -> Self {
        Scheme::default()
    }

    // ---- label registration -------------------------------------------------

    /// Describe the universe a label is already registered in, if any.
    fn existing_universe(&self, label: &Label) -> Option<&'static str> {
        if self.objects.contains(label) {
            Some("an object label")
        } else if self.printables.contains_key(label) {
            Some("a printable object label")
        } else if self.functional.contains(label) {
            Some("a functional edge label")
        } else if self.multivalued.contains(label) {
            Some("a multivalued edge label")
        } else {
            None
        }
    }

    fn check_fresh(&self, label: &Label, attempted: &'static str) -> Result<()> {
        match self.existing_universe(label) {
            Some(existing) if existing != attempted => Err(GoodError::LabelUniverseClash {
                label: label.clone(),
                existing,
                attempted,
            }),
            _ => Ok(()),
        }
    }

    /// Register an object label (idempotent).
    pub fn add_object_label(&mut self, label: impl Into<Label>) -> Result<Label> {
        let label = label.into();
        self.check_fresh(&label, "an object label")?;
        self.objects.insert(label.clone());
        Ok(label)
    }

    /// Register a printable object label with its constant domain
    /// (idempotent if the domain agrees).
    pub fn add_printable_label(
        &mut self,
        label: impl Into<Label>,
        value_type: ValueType,
    ) -> Result<Label> {
        let label = label.into();
        self.check_fresh(&label, "a printable object label")?;
        if let Some(existing) = self.printables.get(&label) {
            if *existing != value_type {
                return Err(GoodError::LabelUniverseClash {
                    label,
                    existing: "a printable object label (with a different constant domain)",
                    attempted: "a printable object label",
                });
            }
        }
        self.printables.insert(label.clone(), value_type);
        Ok(label)
    }

    /// Register a functional edge label (idempotent).
    pub fn add_functional_label(&mut self, label: impl Into<Label>) -> Result<Label> {
        let label = label.into();
        self.check_fresh(&label, "a functional edge label")?;
        self.functional.insert(label.clone());
        Ok(label)
    }

    /// Register a multivalued edge label (idempotent).
    pub fn add_multivalued_label(&mut self, label: impl Into<Label>) -> Result<Label> {
        let label = label.into();
        self.check_fresh(&label, "a multivalued edge label")?;
        self.multivalued.insert(label.clone());
        Ok(label)
    }

    /// Register an edge label of the given kind.
    pub fn add_edge_label(&mut self, label: impl Into<Label>, kind: EdgeKind) -> Result<Label> {
        match kind {
            EdgeKind::Functional => self.add_functional_label(label),
            EdgeKind::Multivalued => self.add_multivalued_label(label),
        }
    }

    // ---- triples -------------------------------------------------------------

    /// Add a triple `(src, edge, dst)` to `P`.
    ///
    /// All three labels must already be registered, `src` must be an
    /// object label, and `dst` any node label.
    pub fn add_triple(
        &mut self,
        src: impl Into<Label>,
        edge: impl Into<Label>,
        dst: impl Into<Label>,
    ) -> Result<()> {
        let (src, edge, dst) = (src.into(), edge.into(), dst.into());
        if self.printables.contains_key(&src) {
            return Err(GoodError::PrintableAsSource(src));
        }
        if !self.objects.contains(&src) {
            return Err(GoodError::UnknownNodeLabel(src));
        }
        if !self.is_edge_label(&edge) {
            return Err(GoodError::UnknownEdgeLabel(edge));
        }
        if !self.is_node_label(&dst) {
            return Err(GoodError::UnknownNodeLabel(dst));
        }
        self.triples.insert((src, edge, dst));
        Ok(())
    }

    /// Convenience: register a functional edge label (if needed) and add
    /// the triple in one step.
    pub fn add_functional(
        &mut self,
        src: impl Into<Label>,
        edge: impl Into<Label>,
        dst: impl Into<Label>,
    ) -> Result<()> {
        let edge = self.add_functional_label(edge)?;
        self.add_triple(src, edge, dst)
    }

    /// Convenience: register a multivalued edge label (if needed) and add
    /// the triple in one step.
    pub fn add_multivalued(
        &mut self,
        src: impl Into<Label>,
        edge: impl Into<Label>,
        dst: impl Into<Label>,
    ) -> Result<()> {
        let edge = self.add_multivalued_label(edge)?;
        self.add_triple(src, edge, dst)
    }

    /// Mark an existing functional triple as a subclass (`isa`) edge.
    ///
    /// Section 4.2: subclass edges are functional and must not form a
    /// cycle; cycle-freedom is checked by [`Scheme::validate`] and at
    /// marking time.
    pub fn mark_subclass(
        &mut self,
        src: impl Into<Label>,
        edge: impl Into<Label>,
        dst: impl Into<Label>,
    ) -> Result<()> {
        let triple = (src.into(), edge.into(), dst.into());
        if !self.triples.contains(&triple) {
            return Err(GoodError::EdgeNotInScheme {
                src: triple.0,
                edge: triple.1,
                dst: triple.2,
            });
        }
        if !self.functional.contains(&triple.1) {
            return Err(GoodError::EdgeKindMismatch {
                label: triple.1,
                registered: EdgeKind::Multivalued,
                used: EdgeKind::Functional,
            });
        }
        self.subclass.insert(triple.clone());
        if self.subclass_has_cycle() {
            self.subclass.remove(&triple);
            return Err(GoodError::IsaCycle);
        }
        Ok(())
    }

    fn subclass_has_cycle(&self) -> bool {
        // DFS over the subclass graph on labels.
        let mut succ: BTreeMap<&Label, Vec<&Label>> = BTreeMap::new();
        for (src, _, dst) in &self.subclass {
            succ.entry(src).or_default().push(dst);
        }
        #[derive(PartialEq, Clone, Copy)]
        enum Mark {
            Grey,
            Black,
        }
        let mut marks: BTreeMap<&Label, Mark> = BTreeMap::new();
        for start in succ.keys().copied().collect::<Vec<_>>() {
            if marks.contains_key(start) {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            marks.insert(start, Mark::Grey);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let children = succ.get(node).map(Vec::as_slice).unwrap_or(&[]);
                if *idx < children.len() {
                    let child = children[*idx];
                    *idx += 1;
                    match marks.get(child) {
                        Some(Mark::Grey) => return true,
                        Some(Mark::Black) => {}
                        None => {
                            marks.insert(child, Mark::Grey);
                            stack.push((child, 0));
                        }
                    }
                } else {
                    marks.insert(node, Mark::Black);
                    stack.pop();
                }
            }
        }
        false
    }

    // ---- queries ---------------------------------------------------------

    /// True if `label` is an object label.
    pub fn is_object_label(&self, label: &Label) -> bool {
        self.objects.contains(label)
    }

    /// True if `label` is a printable object label.
    pub fn is_printable_label(&self, label: &Label) -> bool {
        self.printables.contains_key(label)
    }

    /// True if `label` is a node label (object or printable).
    pub fn is_node_label(&self, label: &Label) -> bool {
        self.is_object_label(label) || self.is_printable_label(label)
    }

    /// True if `label` is an edge label (functional or multivalued).
    pub fn is_edge_label(&self, label: &Label) -> bool {
        self.functional.contains(label) || self.multivalued.contains(label)
    }

    /// The node kind of `label`, if registered.
    pub fn node_kind(&self, label: &Label) -> Option<NodeKind> {
        if self.is_object_label(label) {
            Some(NodeKind::Object)
        } else if self.is_printable_label(label) {
            Some(NodeKind::Printable)
        } else {
            None
        }
    }

    /// The edge kind of `label`, if registered.
    pub fn edge_kind(&self, label: &Label) -> Option<EdgeKind> {
        if self.functional.contains(label) {
            Some(EdgeKind::Functional)
        } else if self.multivalued.contains(label) {
            Some(EdgeKind::Multivalued)
        } else {
            None
        }
    }

    /// The constant domain of a printable label, if registered.
    pub fn printable_type(&self, label: &Label) -> Option<ValueType> {
        self.printables.get(label).copied()
    }

    /// True if `(src, edge, dst)` ∈ P.
    pub fn allows(&self, src: &Label, edge: &Label, dst: &Label) -> bool {
        self.triples
            .contains(&(src.clone(), edge.clone(), dst.clone()))
    }

    /// Iterate over all triples in `P`.
    pub fn triples(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    /// Iterate over all object labels.
    pub fn object_labels(&self) -> impl Iterator<Item = &Label> {
        self.objects.iter()
    }

    /// Iterate over all printable labels with their domains.
    pub fn printable_labels(&self) -> impl Iterator<Item = (&Label, ValueType)> {
        self.printables.iter().map(|(l, t)| (l, *t))
    }

    /// Iterate over all functional edge labels.
    pub fn functional_labels(&self) -> impl Iterator<Item = &Label> {
        self.functional.iter()
    }

    /// Iterate over all multivalued edge labels.
    pub fn multivalued_labels(&self) -> impl Iterator<Item = &Label> {
        self.multivalued.iter()
    }

    /// Triples marked as `isa` subclass edges.
    pub fn subclass_triples(&self) -> impl Iterator<Item = &Triple> {
        self.subclass.iter()
    }

    /// Direct superclasses of `label` along marked `isa` triples.
    pub fn superclasses_of<'a>(&'a self, label: &'a Label) -> impl Iterator<Item = &'a Label> {
        self.subclass
            .iter()
            .filter(move |(src, _, _)| src == label)
            .map(|(_, _, dst)| dst)
    }

    /// All (transitive) superclasses of `label`, excluding itself.
    pub fn ancestors_of(&self, label: &Label) -> Vec<Label> {
        let mut out = Vec::new();
        let mut stack = vec![label.clone()];
        while let Some(current) = stack.pop() {
            for parent in self.superclasses_of(&current) {
                if !out.contains(parent) {
                    out.push(parent.clone());
                    stack.push(parent.clone());
                }
            }
        }
        out
    }

    // ---- composition ----------------------------------------------------

    /// True if `self` is a subscheme of `other` (componentwise set
    /// inclusion, as in the paper's footnote 2).
    pub fn is_subscheme_of(&self, other: &Scheme) -> bool {
        self.objects.is_subset(&other.objects)
            && self
                .printables
                .iter()
                .all(|(l, t)| other.printables.get(l) == Some(t))
            && self.functional.is_subset(&other.functional)
            && self.multivalued.is_subset(&other.multivalued)
            && self.triples.is_subset(&other.triples)
    }

    /// The union of two schemes — "the smallest scheme of which both are
    /// subgraphs" (footnote 3, used for method interfaces).
    ///
    /// Fails if the two schemes register the same label in different
    /// universes.
    pub fn union(&self, other: &Scheme) -> Result<Scheme> {
        let mut out = self.clone();
        for label in &other.objects {
            out.add_object_label(label.clone())?;
        }
        for (label, value_type) in &other.printables {
            out.add_printable_label(label.clone(), *value_type)?;
        }
        for label in &other.functional {
            out.add_functional_label(label.clone())?;
        }
        for label in &other.multivalued {
            out.add_multivalued_label(label.clone())?;
        }
        for (src, edge, dst) in &other.triples {
            out.triples.insert((src.clone(), edge.clone(), dst.clone()));
        }
        for triple in &other.subclass {
            out.subclass.insert(triple.clone());
        }
        if out.subclass_has_cycle() {
            return Err(GoodError::IsaCycle);
        }
        Ok(out)
    }

    /// Full validation: universes disjoint (by construction), every
    /// triple well-formed, `isa` acyclic.
    pub fn validate(&self) -> Result<()> {
        for (src, edge, dst) in &self.triples {
            if !self.objects.contains(src) {
                return Err(GoodError::InvariantViolation(format!(
                    "triple source {src} is not an object label"
                )));
            }
            if !self.is_edge_label(edge) {
                return Err(GoodError::InvariantViolation(format!(
                    "triple edge {edge} is not an edge label"
                )));
            }
            if !self.is_node_label(dst) {
                return Err(GoodError::InvariantViolation(format!(
                    "triple target {dst} is not a node label"
                )));
            }
        }
        for triple in &self.subclass {
            if !self.triples.contains(triple) {
                return Err(GoodError::InvariantViolation(format!(
                    "subclass triple {triple:?} is not in P"
                )));
            }
        }
        if self.subclass_has_cycle() {
            return Err(GoodError::IsaCycle);
        }
        Ok(())
    }

    /// Render the scheme as Graphviz DOT, following the paper's drawing
    /// conventions (boxes for object classes, ovals for printable ones,
    /// double-headed arrows for multivalued edges).
    pub fn to_dot(&self, title: &str) -> String {
        let mut graph: Graph<Label, (Label, EdgeKind)> = Graph::new();
        let mut ids = BTreeMap::new();
        for label in self.objects.iter().chain(self.printables.keys()) {
            ids.insert(label.clone(), graph.add_node(label.clone()));
        }
        for (src, edge, dst) in &self.triples {
            let kind = self.edge_kind(edge).expect("validated triple");
            graph.add_edge(ids[src], ids[dst], (edge.clone(), kind));
        }
        let printables = self.printables.clone();
        good_graph::dot::to_dot(
            &graph,
            title,
            |_, label| {
                if printables.contains_key(label) {
                    DotNode::oval(label.as_str())
                } else {
                    DotNode::boxed(label.as_str())
                }
            },
            |(label, kind)| DotEdge {
                label: label.as_str().into(),
                double_arrow: *kind == EdgeKind::Multivalued,
                bold: false,
                dashed: false,
            },
        )
    }
}

/// Fluent scheme construction for tests and examples.
///
/// ```
/// use good_core::scheme::SchemeBuilder;
/// use good_core::value::ValueType;
///
/// let scheme = SchemeBuilder::new()
///     .object("Info")
///     .printable("String", ValueType::Str)
///     .functional("Info", "name", "String")
///     .build();
/// assert!(scheme.is_object_label(&"Info".into()));
/// ```
#[derive(Debug, Default)]
pub struct SchemeBuilder {
    scheme: Scheme,
}

impl SchemeBuilder {
    /// Start from an empty scheme.
    pub fn new() -> Self {
        SchemeBuilder::default()
    }

    /// Register an object label.
    pub fn object(mut self, label: &str) -> Self {
        self.scheme
            .add_object_label(label)
            .expect("builder: object label");
        self
    }

    /// Register a printable label with its domain.
    pub fn printable(mut self, label: &str, value_type: ValueType) -> Self {
        self.scheme
            .add_printable_label(label, value_type)
            .expect("builder: printable label");
        self
    }

    /// Register (if needed) a functional edge label and add the triple.
    pub fn functional(mut self, src: &str, edge: &str, dst: &str) -> Self {
        self.scheme
            .add_functional(src, edge, dst)
            .expect("builder: functional triple");
        self
    }

    /// Register (if needed) a multivalued edge label and add the triple.
    pub fn multivalued(mut self, src: &str, edge: &str, dst: &str) -> Self {
        self.scheme
            .add_multivalued(src, edge, dst)
            .expect("builder: multivalued triple");
        self
    }

    /// Register a functional triple and mark it as `isa` subclassing.
    pub fn subclass(mut self, src: &str, edge: &str, dst: &str) -> Self {
        self.scheme
            .add_functional(src, edge, dst)
            .expect("builder: subclass triple");
        self.scheme
            .mark_subclass(src, edge, dst)
            .expect("builder: subclass marking");
        self
    }

    /// Finish, validating the result.
    pub fn build(self) -> Scheme {
        self.scheme
            .validate()
            .expect("builder produced invalid scheme");
        self.scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .object("Version")
            .printable("String", ValueType::Str)
            .printable("Date", ValueType::Date)
            .functional("Info", "name", "String")
            .functional("Info", "created", "Date")
            .multivalued("Info", "links-to", "Info")
            .functional("Version", "old", "Info")
            .build()
    }

    #[test]
    fn registration_and_queries() {
        let s = tiny();
        assert!(s.is_object_label(&"Info".into()));
        assert!(s.is_printable_label(&"String".into()));
        assert_eq!(s.edge_kind(&"name".into()), Some(EdgeKind::Functional));
        assert_eq!(s.edge_kind(&"links-to".into()), Some(EdgeKind::Multivalued));
        assert_eq!(s.printable_type(&"Date".into()), Some(ValueType::Date));
        assert!(s.allows(&"Info".into(), &"name".into(), &"String".into()));
        assert!(!s.allows(&"Version".into(), &"name".into(), &"String".into()));
    }

    #[test]
    fn universes_are_disjoint() {
        let mut s = tiny();
        let err = s.add_printable_label("Info", ValueType::Str).unwrap_err();
        assert!(matches!(err, GoodError::LabelUniverseClash { .. }));
        let err = s.add_multivalued_label("name").unwrap_err();
        assert!(matches!(err, GoodError::LabelUniverseClash { .. }));
        // Idempotent re-registration in the same universe is fine.
        s.add_object_label("Info").unwrap();
    }

    #[test]
    fn printable_domain_conflict_rejected() {
        let mut s = tiny();
        let err = s.add_printable_label("String", ValueType::Int).unwrap_err();
        assert!(matches!(err, GoodError::LabelUniverseClash { .. }));
    }

    #[test]
    fn triples_require_registered_labels() {
        let mut s = tiny();
        assert!(matches!(
            s.add_triple("Nope", "name", "String"),
            Err(GoodError::UnknownNodeLabel(_))
        ));
        assert!(matches!(
            s.add_triple("Info", "nope", "String"),
            Err(GoodError::UnknownEdgeLabel(_))
        ));
        assert!(matches!(
            s.add_triple("Info", "name", "Nope"),
            Err(GoodError::UnknownNodeLabel(_))
        ));
        assert!(matches!(
            s.add_triple("String", "name", "String"),
            Err(GoodError::PrintableAsSource(_))
        ));
    }

    #[test]
    fn subscheme_and_union() {
        let small = SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .functional("Info", "name", "String")
            .build();
        let big = tiny();
        assert!(small.is_subscheme_of(&big));
        assert!(!big.is_subscheme_of(&small));
        let union = small.union(&big).unwrap();
        assert_eq!(union, big);
        assert!(small.is_subscheme_of(&union));
    }

    #[test]
    fn union_detects_universe_clash() {
        let a = SchemeBuilder::new().object("X").build();
        let b = SchemeBuilder::new().printable("X", ValueType::Str).build();
        assert!(matches!(
            a.union(&b),
            Err(GoodError::LabelUniverseClash { .. })
        ));
    }

    #[test]
    fn subclass_marking() {
        let mut s = tiny();
        s.add_object_label("Data").unwrap();
        s.add_functional("Data", "isa", "Info").unwrap();
        s.mark_subclass("Data", "isa", "Info").unwrap();
        assert_eq!(s.ancestors_of(&"Data".into()), vec![Label::new("Info")]);
        assert!(s.ancestors_of(&"Info".into()).is_empty());
    }

    #[test]
    fn subclass_requires_existing_functional_triple() {
        let mut s = tiny();
        assert!(matches!(
            s.mark_subclass("Info", "isa", "Version"),
            Err(GoodError::EdgeNotInScheme { .. })
        ));
        assert!(matches!(
            s.mark_subclass("Info", "links-to", "Info"),
            Err(GoodError::EdgeKindMismatch { .. })
        ));
    }

    #[test]
    fn subclass_cycles_rejected() {
        let mut s = SchemeBuilder::new()
            .object("A")
            .object("B")
            .subclass("A", "isa", "B")
            .build();
        s.add_functional("B", "isa2", "A").unwrap();
        assert!(matches!(
            s.mark_subclass("B", "isa2", "A"),
            Err(GoodError::IsaCycle)
        ));
        // The failed marking must not corrupt the scheme.
        s.validate().unwrap();
    }

    #[test]
    fn transitive_ancestors() {
        let s = SchemeBuilder::new()
            .object("A")
            .object("B")
            .object("C")
            .subclass("A", "isa", "B")
            .subclass("B", "isa", "C")
            .build();
        let ancestors = s.ancestors_of(&"A".into());
        assert_eq!(ancestors.len(), 2);
        assert!(ancestors.contains(&Label::new("B")) && ancestors.contains(&Label::new("C")));
    }

    #[test]
    fn dot_output_mentions_shapes() {
        let dot = tiny().to_dot("tiny");
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("arrowhead=\"normalnormal\"")); // links-to
    }

    #[test]
    fn serde_roundtrip() {
        let s = tiny();
        let json = serde_json::to_string(&s).unwrap();
        let back: Scheme = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        back.validate().unwrap();
    }

    #[test]
    fn validate_accepts_builder_output() {
        tiny().validate().unwrap();
    }
}
