//! E7 — the three pattern-evaluation routes of Section 5 raced: the
//! native backtracking matcher, the relational backend (classes as
//! tables, joins — the Antwerp prototype) and the Tarski binary-
//! relation backend (the Indiana route). Also measures load time into
//! each store.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use good_bench::{chain_pattern, instance_of, SIZES};
use good_core::matching::find_matchings;
use good_relational::backend::RelBackend;
use good_tarski::TarskiBackend;
use std::time::Duration;

fn bench_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7/match");
    for size in SIZES {
        let db = instance_of(size);
        let (pattern, _) = chain_pattern(3);
        let relational = RelBackend::from_instance(&db);
        let tarski = TarskiBackend::from_instance(&db);
        group.bench_with_input(BenchmarkId::new("native", size), &size, |b, _| {
            b.iter(|| find_matchings(&pattern, &db).expect("matches"));
        });
        group.bench_with_input(BenchmarkId::new("relational", size), &size, |b, _| {
            b.iter(|| relational.match_pattern(&pattern).expect("matches"));
        });
        group.bench_with_input(BenchmarkId::new("tarski", size), &size, |b, _| {
            b.iter(|| tarski.match_pattern(&pattern).expect("matches"));
        });
    }
    group.finish();
}

fn bench_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7/load");
    for size in SIZES {
        let db = instance_of(size);
        group.bench_with_input(BenchmarkId::new("relational", size), &size, |b, _| {
            b.iter(|| RelBackend::from_instance(&db));
        });
        group.bench_with_input(BenchmarkId::new("tarski", size), &size, |b, _| {
            b.iter(|| TarskiBackend::from_instance(&db));
        });
    }
    group.finish();
}

fn bench_path_expression(c: &mut Criterion) {
    // Tarski's native strength: pure composition chains.
    use good_core::label::Label;
    let mut group = c.benchmark_group("E7/path-expression");
    for size in SIZES {
        let db = instance_of(size);
        let tarski = TarskiBackend::from_instance(&db);
        let classes = vec![Label::new("Info"), Label::new("Info"), Label::new("Info")];
        let edges = vec![Label::new("links-to"), Label::new("links-to")];
        group.bench_with_input(BenchmarkId::new("tarski-compose", size), &size, |b, _| {
            b.iter(|| tarski.eval_path(&classes, &edges).expect("path"));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_match, bench_load, bench_path_expression
}
criterion_main!(benches);
