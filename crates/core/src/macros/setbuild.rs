//! Set building (Figures 12–13).
//!
//! "Combinations of node and edge additions are useful for generating
//! objects corresponding to sets": first a node addition over the empty
//! pattern introduces a single set object, then a multivalued edge
//! addition connects every member matched by a pattern.

use crate::error::Result;
use crate::instance::Instance;
use crate::label::Label;
use crate::ops::{EdgeAddition, NodeAddition, OpReport};
use crate::pattern::Pattern;
use crate::program::Env;
use good_graph::NodeId;

/// Build (or reuse) the singleton set object labeled `set_label` and
/// connect it via multivalued `member_edge` edges to every image of
/// `member_node` under `member_pattern`.
///
/// Returns the set node and the edge-addition report.
pub fn build_set(
    db: &mut Instance,
    env: &mut Env,
    set_label: impl Into<Label>,
    member_pattern: Pattern,
    member_node: NodeId,
    member_edge: impl Into<Label>,
) -> Result<(NodeId, OpReport)> {
    let set_label = set_label.into();
    let member_edge = member_edge.into();

    // Figure 12: the empty-pattern node addition (idempotent: at most
    // one set object ever exists).
    env.burn_fuel()?;
    NodeAddition::new(Pattern::new(), set_label.clone(), []).apply(db)?;
    let set_node = db
        .nodes_with_label(&set_label)
        .next()
        .expect("the empty-pattern NA guarantees one node");

    // Figure 13: connect the members.
    let mut pattern = member_pattern;
    let set_in_pattern = pattern.node(set_label);
    let ea = EdgeAddition::multivalued(pattern, set_in_pattern, member_edge, member_node);
    env.burn_fuel()?;
    let report = ea.apply(db)?;
    Ok((set_node, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeBuilder;
    use crate::value::{Value, ValueType};

    fn setup() -> Instance {
        let scheme = SchemeBuilder::new()
            .object("Info")
            .printable("Date", ValueType::Date)
            .functional("Info", "created", "Date")
            .build();
        let mut db = Instance::new(scheme);
        for (day, count) in [(12, 2), (14, 3)] {
            let date = db.add_printable("Date", Value::date(1990, 1, day)).unwrap();
            for _ in 0..count {
                let info = db.add_object("Info").unwrap();
                db.add_edge(info, "created", date).unwrap();
            }
        }
        db
    }

    #[test]
    fn figures_12_13_collect_jan_14_infos() {
        let mut db = setup();
        let mut env = Env::new();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let date = p.printable("Date", Value::date(1990, 1, 14));
        p.edge(info, "created", date);
        let (set, report) =
            build_set(&mut db, &mut env, "Created-Jan-14", p, info, "contains").unwrap();
        assert_eq!(report.edges_added, 3);
        assert_eq!(db.targets(set, &"contains".into()).count(), 3);
        db.validate().unwrap();
    }

    #[test]
    fn build_set_is_idempotent_and_reuses_the_set_object() {
        let mut db = setup();
        let mut env = Env::new();
        let make = |db: &mut Instance, env: &mut Env| {
            let mut p = Pattern::new();
            let info = p.node("Info");
            let date = p.printable("Date", Value::date(1990, 1, 14));
            p.edge(info, "created", date);
            build_set(db, env, "S", p, info, "contains").unwrap()
        };
        let (set1, _) = make(&mut db, &mut env);
        let (set2, report2) = make(&mut db, &mut env);
        assert_eq!(set1, set2);
        assert_eq!(report2.edges_added, 0);
        assert_eq!(db.label_count(&"S".into()), 1);
    }

    #[test]
    fn empty_member_pattern_builds_empty_set() {
        let mut db = setup();
        let mut env = Env::new();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let date = p.printable("Date", Value::date(1990, 2, 1));
        p.edge(info, "created", date);
        let (set, report) = build_set(&mut db, &mut env, "Empty", p, info, "has").unwrap();
        assert_eq!(report.edges_added, 0);
        assert_eq!(db.targets(set, &"has".into()).count(), 0);
        assert!(db.contains_node(set));
    }
}
