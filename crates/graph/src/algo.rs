//! Graph algorithms used across the reproduction.
//!
//! These are textbook algorithms on [`Graph`], written against the public
//! API so they work for any payload types. `good-core` uses reachability
//! and transitive closure as ground truth when testing the paper's
//! recursive-method simulation of transitive closure (Figures 28–29), and
//! the `isa` inheritance machinery of Section 4.2 uses cycle detection.

use crate::graph::{Graph, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Nodes reachable from `start` following edges forwards, including
/// `start` itself (if live).
pub fn reachable<N, E>(graph: &Graph<N, E>, start: NodeId) -> HashSet<NodeId> {
    let mut seen = HashSet::new();
    if !graph.contains_node(start) {
        return seen;
    }
    let mut queue = VecDeque::from([start]);
    seen.insert(start);
    while let Some(node) = queue.pop_front() {
        for succ in graph.successors(node) {
            if seen.insert(succ) {
                queue.push_back(succ);
            }
        }
    }
    seen
}

/// Nodes reachable from `start` following edges forwards, restricted to
/// edges whose payload satisfies `follow`.
pub fn reachable_by<N, E>(
    graph: &Graph<N, E>,
    start: NodeId,
    mut follow: impl FnMut(&E) -> bool,
) -> HashSet<NodeId> {
    let mut seen = HashSet::new();
    if !graph.contains_node(start) {
        return seen;
    }
    let mut queue = VecDeque::from([start]);
    seen.insert(start);
    while let Some(node) = queue.pop_front() {
        for edge in graph.out_edges(node) {
            if follow(edge.payload) && seen.insert(edge.dst) {
                queue.push_back(edge.dst);
            }
        }
    }
    seen
}

/// The transitive closure as a map `node -> set of strictly-later nodes`
/// (i.e. excluding the node itself unless it lies on a cycle), restricted
/// to edges whose payload satisfies `follow`.
///
/// This is the reference semantics for the paper's `rec-links-to`
/// example: an edge `(m, n)` is in the closure iff there is a non-empty
/// path of `follow` edges from `m` to `n`.
pub fn transitive_closure_by<N, E>(
    graph: &Graph<N, E>,
    mut follow: impl FnMut(&E) -> bool,
) -> HashMap<NodeId, HashSet<NodeId>> {
    // Collect the filtered successor lists once.
    let mut succ: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for node in graph.node_ids() {
        succ.insert(node, Vec::new());
    }
    for edge in graph.edges() {
        if follow(edge.payload) {
            succ.get_mut(&edge.src).expect("src is live").push(edge.dst);
        }
    }
    let mut closure = HashMap::new();
    for node in graph.node_ids() {
        // BFS from each direct successor, so `node` itself is included
        // only when it is on a cycle.
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut queue: VecDeque<NodeId> = succ[&node].iter().copied().collect();
        for first in &succ[&node] {
            seen.insert(*first);
        }
        while let Some(next) = queue.pop_front() {
            for s in &succ[&next] {
                if seen.insert(*s) {
                    queue.push_back(*s);
                }
            }
        }
        closure.insert(node, seen);
    }
    closure
}

/// True if the subgraph induced by edges satisfying `follow` contains a
/// directed cycle. Used to validate `isa` hierarchies (the paper requires
/// subclass edges not to form a cycle).
pub fn has_cycle_by<N, E>(graph: &Graph<N, E>, mut follow: impl FnMut(&E) -> bool) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut succ: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for node in graph.node_ids() {
        succ.insert(node, Vec::new());
    }
    for edge in graph.edges() {
        if follow(edge.payload) {
            succ.get_mut(&edge.src).expect("src live").push(edge.dst);
        }
    }
    let mut marks: HashMap<NodeId, Mark> = graph.node_ids().map(|n| (n, Mark::White)).collect();
    // Iterative DFS with an explicit stack of (node, next-child-index).
    for root in graph.node_ids() {
        if marks[&root] != Mark::White {
            continue;
        }
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        marks.insert(root, Mark::Grey);
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx < succ[&node].len() {
                let child = succ[&node][*idx];
                *idx += 1;
                match marks[&child] {
                    Mark::Grey => return true,
                    Mark::White => {
                        marks.insert(child, Mark::Grey);
                        stack.push((child, 0));
                    }
                    Mark::Black => {}
                }
            } else {
                marks.insert(node, Mark::Black);
                stack.pop();
            }
        }
    }
    false
}

/// Topological order of the subgraph induced by edges satisfying
/// `follow`, or `None` if that subgraph has a cycle.
pub fn topo_sort_by<N, E>(
    graph: &Graph<N, E>,
    mut follow: impl FnMut(&E) -> bool,
) -> Option<Vec<NodeId>> {
    let mut in_deg: HashMap<NodeId, usize> = graph.node_ids().map(|n| (n, 0)).collect();
    let mut succ: HashMap<NodeId, Vec<NodeId>> =
        graph.node_ids().map(|n| (n, Vec::new())).collect();
    for edge in graph.edges() {
        if follow(edge.payload) {
            *in_deg.get_mut(&edge.dst).expect("dst live") += 1;
            succ.get_mut(&edge.src).expect("src live").push(edge.dst);
        }
    }
    let mut queue: VecDeque<NodeId> = in_deg
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(n, _)| *n)
        .collect();
    let mut order = Vec::with_capacity(graph.node_count());
    while let Some(node) = queue.pop_front() {
        order.push(node);
        for s in &succ[&node] {
            let d = in_deg.get_mut(s).expect("live");
            *d -= 1;
            if *d == 0 {
                queue.push_back(*s);
            }
        }
    }
    (order.len() == graph.node_count()).then_some(order)
}

/// Weakly connected components (edge direction ignored), as a vector of
/// node sets.
pub fn weakly_connected_components<N, E>(graph: &Graph<N, E>) -> Vec<HashSet<NodeId>> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut components = Vec::new();
    for root in graph.node_ids() {
        if seen.contains(&root) {
            continue;
        }
        let mut component = HashSet::new();
        let mut queue = VecDeque::from([root]);
        seen.insert(root);
        component.insert(root);
        while let Some(node) = queue.pop_front() {
            let neighbours = graph.successors(node).chain(graph.predecessors(node));
            for n in neighbours {
                if seen.insert(n) {
                    component.insert(n);
                    queue.push_back(n);
                }
            }
        }
        components.push(component);
    }
    components
}

/// Strongly connected components (Tarjan's algorithm, iterative).
pub fn strongly_connected_components<N, E>(graph: &Graph<N, E>) -> Vec<Vec<NodeId>> {
    struct State {
        index: HashMap<NodeId, usize>,
        lowlink: HashMap<NodeId, usize>,
        on_stack: HashSet<NodeId>,
        stack: Vec<NodeId>,
        next_index: usize,
        components: Vec<Vec<NodeId>>,
    }
    let mut st = State {
        index: HashMap::new(),
        lowlink: HashMap::new(),
        on_stack: HashSet::new(),
        stack: Vec::new(),
        next_index: 0,
        components: Vec::new(),
    };
    let succ: HashMap<NodeId, Vec<NodeId>> = graph
        .node_ids()
        .map(|n| (n, graph.successors(n).collect()))
        .collect();

    for root in graph.node_ids() {
        if st.index.contains_key(&root) {
            continue;
        }
        // Explicit call stack: (node, next-child-index).
        let mut call: Vec<(NodeId, usize)> = vec![(root, 0)];
        st.index.insert(root, st.next_index);
        st.lowlink.insert(root, st.next_index);
        st.next_index += 1;
        st.stack.push(root);
        st.on_stack.insert(root);

        while let Some(&mut (node, ref mut child)) = call.last_mut() {
            if *child < succ[&node].len() {
                let next = succ[&node][*child];
                *child += 1;
                if !st.index.contains_key(&next) {
                    st.index.insert(next, st.next_index);
                    st.lowlink.insert(next, st.next_index);
                    st.next_index += 1;
                    st.stack.push(next);
                    st.on_stack.insert(next);
                    call.push((next, 0));
                } else if st.on_stack.contains(&next) {
                    let low = st.lowlink[&node].min(st.index[&next]);
                    st.lowlink.insert(node, low);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    let low = st.lowlink[&parent].min(st.lowlink[&node]);
                    st.lowlink.insert(parent, low);
                }
                if st.lowlink[&node] == st.index[&node] {
                    let mut component = Vec::new();
                    loop {
                        let popped = st.stack.pop().expect("tarjan stack underflow");
                        st.on_stack.remove(&popped);
                        component.push(popped);
                        if popped == node {
                            break;
                        }
                    }
                    st.components.push(component);
                }
            }
        }
    }
    st.components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> (Graph<usize, ()>, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        (g, ids)
    }

    #[test]
    fn reachable_on_chain() {
        let (g, ids) = chain(5);
        let r = reachable(&g, ids[2]);
        assert_eq!(r.len(), 3); // 2, 3, 4
        assert!(r.contains(&ids[2]) && r.contains(&ids[4]) && !r.contains(&ids[1]));
    }

    #[test]
    fn reachable_by_filters_edges() {
        let mut g: Graph<(), &str> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, "yes");
        g.add_edge(b, c, "no");
        let r = reachable_by(&g, a, |e| *e == "yes");
        assert!(r.contains(&b) && !r.contains(&c));
    }

    #[test]
    fn transitive_closure_on_chain_excludes_self() {
        let (g, ids) = chain(4);
        let tc = transitive_closure_by(&g, |_| true);
        assert_eq!(tc[&ids[0]].len(), 3);
        assert!(!tc[&ids[0]].contains(&ids[0]));
        assert!(tc[&ids[2]].contains(&ids[3]));
        assert!(tc[&ids[3]].is_empty());
    }

    #[test]
    fn transitive_closure_includes_self_on_cycle() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        let tc = transitive_closure_by(&g, |_| true);
        assert!(tc[&a].contains(&a));
        assert!(tc[&a].contains(&b));
    }

    #[test]
    fn cycle_detection() {
        let (mut g, ids) = chain(3);
        assert!(!has_cycle_by(&g, |_| true));
        g.add_edge(ids[2], ids[0], ());
        assert!(has_cycle_by(&g, |_| true));
    }

    #[test]
    fn cycle_detection_respects_filter() {
        let mut g: Graph<(), &str> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, "isa");
        g.add_edge(b, a, "other");
        assert!(!has_cycle_by(&g, |e| *e == "isa"));
        assert!(has_cycle_by(&g, |_| true));
    }

    #[test]
    fn topo_sort_orders_chain() {
        let (g, ids) = chain(4);
        let order = topo_sort_by(&g, |_| true).expect("acyclic");
        let pos: HashMap<_, _> = order.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        for w in ids.windows(2) {
            assert!(pos[&w[0]] < pos[&w[1]]);
        }
    }

    #[test]
    fn topo_sort_rejects_cycle() {
        let (mut g, ids) = chain(3);
        g.add_edge(ids[2], ids[0], ());
        assert!(topo_sort_by(&g, |_| true).is_none());
    }

    #[test]
    fn weak_components() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(b, a, ()); // direction must not matter
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert!(comps
            .iter()
            .any(|comp| comp.contains(&c) && comp.len() == 1));
    }

    #[test]
    fn scc_finds_cycle_component() {
        let (mut g, ids) = chain(4);
        g.add_edge(ids[2], ids[1], ());
        let mut sccs = strongly_connected_components(&g);
        sccs.sort_by_key(|c| std::cmp::Reverse(c.len()));
        assert_eq!(sccs[0].len(), 2);
        assert!(sccs[0].contains(&ids[1]) && sccs[0].contains(&ids[2]));
        assert_eq!(sccs.len(), 3);
    }

    #[test]
    fn scc_singletons_on_dag() {
        let (g, _) = chain(5);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 5);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }
}
