//! A generational slot arena.
//!
//! Identifiers are `(index, generation)` pairs. Removing a slot bumps its
//! generation, so stale identifiers held by callers can never silently
//! alias a later insertion — the classic ABA hazard of free-list arenas.
//! This matters for GOOD because node deletion (`ND`) is a first-class
//! operation and patterns, matchings and method frames all hold node
//! handles across mutations.
//!
//! Slots are stored in a persistent [`PVec`](crate::pvec::PVec), so
//! cloning an arena is one `Arc` bump and mutating it path-copies only
//! the O(log n) trie nodes around the touched slot — the property the
//! snapshot/MVCC layers above rely on for O(delta) publishes.

use crate::pvec::PVec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A handle into an [`Arena`].
///
/// `ArenaId` is intentionally opaque; the only guarantees are that it is
/// `Copy`, cheap to hash, and that an id obtained from [`Arena::insert`]
/// stays valid exactly until the corresponding [`Arena::remove`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArenaId {
    index: u32,
    generation: u32,
}

impl ArenaId {
    /// The slot index. Only meaningful to the arena that produced the id,
    /// but useful as a dense key for side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The generation of the slot when this id was produced.
    #[inline]
    pub fn generation(self) -> u32 {
        self.generation
    }

    /// Construct an id from raw parts. Exposed for (de)serialization of
    /// higher-level structures; using a fabricated id with the wrong arena
    /// is safe but will simply fail lookups.
    #[inline]
    pub fn from_raw(index: u32, generation: u32) -> Self {
        ArenaId { index, generation }
    }
}

impl fmt::Debug for ArenaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}v{}", self.index, self.generation)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Slot<T> {
    Occupied {
        generation: u32,
        value: T,
    },
    Vacant {
        generation: u32,
        next_free: Option<u32>,
    },
}

/// A generational arena: a persistent vector of slots with an intrusive
/// free list.
///
/// Insertions reuse vacated slots (keeping the id space dense, which the
/// graph layer exploits for `Vec`-backed side tables) and removals are
/// O(1). Cloning is O(1) — the slot trie is structurally shared with
/// the clone until either side writes.
#[derive(Debug, Clone, Serialize)]
pub struct Arena<T> {
    slots: PVec<Slot<T>>,
    free_head: Option<u32>,
    len: usize,
}

// Manual impl because the derive would not add the `T: Clone` bound
// that `PVec`'s deserializer (which builds by `push`) requires.
impl<T: Deserialize + Clone> Deserialize for Arena<T> {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        let entries = serde::__private::expect_map(content, "Arena")?;
        Ok(Arena {
            slots: Deserialize::from_content(serde::__private::map_field(
                entries, "slots", "Arena",
            )?)?,
            free_head: Deserialize::from_content(serde::__private::map_field(
                entries,
                "free_head",
                "Arena",
            )?)?,
            len: Deserialize::from_content(serde::__private::map_field(entries, "len", "Arena")?)?,
        })
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Create an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: PVec::new(),
            free_head: None,
            len: 0,
        }
    }

    /// Create an empty arena. (Capacity hints are meaningless for the
    /// persistent trie; kept for API stability.)
    pub fn with_capacity(_capacity: usize) -> Self {
        Arena::new()
    }

    /// Number of live values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no live values are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The exclusive upper bound of slot indexes ever used. Useful for
    /// sizing dense side tables indexed by [`ArenaId::index`].
    #[inline]
    pub fn index_bound(&self) -> usize {
        self.slots.len()
    }

    /// True if `id` refers to a live value.
    #[inline]
    pub fn contains(&self, id: ArenaId) -> bool {
        self.get(id).is_some()
    }

    /// Shared access to the value with id `id`.
    #[inline]
    pub fn get(&self, id: ArenaId) -> Option<&T> {
        match self.slots.get(id.index()) {
            Some(Slot::Occupied { generation, value }) if *generation == id.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Iterate over `(id, &value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (ArenaId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| match slot {
                Slot::Occupied { generation, value } => Some((
                    ArenaId {
                        index: index as u32,
                        generation: *generation,
                    },
                    value,
                )),
                Slot::Vacant { .. } => None,
            })
    }

    /// Iterate over live ids.
    pub fn ids(&self) -> impl Iterator<Item = ArenaId> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// Rough heap footprint of the slot trie in bytes (payload
    /// indirections are not followed). Feeds byte-based MVCC retention.
    pub fn approx_bytes(&self) -> usize {
        self.slots.approx_bytes()
    }

    /// Drop all values and reset the arena. Previously issued ids become
    /// invalid (generations are *not* preserved across `clear`, so only use
    /// this when no stale ids can be dereferenced afterwards).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = None;
        self.len = 0;
    }
}

impl<T: Clone> Arena<T> {
    /// Insert a value, returning its id.
    pub fn insert(&mut self, value: T) -> ArenaId {
        self.len += 1;
        match self.free_head {
            Some(index) => {
                let slot = self
                    .slots
                    .get_mut(index as usize)
                    .expect("free list points outside the slot vector");
                let (generation, next_free) = match slot {
                    Slot::Vacant {
                        generation,
                        next_free,
                    } => (*generation, *next_free),
                    Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
                };
                self.free_head = next_free;
                *slot = Slot::Occupied { generation, value };
                ArenaId { index, generation }
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("arena capacity exceeded u32");
                self.slots.push(Slot::Occupied {
                    generation: 0,
                    value,
                });
                ArenaId {
                    index,
                    generation: 0,
                }
            }
        }
    }

    /// Remove the value with id `id`, returning it if it was live.
    pub fn remove(&mut self, id: ArenaId) -> Option<T> {
        let slot = self.slots.get_mut(id.index())?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == id.generation => {
                let next_gen = id.generation.wrapping_add(1);
                let old = std::mem::replace(
                    slot,
                    Slot::Vacant {
                        generation: next_gen,
                        next_free: self.free_head,
                    },
                );
                self.free_head = Some(id.index);
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Vacant { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Mutable access to the value with id `id`.
    #[inline]
    pub fn get_mut(&mut self, id: ArenaId) -> Option<&mut T> {
        match self.slots.get_mut(id.index()) {
            Some(Slot::Occupied { generation, value }) if *generation == id.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// A structure-unsharing clone: rebuilds the slot trie node by node so
    /// the result shares nothing with `self`. This models the
    /// pre-persistent O(graph) clone cost and serves as the bench
    /// baseline for E16.
    pub fn deep_clone(&self) -> Self {
        Arena {
            slots: self.slots.deep_clone(),
            free_head: self.free_head,
            len: self.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena = Arena::new();
        let a = arena.insert("a");
        let b = arena.insert("b");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), Some(&"a"));
        assert_eq!(arena.get(b), Some(&"b"));
        assert_eq!(arena.remove(a), Some("a"));
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn stale_id_does_not_alias_reused_slot() {
        let mut arena = Arena::new();
        let a = arena.insert(1);
        arena.remove(a);
        let b = arena.insert(2);
        // Slot is reused...
        assert_eq!(a.index(), b.index());
        // ...but the stale id no longer resolves.
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.get(b), Some(&2));
        assert_eq!(arena.remove(a), None);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn free_list_reuses_multiple_slots() {
        let mut arena = Arena::new();
        let ids: Vec<_> = (0..10).map(|i| arena.insert(i)).collect();
        for id in &ids[2..5] {
            arena.remove(*id);
        }
        let bound_before = arena.index_bound();
        for i in 100..103 {
            arena.insert(i);
        }
        // Reinsertions reuse vacated slots instead of growing the arena.
        assert_eq!(arena.index_bound(), bound_before);
        assert_eq!(arena.len(), 10);
    }

    #[test]
    fn iteration_skips_vacant_slots() {
        let mut arena = Arena::new();
        let a = arena.insert("a");
        let _b = arena.insert("b");
        let c = arena.insert("c");
        arena.remove(a);
        arena.remove(c);
        let values: Vec<_> = arena.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec!["b"]);
    }

    #[test]
    fn clone_shares_until_written() {
        let mut arena = Arena::new();
        let ids: Vec<_> = (0..100).map(|i| arena.insert(i)).collect();
        let snapshot = arena.clone();
        *arena.get_mut(ids[0]).unwrap() = 999;
        arena.remove(ids[50]);
        // The clone is an unchanged point-in-time view.
        assert_eq!(snapshot.get(ids[0]), Some(&0));
        assert_eq!(snapshot.get(ids[50]), Some(&50));
        assert_eq!(snapshot.len(), 100);
        assert_eq!(arena.get(ids[0]), Some(&999));
        assert_eq!(arena.len(), 99);
    }

    #[test]
    fn get_mut_respects_generation() {
        let mut arena = Arena::new();
        let a = arena.insert(1);
        arena.remove(a);
        assert!(arena.get_mut(a).is_none());
    }

    #[test]
    fn clear_resets() {
        let mut arena = Arena::new();
        arena.insert(1);
        arena.insert(2);
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.index_bound(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let mut arena = Arena::new();
        let a = arena.insert(7u32);
        arena.insert(8);
        let json = serde_json::to_string(&arena).unwrap();
        let back: Arena<u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(a), Some(&7));
    }
}
