//! Durable object bases: create a journaled store, execute programs,
//! crash-and-recover, checkpoint.
//!
//! Run with `cargo run --example persistent`.

use good::model::label::Label;
use good::model::ops::NodeAddition;
use good::model::pattern::Pattern;
use good::model::program::{Operation, Program};
use good::model::scheme::SchemeBuilder;
use good::model::value::ValueType;
use good::store::Store;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join(format!("good-demo-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let scheme = SchemeBuilder::new()
        .object("Note")
        .printable("String", ValueType::Str)
        .functional("Note", "text", "String")
        .multivalued("Note", "refers-to", "Note")
        .build();

    // ---- session 1: create and populate ---------------------------------
    {
        let mut store = Store::create(&path, scheme)?;
        for index in 0..3 {
            let program = Program::from_ops([Operation::NodeAdd(NodeAddition::new(
                Pattern::new(),
                format!("Seed{index}").as_str(),
                [],
            ))]);
            store.execute(&program)?;
        }
        // Tag every seed class node under a common class, via one program.
        let mut tagging = Program::new();
        for index in 0..3 {
            let mut pattern = Pattern::new();
            let seed = pattern.node(format!("Seed{index}").as_str());
            tagging.push(Operation::NodeAdd(NodeAddition::new(
                pattern,
                "Note",
                [(Label::new(format!("from{index}")), seed)],
            )));
        }
        store.execute(&tagging)?;
        println!(
            "session 1: {} journal records, {} nodes",
            store.record_count(),
            store.instance().node_count()
        );
    } // store dropped — like a clean shutdown

    // ---- simulate a crash mid-append --------------------------------------
    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new().append(true).open(&path)?;
        file.write_all(b"{\"Apply\":{\"ops\":[{\"NodeAdd\"")?; // torn record
        println!("simulated a crash half-way through an append");
    }

    // ---- session 2: recover ------------------------------------------------
    let mut store = Store::open(&path)?;
    println!(
        "session 2: recovered (torn tail discarded: {}), {} nodes intact",
        store.recovered_torn_tail(),
        store.instance().node_count()
    );
    store.instance().validate()?;

    // ---- checkpoint -----------------------------------------------------------
    let before = std::fs::metadata(&path)?.len();
    store.checkpoint()?;
    let after = std::fs::metadata(&path)?.len();
    println!("checkpoint: journal {before} bytes -> {after} bytes");

    // ---- query the durable state ------------------------------------------------
    let mut pattern = Pattern::new();
    pattern.node("Note");
    println!(
        "query: {} Note objects survive everything",
        store.query(&pattern)?.len()
    );

    std::fs::remove_file(&path)?;
    Ok(())
}
