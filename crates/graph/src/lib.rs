//! `good-graph` — the generic labeled-multigraph substrate underlying the
//! GOOD object database model reproduction.
//!
//! The GOOD paper (Gyssens, Paredaens, Van den Bussche, Van Gucht, PODS
//! 1990) represents *everything* — schemes, instances, patterns — as
//! directed labeled graphs. This crate provides the storage layer those
//! higher-level structures are built on:
//!
//! * [`Graph`] — a generational-arena directed multigraph with payloads on
//!   nodes and edges, O(1) insertion/removal and stable identifiers;
//! * [`NodeId`] / [`EdgeId`] — copyable, generation-checked handles;
//! * [`pvec`] — the persistent, structurally shared vector the arenas
//!   store their slots in, making `Graph::clone` O(1) `Arc` bumps and
//!   mutation O(delta · log n) path copies (the substrate of the MVCC
//!   snapshot layer in `good-core`/`good-server`);
//! * [`algo`] — reachability, transitive closure, strongly connected
//!   components, topological sorting, connected components;
//! * [`iso`] — a VF2-style (sub)graph isomorphism checker, used by the
//!   test suites to compare instances "up to the particular choice of new
//!   objects" as the paper phrases determinism;
//! * [`dot`] — Graphviz DOT emission, the reproduction's stand-in for the
//!   paper's graphical user interface.
//!
//! The crate is deliberately independent of GOOD semantics: labels,
//! printable values and invariants live in `good-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod arena;
pub mod dot;
pub mod graph;
pub mod iso;
pub mod pvec;

pub use arena::{Arena, ArenaId};
pub use graph::{EdgeId, EdgeRef, Graph, NodeId, NodeRef};
