//! The rule-based layer (Section 5's G-Log direction): GOOD operations
//! as condition ⇒ action rules, saturated to a fixpoint — the classic
//! Datalog ancestor program running over an object base.
//!
//! Run with `cargo run --example datalog`.

use good::model::label::Label;
use good::model::ops::EdgeAddition;
use good::model::pattern::Pattern;
use good::model::program::{Env, Operation};
use good::model::rules::{Rule, RuleSet};
use good::model::scheme::SchemeBuilder;

fn main() -> Result<(), good::model::error::GoodError> {
    let scheme = SchemeBuilder::new()
        .object("Person")
        .multivalued("Person", "parent", "Person")
        .multivalued("Person", "ancestor", "Person")
        .build();
    let mut db = good::model::instance::Instance::new(scheme);

    // A family line with a branch: alice -> bob -> carol -> dave,
    // and bob -> erin.
    let people: Vec<_> = (0..5).map(|_| db.add_object("Person").unwrap()).collect();
    let names = ["alice", "bob", "carol", "dave", "erin"];
    for (child, parent) in [(1, 0), (2, 1), (3, 2), (4, 1)] {
        db.add_edge(people[child], "parent", people[parent])?;
    }

    // ancestor(x,y) :- parent(x,y).
    let mut base = Pattern::new();
    let x = base.node("Person");
    let y = base.node("Person");
    base.edge(x, "parent", y);
    let base_rule = Rule::new(
        "ancestor(x,y) :- parent(x,y)",
        Operation::EdgeAdd(EdgeAddition::multivalued(base, x, "ancestor", y)),
    );

    // ancestor(x,z) :- ancestor(x,y), parent(y,z).
    let mut step = Pattern::new();
    let x = step.node("Person");
    let y = step.node("Person");
    let z = step.node("Person");
    step.edge(x, "ancestor", y);
    step.edge(y, "parent", z);
    let step_rule = Rule::new(
        "ancestor(x,z) :- ancestor(x,y), parent(y,z)",
        Operation::EdgeAdd(EdgeAddition::multivalued(step, x, "ancestor", z)),
    );

    let rules = RuleSet::from_rules([base_rule, step_rule]);
    let report = rules.saturate(&mut db, &mut Env::new())?;
    println!("saturated in {} rounds:", report.rounds);
    for (name, ops) in &report.per_rule {
        println!("  {:45} derived {} edge(s)", name, ops.edges_added);
    }

    println!("\nancestor facts:");
    let ancestor = Label::new("ancestor");
    for edge in db.graph().edges().filter(|e| e.payload.label == ancestor) {
        let name_of = |node| {
            people
                .iter()
                .position(|p| *p == node)
                .map(|index| names[index])
                .unwrap_or("?")
        };
        println!("  ancestor({}, {})", name_of(edge.src), name_of(edge.dst));
    }
    db.validate()?;
    Ok(())
}
