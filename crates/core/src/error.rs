//! Error types for the GOOD model.

use crate::label::{EdgeKind, Label, NodeKind};
use crate::value::{Value, ValueType};
use std::fmt;

/// Everything that can go wrong constructing or transforming an object
/// base.
///
/// The paper distinguishes situations where a result is *undefined* (an
/// inconsistent edge addition, Section 3.2) from plain misuse (adding an
/// edge not allowed by the scheme). Both surface as `Err` here; tests
/// match on the exact variant.
#[derive(Debug, Clone, PartialEq)]
pub enum GoodError {
    /// A label was registered in one universe and used as another (the
    /// four label sets are pairwise disjoint).
    LabelUniverseClash {
        /// The offending label.
        label: Label,
        /// Description of the existing registration.
        existing: &'static str,
        /// Description of the attempted registration.
        attempted: &'static str,
    },
    /// A node label is not part of the scheme.
    UnknownNodeLabel(Label),
    /// An edge label is not part of the scheme.
    UnknownEdgeLabel(Label),
    /// An edge `(src, λ, dst)` is not licensed by the scheme's triple set
    /// `P ⊆ OL × (MEL ∪ FEL) × (OL ∪ POL)`.
    EdgeNotInScheme {
        /// Source node label.
        src: Label,
        /// Edge label.
        edge: Label,
        /// Destination node label.
        dst: Label,
    },
    /// `P` requires edge sources to be object labels; a printable label
    /// was used as a source.
    PrintableAsSource(Label),
    /// A printable node was created without a print value, or an object
    /// node with one.
    PrintMismatch {
        /// The node label involved.
        label: Label,
        /// Its kind in the scheme.
        kind: NodeKind,
    },
    /// The print value's domain does not match the printable label's
    /// declared constant set.
    ValueTypeMismatch {
        /// The printable label.
        label: Label,
        /// Its declared domain.
        expected: ValueType,
        /// The offending value.
        value: Value,
    },
    /// Adding this edge would give a node two distinct `λ`-successors for
    /// functional `λ` — the paper's "result is not defined" case (i).
    FunctionalConflict {
        /// Edge label.
        edge: Label,
        /// Display string of the source node.
        src: String,
    },
    /// Adding this edge would give a node `λ`-successors with different
    /// node labels — the paper's "result is not defined" case (ii).
    TargetLabelConflict {
        /// Edge label.
        edge: Label,
        /// The label already used by existing `λ`-successors.
        existing: Label,
        /// The conflicting new target label.
        new: Label,
    },
    /// An edge label was used with the wrong multiplicity kind.
    EdgeKindMismatch {
        /// The edge label.
        label: Label,
        /// Kind registered in the scheme.
        registered: EdgeKind,
        /// Kind implied by the usage.
        used: EdgeKind,
    },
    /// A node id did not refer to a live node of the instance/pattern.
    DanglingNode(String),
    /// An operation referenced a pattern node that is not in its source
    /// pattern.
    NodeNotInPattern(String),
    /// An edge-deletion referenced an edge that is not in its source
    /// pattern.
    EdgeNotInPattern {
        /// Edge label of the missing edge.
        edge: Label,
    },
    /// A pattern failed validation against the scheme.
    InvalidPattern(String),
    /// A method was called that is not registered in the environment.
    UnknownMethod(String),
    /// A method call's receiver or arguments do not match the method
    /// specification.
    MethodSignatureMismatch(String),
    /// Execution exceeded the environment's fuel bound — the language is
    /// Turing-complete, so runaway recursion must be detectable.
    OutOfFuel {
        /// The fuel budget that was exhausted.
        budget: u64,
        /// Where fuel ran out: the method-call stack and op indices at
        /// the moment of exhaustion, e.g. `op 2 (MC) > method Update >
        /// op 1 (EA)`. Empty when exhaustion happened outside any
        /// program or method scope.
        context: String,
    },
    /// The `isa` subclass hierarchy contains a cycle (forbidden by
    /// Section 4.2).
    IsaCycle,
    /// An instance-level invariant was found violated (used by
    /// [`Instance::validate`](crate::instance::Instance::validate)).
    InvariantViolation(String),
}

impl fmt::Display for GoodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoodError::LabelUniverseClash { label, existing, attempted } => write!(
                f,
                "label {label} is already registered as {existing}; cannot also register it as {attempted} (the four label sets are pairwise disjoint)"
            ),
            GoodError::UnknownNodeLabel(label) => {
                write!(f, "node label {label} is not part of the scheme")
            }
            GoodError::UnknownEdgeLabel(label) => {
                write!(f, "edge label {label} is not part of the scheme")
            }
            GoodError::EdgeNotInScheme { src, edge, dst } => write!(
                f,
                "edge ({src}, {edge}, {dst}) is not licensed by the scheme's triple set P"
            ),
            GoodError::PrintableAsSource(label) => write!(
                f,
                "printable label {label} cannot be an edge source (P ⊆ OL × EL × (OL ∪ POL))"
            ),
            GoodError::PrintMismatch { label, kind } => match kind {
                NodeKind::Printable => {
                    write!(f, "printable node {label} requires a print value")
                }
                NodeKind::Object => {
                    write!(f, "object node {label} cannot carry a print value")
                }
            },
            GoodError::ValueTypeMismatch { label, expected, value } => write!(
                f,
                "printable label {label} ranges over {expected} constants, got {value}"
            ),
            GoodError::FunctionalConflict { edge, src } => write!(
                f,
                "functional edge {edge} from {src} would become multi-valued; the result of this operation is undefined"
            ),
            GoodError::TargetLabelConflict { edge, existing, new } => write!(
                f,
                "edge {edge} would point at nodes with different labels ({existing} vs {new}); the result of this operation is undefined"
            ),
            GoodError::EdgeKindMismatch { label, registered, used } => write!(
                f,
                "edge label {label} is registered as {registered} but used as {used}"
            ),
            GoodError::DanglingNode(node) => write!(f, "node {node} is not live"),
            GoodError::NodeNotInPattern(node) => {
                write!(f, "node {node} is not part of the operation's source pattern")
            }
            GoodError::EdgeNotInPattern { edge } => write!(
                f,
                "edge deletion requires the {edge} edge to be present in the source pattern"
            ),
            GoodError::InvalidPattern(msg) => write!(f, "invalid pattern: {msg}"),
            GoodError::UnknownMethod(name) => write!(f, "method {name} is not registered"),
            GoodError::MethodSignatureMismatch(msg) => {
                write!(f, "method call does not match its specification: {msg}")
            }
            GoodError::OutOfFuel { budget, context } => {
                write!(
                    f,
                    "execution exceeded the fuel budget of {budget} operation applications (possible divergent recursion)"
                )?;
                if !context.is_empty() {
                    write!(f, " at {context}")?;
                }
                Ok(())
            }
            GoodError::IsaCycle => {
                write!(f, "the isa subclass hierarchy must not contain cycles")
            }
            GoodError::InvariantViolation(msg) => write!(f, "instance invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for GoodError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, GoodError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let err = GoodError::FunctionalConflict {
            edge: Label::new("created"),
            src: "Info#3".into(),
        };
        let text = err.to_string();
        assert!(text.contains("created"));
        assert!(text.contains("undefined"));

        let err = GoodError::OutOfFuel {
            budget: 10,
            context: String::new(),
        };
        assert!(err.to_string().contains("10"));

        let err = GoodError::OutOfFuel {
            budget: 10,
            context: "op 2 (MC) > method Update > op 1 (EA)".into(),
        };
        let text = err.to_string();
        assert!(text.contains("method Update"));
        assert!(text.contains("op 1 (EA)"));
    }

    #[test]
    fn is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&GoodError::IsaCycle);
    }
}
