//! `good-store` — journaled durable storage for GOOD object bases.
//!
//! The paper's prototype persisted GOOD databases through a host
//! relational system (Section 5); a standalone library needs its own
//! durability story. This crate provides the standard one:
//!
//! * a **journal** file of JSON-line records — a leading
//!   [`LogRecord::Snapshot`] followed by [`LogRecord::Apply`] /
//!   [`LogRecord::RegisterMethod`] entries and group-commit batches
//!   ([`LogRecord::BatchApply`]* closed by one
//!   [`LogRecord::BatchCommit`], fsynced once per group);
//! * **atomic execution**: a program is applied to a clone first; only
//!   on success is the record appended (and fsynced) and the clone
//!   committed — a failing program can neither corrupt the in-memory
//!   instance nor the journal;
//! * **crash recovery**: a torn final record (the classic
//!   crash-during-append) is detected, ignored, and truncated on open;
//!   corruption anywhere earlier is an error, not a silent truncation;
//! * **checkpointing**: collapse the journal into a fresh snapshot,
//!   written to a temporary file, atomically renamed into place, and
//!   made durable with a parent-directory fsync;
//! * **poisoning**: if an append cannot be made durably (the write or
//!   its fsync fails), the record's durability is unknowable, so the
//!   store rejects all further mutations until reopened — committed
//!   state stays readable, and recovery on reopen decides whether the
//!   ambiguous record survived.
//!
//! All journal I/O goes through the [`vfs::Vfs`] trait, so the whole
//! contract is exercised under simulated power loss by the
//! deterministic [`torture`] harness (see DESIGN.md, "Durability and
//! crash consistency").
//!
//! Determinism makes log replay sound: GOOD operations are
//! deterministic up to new-object identity, and since the journal
//! replays from the snapshot's concrete arena state, replay is in fact
//! bit-identical (node ids included).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod torture;
pub mod vfs;

pub use journal::LogRecord;

use good_core::error::GoodError;
use good_core::instance::Instance;
use good_core::matching::{find_matchings, Matching};
use good_core::method::Method;
use good_core::ops::OpReport;
use good_core::pattern::Pattern;
use good_core::program::{Env, Program, DEFAULT_FUEL};
use good_core::scheme::Scheme;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use vfs::{StdVfs, Vfs, VfsFile};

/// Store errors: I/O, serialization, or model-level failures.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A journal record failed to parse (other than a torn tail).
    Corrupt {
        /// 1-based line number of the bad record.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// The journal is empty or does not start with a snapshot.
    MissingSnapshot,
    /// A model-level error while replaying or executing.
    Model(GoodError),
    /// A previous append failed mid-durability; mutations are refused
    /// until the store is reopened (committed state stays readable).
    Poisoned(
        /// The failure that poisoned the store.
        String,
    ),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "journal I/O error: {err}"),
            StoreError::Corrupt { line, message } => {
                write!(f, "corrupt journal record at line {line}: {message}")
            }
            StoreError::MissingSnapshot => {
                write!(f, "journal does not begin with a snapshot record")
            }
            StoreError::Model(err) => write!(f, "model error: {err}"),
            StoreError::Poisoned(reason) => write!(
                f,
                "store is poisoned ({reason}); the last record's durability is \
                 unknown — reopen the journal to recover a consistent state"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}

impl From<GoodError> for StoreError {
    fn from(err: GoodError) -> Self {
        StoreError::Model(err)
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// A durable GOOD object base.
pub struct Store {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    file: Box<dyn VfsFile>,
    db: Arc<Instance>,
    env: Env,
    /// Registered methods, kept for checkpointing (the Env does not
    /// expose iteration).
    methods: Vec<Method>,
    records: usize,
    /// True when `open` discarded a torn trailing record.
    recovered_torn_tail: bool,
    /// Set when an append failed after possibly reaching the disk.
    poisoned: Option<String>,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("path", &self.path)
            .field("records", &self.records)
            .field("nodes", &self.db.node_count())
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl Store {
    /// Create a fresh store at `path` over `scheme` on the real
    /// filesystem. Fails if the file exists.
    pub fn create(path: impl AsRef<Path>, scheme: Scheme) -> Result<Store> {
        Store::create_with_vfs(Arc::new(StdVfs), path, scheme)
    }

    /// [`Store::create`] over an explicit [`Vfs`].
    pub fn create_with_vfs(
        vfs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        scheme: Scheme,
    ) -> Result<Store> {
        let path = path.as_ref().to_path_buf();
        let mut file = vfs.create_new(&path)?;
        let db = Instance::new(scheme);
        let record = LogRecord::Snapshot(Box::new(db.clone()));
        journal::append_record(file.as_mut(), &record)?;
        // The file content is durable; make its *name* durable too, or
        // a crash could silently discard the whole store.
        vfs.sync_parent_dir(&path)?;
        Ok(Store {
            vfs,
            path,
            file,
            db: Arc::new(db),
            env: Env::with_fuel(DEFAULT_FUEL),
            methods: Vec::new(),
            records: 1,
            recovered_torn_tail: false,
            poisoned: None,
        })
    }

    /// Open an existing store on the real filesystem, replaying its
    /// journal.
    pub fn open(path: impl AsRef<Path>) -> Result<Store> {
        Store::open_with_vfs(Arc::new(StdVfs), path)
    }

    /// [`Store::open`] over an explicit [`Vfs`].
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>, path: impl AsRef<Path>) -> Result<Store> {
        let path = path.as_ref().to_path_buf();
        let mut recovery_span = good_trace::span("store", "store/recovery");
        let bytes = vfs.read(&path)?;
        let scan = journal::scan(&bytes)?;

        let mut db: Option<Instance> = None;
        let mut env = Env::with_fuel(DEFAULT_FUEL);
        let mut methods: Vec<Method> = Vec::new();
        let mut records = 0usize;
        for (line, record) in scan.records {
            match record {
                LogRecord::Snapshot(instance) => {
                    if db.is_some() {
                        return Err(StoreError::Corrupt {
                            line,
                            message: "unexpected second snapshot".into(),
                        });
                    }
                    db = Some(*instance);
                }
                LogRecord::RegisterMethod(method) => {
                    if db.is_none() {
                        return Err(StoreError::MissingSnapshot);
                    }
                    env.register((*method).clone());
                    methods.push(*method);
                }
                LogRecord::Apply(program) | LogRecord::BatchApply(program) => {
                    // The scanner only surfaces BatchApply records from
                    // *committed* groups, so replay treats them exactly
                    // like self-committing applies.
                    let Some(db) = db.as_mut() else {
                        return Err(StoreError::MissingSnapshot);
                    };
                    env.refuel();
                    program.apply(db, &mut env)?;
                }
                LogRecord::BatchCommit { .. } => {
                    if db.is_none() {
                        return Err(StoreError::MissingSnapshot);
                    }
                }
            }
            records += 1;
        }
        let db = db.ok_or(StoreError::MissingSnapshot)?;
        // Semantic invariants are always re-checked after replay; the
        // full adjacency/label-index audit is O(nodes + edges) of
        // redundant work in release (replay maintains the indexes
        // incrementally through the same code paths the audit checks),
        // so it runs only in debug builds.
        db.validate_semantics()?;
        #[cfg(debug_assertions)]
        db.validate_indexes()?;
        recovery_span.arg("records", records);
        recovery_span.arg("torn_tail", scan.torn_tail);
        drop(recovery_span);

        let mut file;
        if scan.torn_tail {
            // Truncate the torn tail so future appends start clean,
            // and sync so the truncation itself survives a crash.
            vfs.truncate(&path, scan.intact_len)?;
            file = vfs.open_append(&path)?;
            file.sync_data()?;
        } else {
            file = vfs.open_append(&path)?;
        }
        Ok(Store {
            vfs,
            path,
            file,
            db: Arc::new(db),
            env,
            methods,
            records,
            recovered_torn_tail: scan.torn_tail,
            poisoned: None,
        })
    }

    /// The current instance.
    pub fn instance(&self) -> &Instance {
        &self.db
    }

    /// The current instance as a shared handle. The store's own copy
    /// stays live, so publishing this handle (e.g. into a
    /// `SnapshotCell`) costs one `Arc` bump, zero graph copies.
    pub fn instance_arc(&self) -> Arc<Instance> {
        Arc::clone(&self.db)
    }

    /// Number of journal records replayed/written in this generation.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// True if `open` had to discard a torn trailing record.
    pub fn recovered_torn_tail(&self) -> bool {
        self.recovered_torn_tail
    }

    /// The poisoning reason, if a failed append has locked the store
    /// against further mutation.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    fn check_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(reason) => Err(StoreError::Poisoned(reason.clone())),
            None => Ok(()),
        }
    }

    /// Append a record, poisoning the store on I/O failure: once bytes
    /// may have reached the file without a confirmed fsync, the
    /// record's durability (and the journal tail's integrity) is
    /// unknown, so no further mutation may append after it. Recovery on
    /// reopen resolves the ambiguity either way.
    fn append_durably(&mut self, record: &LogRecord) -> Result<()> {
        match journal::append_record(self.file.as_mut(), record) {
            Ok(()) => Ok(()),
            Err(err) => {
                if let StoreError::Io(io_err) = &err {
                    self.poisoned = Some(format!("append failed: {io_err}"));
                }
                Err(err)
            }
        }
    }

    /// Register a method, durably.
    pub fn register_method(&mut self, method: Method) -> Result<()> {
        self.check_poisoned()?;
        self.append_durably(&LogRecord::RegisterMethod(Box::new(method.clone())))?;
        self.env.register(method.clone());
        self.methods.push(method);
        self.records += 1;
        Ok(())
    }

    /// Execute a program atomically: state and journal change only if
    /// the whole program succeeds *and* its record is durably logged.
    /// On an I/O failure the in-memory instance is left at the last
    /// committed state and the store is poisoned (see
    /// [`StoreError::Poisoned`]).
    pub fn execute(&mut self, program: &Program) -> Result<OpReport> {
        self.check_poisoned()?;
        let mut execute_span = good_trace::span("store", "store/execute");
        execute_span.arg("ops", program.len());
        // Cheap: `Instance` is persistent, so this is a handful of
        // `Arc` bumps, and the mutation below copies only the O(delta
        // log n) trie nodes it actually touches.
        let mut next = (*self.db).clone();
        self.env.refuel();
        let report = program.apply(&mut next, &mut self.env)?;
        self.append_durably(&LogRecord::Apply(program.clone()))?;
        self.db = Arc::new(next);
        self.records += 1;
        execute_span.arg("matchings", report.matchings);
        Ok(report)
    }

    /// Execute a batch of programs as **one group commit**: every
    /// successful program's record is appended, a commit marker closes
    /// the group, and a single fsync makes the whole batch durable at
    /// once — the journaling cost of one `execute` amortized over the
    /// batch.
    ///
    /// Per-program failures are isolated, not batch-aborting: a failing
    /// program contributes an `Err` outcome, writes nothing to the
    /// journal, and leaves the effects of its successful neighbours
    /// intact (each program applies to a scratch clone that is merged
    /// only on success). Durability is all-or-nothing per batch: a
    /// crash before the commit marker is durable recovers to the state
    /// *before* the batch, never in the middle of it.
    ///
    /// A batch with zero successful programs performs no I/O; a batch
    /// with exactly one is journaled as a plain self-committing
    /// [`LogRecord::Apply`] (same durability, smaller journal).
    pub fn execute_group(
        &mut self,
        programs: &[Program],
    ) -> Result<Vec<std::result::Result<OpReport, GoodError>>> {
        self.check_poisoned()?;
        let mut group_span = good_trace::span("store", "store/execute_group");
        group_span.arg("programs", programs.len());
        let mut working = (*self.db).clone();
        let mut outcomes = Vec::with_capacity(programs.len());
        let mut committed: Vec<&Program> = Vec::new();
        for program in programs {
            self.env.refuel();
            let mut scratch = working.clone();
            match program.apply(&mut scratch, &mut self.env) {
                Ok(report) => {
                    working = scratch;
                    committed.push(program);
                    outcomes.push(Ok(report));
                }
                Err(err) => outcomes.push(Err(err)),
            }
        }
        group_span.arg("committed", committed.len());
        match committed.len() {
            0 => return Ok(outcomes),
            1 => {
                self.append_durably(&LogRecord::Apply(committed[0].clone()))?;
                self.records += 1;
            }
            n => {
                let result = Self::write_group(self.file.as_mut(), &committed);
                if let Err(err) = result {
                    if let StoreError::Io(io_err) = &err {
                        self.poisoned = Some(format!("group append failed: {io_err}"));
                    }
                    return Err(err);
                }
                self.records += n + 1;
            }
        }
        self.db = Arc::new(working);
        Ok(outcomes)
    }

    /// Append a committed group: `BatchApply`* + `BatchCommit`, then
    /// one fsync for the lot.
    fn write_group(file: &mut dyn VfsFile, programs: &[&Program]) -> Result<()> {
        for program in programs {
            journal::write_record(file, &LogRecord::BatchApply((*program).clone()))?;
        }
        journal::write_record(
            file,
            &LogRecord::BatchCommit {
                count: programs.len(),
            },
        )?;
        journal::sync_file(file)
    }

    /// Run a read-only pattern query.
    pub fn query(&self, pattern: &Pattern) -> Result<Vec<Matching>> {
        Ok(find_matchings(pattern, &self.db)?)
    }

    /// Collapse the journal into a single fresh snapshot: temp file,
    /// fsync, atomic rename, parent-directory fsync. Failures before
    /// the rename leave the old journal fully intact; failures after it
    /// poison the store (the new journal is in place but its durability
    /// or the append handle is uncertain).
    pub fn checkpoint(&mut self) -> Result<()> {
        self.check_poisoned()?;
        let mut checkpoint_span = good_trace::span("store", "store/checkpoint");
        checkpoint_span.arg("records_before", self.records);
        let tmp_path = self.path.with_extension("journal.tmp");
        {
            let mut tmp = self.vfs.create_truncate(&tmp_path)?;
            journal::append_record(
                tmp.as_mut(),
                &LogRecord::Snapshot(Box::new((*self.db).clone())),
            )?;
            // Methods survive checkpoints: re-log every registration.
            for method in self.methods.iter() {
                journal::append_record(
                    tmp.as_mut(),
                    &LogRecord::RegisterMethod(Box::new(method.clone())),
                )?;
            }
            tmp.sync_all()?;
        }
        self.vfs.rename(&tmp_path, &self.path)?;
        // The rename must itself be made durable: without the directory
        // fsync a crash can resurrect the old journal, silently
        // discarding every record appended to the new one.
        if let Err(err) = self.vfs.sync_parent_dir(&self.path) {
            self.poisoned = Some(format!("checkpoint rename not durable: {err}"));
            return Err(err.into());
        }
        match self.vfs.open_append(&self.path) {
            Ok(file) => self.file = file,
            Err(err) => {
                // The old handle points at the unlinked pre-checkpoint
                // inode; appending there would lose records.
                self.poisoned = Some(format!("cannot reopen checkpointed journal: {err}"));
                return Err(err.into());
            }
        }
        self.records = 1 + self.methods.len();
        Ok(())
    }
}
