//! A deterministic single-tape Turing machine interpreter.
//!
//! This is the substrate against which the GOOD simulation is checked.
//! The tape is unbounded in both directions; absent cells read as the
//! blank symbol. A machine halts when no rule covers the current
//! (state, symbol) pair.

use std::collections::BTreeMap;
use std::fmt;

/// Head movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// One cell left.
    Left,
    /// One cell right.
    Right,
    /// Stay put.
    Stay,
}

/// One transition rule: in `state` reading `read`, write `write`, move
/// and switch to `next`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Current state.
    pub state: String,
    /// Symbol under the head.
    pub read: char,
    /// Symbol to write.
    pub write: char,
    /// Head movement.
    pub movement: Move,
    /// Next state.
    pub next: String,
}

/// A deterministic Turing machine.
#[derive(Debug, Clone)]
pub struct Machine {
    /// The blank symbol.
    pub blank: char,
    /// Initial state.
    pub start: String,
    rules: BTreeMap<(String, char), Rule>,
}

impl Machine {
    /// Build a machine; duplicate (state, read) pairs are a programming
    /// error (the machine must be deterministic).
    ///
    /// # Panics
    /// Panics on duplicate rules.
    pub fn new(
        blank: char,
        start: impl Into<String>,
        rules: impl IntoIterator<Item = Rule>,
    ) -> Self {
        let mut map = BTreeMap::new();
        for rule in rules {
            let key = (rule.state.clone(), rule.read);
            assert!(
                map.insert(key, rule).is_none(),
                "duplicate rule: machine must be deterministic"
            );
        }
        Machine {
            blank,
            start: start.into(),
            rules: map,
        }
    }

    /// The rules, in deterministic order.
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.rules.values()
    }

    /// Every symbol the machine can ever see or write (including blank
    /// and the given input alphabet).
    pub fn alphabet(&self, input: &str) -> Vec<char> {
        let mut out: Vec<char> = input.chars().collect();
        out.push(self.blank);
        for rule in self.rules.values() {
            out.push(rule.read);
            out.push(rule.write);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every state name (start + rule states).
    pub fn states(&self) -> Vec<String> {
        let mut out = vec![self.start.clone()];
        for rule in self.rules.values() {
            out.push(rule.state.clone());
            out.push(rule.next.clone());
        }
        out.sort();
        out.dedup();
        out
    }

    /// The rule for (state, symbol), if any.
    pub fn rule(&self, state: &str, read: char) -> Option<&Rule> {
        self.rules.get(&(state.to_string(), read))
    }

    /// The initial configuration on `input` (head at position 0).
    pub fn initial(&self, input: &str) -> Config {
        let mut tape = BTreeMap::new();
        for (offset, symbol) in input.chars().enumerate() {
            if symbol != self.blank {
                tape.insert(offset as i64, symbol);
            }
        }
        Config {
            state: self.start.clone(),
            tape,
            head: 0,
        }
    }

    /// Run one step; `None` when halted.
    pub fn step(&self, config: &Config) -> Option<Config> {
        let read = config.read(self.blank);
        let rule = self.rule(&config.state, read)?;
        let mut next = config.clone();
        if rule.write == self.blank {
            next.tape.remove(&config.head);
        } else {
            next.tape.insert(config.head, rule.write);
        }
        next.head += match rule.movement {
            Move::Left => -1,
            Move::Right => 1,
            Move::Stay => 0,
        };
        next.state = rule.next.clone();
        Some(next)
    }

    /// Run until halt or `max_steps`.
    pub fn run(&self, input: &str, max_steps: usize) -> Outcome {
        let mut config = self.initial(input);
        for steps in 0..=max_steps {
            match self.step(&config) {
                Some(next) => config = next,
                None => return Outcome::Halted { config, steps },
            }
        }
        Outcome::OutOfSteps(config)
    }
}

/// A machine configuration: state, sparse tape (blanks elided), head
/// position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Current state.
    pub state: String,
    /// Non-blank tape cells by absolute position.
    pub tape: BTreeMap<i64, char>,
    /// Head position.
    pub head: i64,
}

impl Config {
    /// The symbol under the head.
    pub fn read(&self, blank: char) -> char {
        self.tape.get(&self.head).copied().unwrap_or(blank)
    }

    /// The tape contents between the extreme non-blank cells, as a
    /// string (blank-filled gaps), plus the leftmost position. Empty
    /// tape renders as an empty string at position 0.
    pub fn tape_window(&self, blank: char) -> (i64, String) {
        let (Some((&lo, _)), Some((&hi, _))) =
            (self.tape.iter().next(), self.tape.iter().next_back())
        else {
            return (0, String::new());
        };
        let text = (lo..=hi)
            .map(|pos| self.tape.get(&pos).copied().unwrap_or(blank))
            .collect();
        (lo, text)
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, text) = self.tape_window('_');
        write!(
            f,
            "state={} head={} tape[{}..]={text:?}",
            self.state, self.head, lo
        )
    }
}

/// Result of a bounded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The machine halted.
    Halted {
        /// The halting configuration.
        config: Config,
        /// Steps taken.
        steps: usize,
    },
    /// The step budget ran out.
    OutOfSteps(Config),
}

// ---- sample machines -------------------------------------------------------

/// Binary increment: tape holds a binary number (MSB first), head at
/// its leftmost bit; the machine adds one and halts in state `done`.
pub fn binary_increment() -> Machine {
    let rule = |state: &str, read, write, movement, next: &str| Rule {
        state: state.into(),
        read,
        write,
        movement,
        next: next.into(),
    };
    Machine::new(
        '_',
        "right",
        [
            // Seek the rightmost bit.
            rule("right", '0', '0', Move::Right, "right"),
            rule("right", '1', '1', Move::Right, "right"),
            rule("right", '_', '_', Move::Left, "carry"),
            // Add with carry.
            rule("carry", '1', '0', Move::Left, "carry"),
            rule("carry", '0', '1', Move::Left, "done"),
            rule("carry", '_', '1', Move::Left, "done"),
        ],
    )
}

/// Unary addition: `1..1+1..1` becomes the sum block of ones.
pub fn unary_addition() -> Machine {
    let rule = |state: &str, read, write, movement, next: &str| Rule {
        state: state.into(),
        read,
        write,
        movement,
        next: next.into(),
    };
    Machine::new(
        '_',
        "scan",
        [
            // Replace '+' by '1', then chop the last '1'.
            rule("scan", '1', '1', Move::Right, "scan"),
            rule("scan", '+', '1', Move::Right, "to-end"),
            rule("to-end", '1', '1', Move::Right, "to-end"),
            rule("to-end", '_', '_', Move::Left, "chop"),
            rule("chop", '1', '_', Move::Left, "done"),
        ],
    )
}

/// Palindrome recognition over {a, b}: halts in state `yes` or `no`.
pub fn palindrome() -> Machine {
    let rule = |state: &str, read, write, movement, next: &str| Rule {
        state: state.into(),
        read,
        write,
        movement,
        next: next.into(),
    };
    Machine::new(
        '_',
        "start",
        [
            // Consume the first symbol, remember it.
            rule("start", 'a', '_', Move::Right, "have-a"),
            rule("start", 'b', '_', Move::Right, "have-b"),
            rule("start", '_', '_', Move::Stay, "yes"),
            // Run to the end.
            rule("have-a", 'a', 'a', Move::Right, "have-a"),
            rule("have-a", 'b', 'b', Move::Right, "have-a"),
            rule("have-a", '_', '_', Move::Left, "check-a"),
            rule("have-b", 'a', 'a', Move::Right, "have-b"),
            rule("have-b", 'b', 'b', Move::Right, "have-b"),
            rule("have-b", '_', '_', Move::Left, "check-b"),
            // Check and consume the last symbol.
            rule("check-a", 'a', '_', Move::Left, "rewind"),
            rule("check-a", 'b', 'b', Move::Stay, "no"),
            rule("check-a", '_', '_', Move::Stay, "yes"),
            rule("check-b", 'b', '_', Move::Left, "rewind"),
            rule("check-b", 'a', 'a', Move::Stay, "no"),
            rule("check-b", '_', '_', Move::Stay, "yes"),
            // Rewind to the first remaining symbol.
            rule("rewind", 'a', 'a', Move::Left, "rewind"),
            rule("rewind", 'b', 'b', Move::Left, "rewind"),
            rule("rewind", '_', '_', Move::Right, "start"),
        ],
    )
}

/// The 3-state, 2-symbol busy beaver (Lin & Rado): leaves six ones on
/// the tape — a classic stress case because it shuttles over freshly
/// extended tape in both directions. (Step counts in the literature
/// include the explicit HALT transition; here halting is rule absence.)
pub fn busy_beaver3() -> Machine {
    let rule = |state: &str, read, write, movement, next: &str| Rule {
        state: state.into(),
        read,
        write,
        movement,
        next: next.into(),
    };
    Machine::new(
        '_',
        "A",
        [
            rule("A", '_', '1', Move::Right, "B"),
            rule("A", '1', '1', Move::Left, "C"),
            rule("B", '_', '1', Move::Left, "A"),
            rule("B", '1', '1', Move::Right, "B"),
            rule("C", '_', '1', Move::Left, "B"),
            // ("C", '1') has no rule: halt.
        ],
    )
}

/// A machine that never halts (shuttles right forever).
pub fn diverger() -> Machine {
    Machine::new(
        '_',
        "go",
        [Rule {
            state: "go".into(),
            read: '_',
            write: '_',
            movement: Move::Right,
            next: "go".into(),
        }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn halt(machine: &Machine, input: &str) -> Config {
        match machine.run(input, 10_000) {
            Outcome::Halted { config, .. } => config,
            Outcome::OutOfSteps(config) => panic!("did not halt: {config}"),
        }
    }

    #[test]
    fn binary_increment_cases() {
        let machine = binary_increment();
        for (input, expected) in [
            ("0", "1"),
            ("1", "10"),
            ("1011", "1100"),
            ("111", "1000"),
            ("0000", "0001"),
        ] {
            let config = halt(&machine, input);
            let (_, tape) = config.tape_window('_');
            assert_eq!(tape, expected, "increment({input})");
            assert_eq!(config.state, "done");
        }
    }

    #[test]
    fn unary_addition_cases() {
        let machine = unary_addition();
        for (input, ones) in [("1+1", 2), ("111+11", 5), ("1+111", 4)] {
            let config = halt(&machine, input);
            let (_, tape) = config.tape_window('_');
            assert_eq!(tape, "1".repeat(ones), "sum({input})");
        }
    }

    #[test]
    fn palindrome_cases() {
        let machine = palindrome();
        for (input, verdict) in [
            ("", "yes"),
            ("a", "yes"),
            ("ab", "no"),
            ("aba", "yes"),
            ("abba", "yes"),
            ("aabbaa", "yes"),
            ("aab", "no"),
            ("baab", "yes"),
            ("babb", "no"),
        ] {
            let config = halt(&machine, input);
            assert_eq!(config.state, verdict, "palindrome({input:?})");
        }
    }

    #[test]
    fn busy_beaver3_halts_with_six_ones() {
        match busy_beaver3().run("", 100) {
            Outcome::Halted { config, steps } => {
                // The canonical "14 steps" counts the explicit transition
                // into a HALT state; we model halting as rule absence, so
                // the final configuration is reached after 12 writes plus
                // the detected halt.
                assert_eq!(steps, 12);
                assert_eq!(config.tape.values().filter(|&&c| c == '1').count(), 6);
            }
            Outcome::OutOfSteps(config) => panic!("did not halt: {config}"),
        }
    }

    #[test]
    fn diverger_runs_out_of_steps() {
        assert!(matches!(diverger().run("", 100), Outcome::OutOfSteps(_)));
    }

    #[test]
    fn step_returns_none_on_halt() {
        let machine = binary_increment();
        let config = halt(&machine, "1");
        assert!(machine.step(&config).is_none());
    }

    #[test]
    fn blank_writes_shrink_the_sparse_tape() {
        let machine = unary_addition();
        let config = halt(&machine, "1+1");
        // The chopped trailing one must not linger as an explicit cell.
        assert!(config.tape.values().all(|&c| c != '_'));
    }

    #[test]
    fn alphabet_and_states() {
        let machine = binary_increment();
        assert_eq!(machine.alphabet("10"), vec!['0', '1', '_']);
        let states = machine.states();
        assert!(states.contains(&"carry".to_string()));
        assert!(states.contains(&"done".to_string()));
    }

    #[test]
    #[should_panic(expected = "deterministic")]
    fn duplicate_rules_rejected() {
        let rule = Rule {
            state: "s".into(),
            read: 'x',
            write: 'x',
            movement: Move::Stay,
            next: "s".into(),
        };
        Machine::new('_', "s", [rule.clone(), rule]);
    }

    #[test]
    fn tape_window_of_empty_tape() {
        let machine = binary_increment();
        let config = Config {
            state: machine.start.clone(),
            tape: BTreeMap::new(),
            head: 5,
        };
        assert_eq!(config.tape_window('_'), (0, String::new()));
    }
}
