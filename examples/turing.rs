//! Computational completeness in action (Section 4.3): run a Turing
//! machine *inside* a GOOD object base and compare with the reference
//! interpreter.
//!
//! Run with `cargo run --example turing`.

use good::model::error::Result;
use good::turing::machine::{binary_increment, palindrome, Outcome};
use good::turing::run_in_good;

fn main() -> Result<()> {
    // ---- binary increment ------------------------------------------------
    let machine = binary_increment();
    println!("binary increment, simulated as a recursive GOOD method:");
    for input in ["0", "1", "1011", "111"] {
        let via_good = run_in_good(&machine, input, 500_000)?;
        let reference = match machine.run(input, 100_000) {
            Outcome::Halted { config, .. } => config,
            Outcome::OutOfSteps(_) => unreachable!("increment always halts"),
        };
        assert_eq!(via_good, reference);
        let (_, tape) = via_good.tape_window(machine.blank);
        println!("  {input} + 1 = {tape}   (state {})", via_good.state);
    }

    // ---- palindromes -------------------------------------------------------
    let machine = palindrome();
    println!("\npalindrome recognition:");
    for input in ["abba", "aba", "ab", "baab", "aab"] {
        let via_good = run_in_good(&machine, input, 2_000_000)?;
        println!("  {input:>5} → {}", via_good.state);
    }

    println!("\nevery run agreed with the interpreter — the full GOOD language");
    println!("(five operations + methods) simulates Turing machines.");
    Ok(())
}
