//! Snapshot-stability: a reader holding a [`good_core::snapshot::Snapshot`]
//! observes bit-identical matching results and byte-identical DOT
//! output before, during, and after concurrent writer batches.

use good_core::gen::{bench_scheme, random_workload};
use good_core::matching::{find_matchings, Matching};
use good_core::pattern::Pattern;
use good_core::snapshot::Snapshot;
use good_server::{Server, ServerConfig};
use good_store::vfs::{FaultPlan, FaultVfs, Vfs};
use good_store::Store;
use std::sync::Arc;

/// The observation a reader makes of one frozen snapshot.
#[derive(PartialEq, Debug)]
struct Observation {
    dot: String,
    matchings: Vec<Matching>,
    nodes: usize,
    edges: usize,
}

fn observe(snapshot: &Snapshot) -> Observation {
    let mut pattern = Pattern::new();
    let a = pattern.node("Info");
    let b = pattern.node("Info");
    pattern.edge(a, "links-to", b);
    Observation {
        dot: snapshot.instance().to_dot("stability"),
        matchings: find_matchings(&pattern, snapshot.instance()).expect("valid pattern"),
        nodes: snapshot.instance().node_count(),
        edges: snapshot.instance().edge_count(),
    }
}

#[test]
fn held_snapshot_is_immutable_across_writer_batches() {
    let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(FaultPlan::reliable(5)));
    let mut store =
        Store::create_with_vfs(vfs, "/stab/db.journal", bench_scheme()).expect("create store");
    // Give the snapshot something non-trivial to observe.
    for program in random_workload(5, 8) {
        store.execute(&program).expect("seed workload");
    }
    let server = Server::start(store, server_config());

    let held = server.snapshot();
    let before = observe(&held);
    assert!(before.nodes > 0, "seed workload produced an empty instance");

    // Writer batches land while the reader keeps re-reading its frozen
    // snapshot: every observation must be byte-for-byte identical.
    let session = server.open_session();
    for (round, program) in random_workload(99, 12).into_iter().enumerate() {
        server.submit_wait(session, program).expect("submit");
        let during = observe(&held);
        assert_eq!(
            before,
            during,
            "snapshot drifted during round {round} (epoch now {})",
            server.epoch()
        );
    }
    assert!(server.epoch() > 0, "writer published no batches");
    // A *fresh* snapshot does see the new state.
    let fresh = server.snapshot();
    assert!(fresh.epoch > held.epoch);

    let store = server.shutdown().expect("clean shutdown");
    let after = observe(&held);
    assert_eq!(before, after, "snapshot drifted across shutdown");
    // And the held snapshot is genuinely old: the store moved on.
    assert!(store.record_count() > 9);
}

fn server_config() -> ServerConfig {
    ServerConfig {
        queue_capacity: 64,
        max_batch: 4,
        ..ServerConfig::default()
    }
}
