//! Storing a GOOD instance in the Tarski Data Model.
//!
//! Decomposition:
//!
//! * one binary relation `edge:<λ>` per edge label, holding its
//!   `(source, target)` pairs;
//! * one coreflexive `class:<L>` per node label, holding `(n, n)` for
//!   every node of class `L` — Tarski's standard encoding of unary
//!   predicates;
//! * one coreflexive `print:<L>=<v>` per printable constant in use.
//!
//! Everything GOOD's matcher consults is thus available to the binary
//! relation algebra: a typed edge traversal is
//! `class:A ; edge:λ ; class:B` and a print-constrained endpoint is a
//! composition with its `print:` coreflexive.

use crate::binrel::BinRel;
use good_core::instance::Instance;
use good_core::label::Label;
use good_core::value::Value;
use good_graph::NodeId;
use std::collections::BTreeMap;

/// A GOOD instance decomposed into named binary relations.
#[derive(Debug, Clone, Default)]
pub struct TarskiStore {
    relations: BTreeMap<String, BinRel<NodeId>>,
}

/// The catalog name of an edge label's relation.
pub fn edge_rel(label: &Label) -> String {
    format!("edge:{label}")
}

/// The catalog name of a class coreflexive.
pub fn class_rel(label: &Label) -> String {
    format!("class:{label}")
}

/// The catalog name of a printable-constant coreflexive.
pub fn print_rel(label: &Label, value: &Value) -> String {
    format!("print:{label}={value}")
}

impl TarskiStore {
    /// Decompose an instance.
    pub fn from_instance(db: &Instance) -> Self {
        let mut relations: BTreeMap<String, BinRel<NodeId>> = BTreeMap::new();
        for node in db.graph().nodes() {
            relations
                .entry(class_rel(&node.payload.label))
                .or_default()
                .insert(node.id, node.id);
            if let Some(value) = &node.payload.print {
                relations
                    .entry(print_rel(&node.payload.label, value))
                    .or_default()
                    .insert(node.id, node.id);
            }
        }
        for edge in db.graph().edges() {
            relations
                .entry(edge_rel(&edge.payload.label))
                .or_default()
                .insert(edge.src, edge.dst);
        }
        TarskiStore { relations }
    }

    /// The catalog (for [`crate::algebra::TarskiExpr::eval`]).
    pub fn catalog(&self) -> &BTreeMap<String, BinRel<NodeId>> {
        &self.relations
    }

    /// Look up one relation (empty if absent — absent labels denote
    /// empty relations, not errors, mirroring incomplete information).
    pub fn relation(&self, name: &str) -> BinRel<NodeId> {
        self.relations.get(name).cloned().unwrap_or_default()
    }

    /// Number of stored relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Total number of stored pairs.
    pub fn pair_count(&self) -> usize {
        self.relations.values().map(BinRel::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use good_core::scheme::SchemeBuilder;
    use good_core::value::ValueType;

    fn sample() -> (Instance, NodeId, NodeId) {
        let scheme = SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .functional("Info", "name", "String")
            .multivalued("Info", "links-to", "Info")
            .build();
        let mut db = Instance::new(scheme);
        let a = db.add_object("Info").unwrap();
        let b = db.add_object("Info").unwrap();
        let name = db.add_printable("String", "rock").unwrap();
        db.add_edge(a, "name", name).unwrap();
        db.add_edge(a, "links-to", b).unwrap();
        (db, a, b)
    }

    #[test]
    fn decomposition_contents() {
        let (db, a, b) = sample();
        let store = TarskiStore::from_instance(&db);
        assert!(store.relation("edge:links-to").contains(&a, &b));
        assert!(store.relation("class:Info").contains(&a, &a));
        assert_eq!(store.relation("class:Info").len(), 2);
        let name = db
            .find_printable(&"String".into(), &Value::str("rock"))
            .unwrap();
        assert!(store
            .relation(&format!("print:String={}", "rock"))
            .contains(&name, &name));
    }

    #[test]
    fn absent_relations_are_empty() {
        let (db, _, _) = sample();
        let store = TarskiStore::from_instance(&db);
        assert!(store.relation("edge:nope").is_empty());
    }

    #[test]
    fn pair_count_matches_instance() {
        let (db, _, _) = sample();
        let store = TarskiStore::from_instance(&db);
        // 2 edges + 3 class pairs + 1 print pair.
        assert_eq!(store.pair_count(), 6);
        assert_eq!(store.relation_count(), 5);
    }
}
