//! Offline stand-in for `rand`.
//!
//! Provides a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64) and the small `Rng`/`SeedableRng` surface this workspace
//! uses: `seed_from_u64`, `gen_range` over integer and float ranges,
//! and `gen_bool`. The stream differs from upstream `rand`'s StdRng,
//! but every consumer in this repository only relies on determinism,
//! not on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let value = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + value) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let value = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + value) as $ty
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, probability: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&probability),
            "gen_bool: probability outside [0, 1]"
        );
        ((self.next_u64() >> 11) as f64) < probability * (1u64 << 53) as f64
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
    }
}
