//! `good-db` — an interactive shell / script runner for GOOD object
//! bases.
//!
//! ```text
//! good-db                 # interactive REPL
//! good-db script.gdb      # run commands from a file
//! good-db -c "class Info; init; insert Info; stats"
//! ```
//!
//! Commands are line-oriented; a line whose braces are unbalanced
//! continues on the next line (so `match { … }` blocks can be written
//! across lines). `#` starts a comment. See `help` for the command set.

mod session;

use session::Session;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// The `--profile <path>` state: where to write the Chrome trace, and
/// the collector every span in the process is delivered to.
struct Profiler {
    path: String,
    collector: Arc<good_trace::Collector>,
}

impl Profiler {
    /// Write the captured spans as Chrome `trace_event` JSON (open the
    /// result in `chrome://tracing` or Perfetto). Exits on I/O failure.
    fn write(&self) {
        let json = good_trace::chrome_trace_json(&self.collector.take());
        if let Err(err) = std::fs::write(&self.path, json) {
            eprintln!("error: cannot write profile {}: {err}", self.path);
            std::process::exit(1);
        }
    }
}

/// Write the profile (if one was requested) and exit with `code`.
fn finish(profiler: &Option<Profiler>, code: i32) -> ! {
    if let Some(profiler) = profiler {
        profiler.write();
    }
    std::process::exit(code);
}

fn brace_balance(text: &str) -> i64 {
    text.chars().fold(0, |acc, ch| match ch {
        '{' => acc + 1,
        '}' => acc - 1,
        _ => acc,
    })
}

/// Split command text into top-level commands: separators are `;` and
/// newlines at brace depth 0 outside string literals; `#` comments at
/// depth 0 run to end of line. Content inside `{ … }` blocks (pattern
/// text) is never split.
fn split_commands(text: &str) -> Vec<String> {
    let mut commands = Vec::new();
    let mut current = String::new();
    let mut depth = 0i64;
    let mut in_string = false;
    let mut in_comment = false;
    for ch in text.chars() {
        if in_comment {
            if ch == '\n' {
                in_comment = false;
                if depth == 0 {
                    flush(&mut commands, &mut current);
                    continue;
                }
            } else {
                continue;
            }
        }
        match ch {
            '"' => {
                in_string = !in_string;
                current.push(ch);
            }
            '{' if !in_string => {
                depth += 1;
                current.push(ch);
            }
            '}' if !in_string => {
                depth -= 1;
                current.push(ch);
            }
            '#' if !in_string && depth == 0 => in_comment = true,
            ';' | '\n' if !in_string && depth == 0 => flush(&mut commands, &mut current),
            _ => current.push(ch),
        }
    }
    flush(&mut commands, &mut current);
    commands
}

fn flush(commands: &mut Vec<String>, current: &mut String) {
    let trimmed = current.trim();
    if !trimmed.is_empty() {
        commands.push(trimmed.to_string());
    }
    current.clear();
}

/// Run a block of command text. Returns the combined output; stops at
/// the first error.
fn run_script(session: &mut Session, text: &str) -> Result<String, session::CliError> {
    let mut output = String::new();
    for command in split_commands(text) {
        let report = session.execute(&command)?;
        if !report.is_empty() {
            output.push_str(&report);
            if !report.ends_with('\n') {
                output.push('\n');
            }
        }
    }
    Ok(output)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // --threads N: set the process-wide matching worker count before any
    // command runs (equivalent to the `threads` session command).
    if let Some(position) = args.iter().position(|a| a == "--threads") {
        let Some(value) = args.get(position + 1) else {
            eprintln!("error: --threads requires a count");
            std::process::exit(1);
        };
        match value.parse::<usize>() {
            Ok(n) => good_core::matching::set_default_threads(n),
            Err(_) => {
                eprintln!("error: bad thread count {value:?}");
                std::process::exit(1);
            }
        }
        args.drain(position..=position + 1);
    }

    // --profile PATH: capture every span the process emits (matcher,
    // ops, methods, store) and write a Chrome trace_event JSON file on
    // exit — including after a failed fault schedule, where the
    // timeline shows the I/O preceding the crash.
    let mut profiler: Option<Profiler> = None;
    if let Some(position) = args.iter().position(|a| a == "--profile") {
        let Some(value) = args.get(position + 1) else {
            eprintln!("error: --profile requires an output path");
            std::process::exit(1);
        };
        let collector = Arc::new(good_trace::Collector::new());
        good_trace::swap_recorder(Some(collector.clone()));
        profiler = Some(Profiler {
            path: value.clone(),
            collector,
        });
        args.drain(position..=position + 1);
    }

    // --fault-seed N [--fault-crash-at K]: developer fault-injection
    // mode. Runs the store's deterministic crash-recovery torture
    // harness — the full crash-point sweep for the seed, or a single
    // schedule when --fault-crash-at is given (the reproduction line
    // printed by torture failures). Exits 0 when every schedule
    // recovers to a committed prefix, 1 with the fault log otherwise.
    if let Some(position) = args.iter().position(|a| a == "--fault-seed") {
        let Some(value) = args.get(position + 1) else {
            eprintln!("error: --fault-seed requires a seed");
            std::process::exit(1);
        };
        let seed = match value.parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!("error: bad fault seed {value:?}");
                std::process::exit(1);
            }
        };
        args.drain(position..=position + 1);
        let mut crash_at = None;
        if let Some(position) = args.iter().position(|a| a == "--fault-crash-at") {
            let Some(value) = args.get(position + 1) else {
                eprintln!("error: --fault-crash-at requires an operation index");
                std::process::exit(1);
            };
            match value.parse::<u64>() {
                Ok(op) => crash_at = Some(op),
                Err(_) => {
                    eprintln!("error: bad crash point {value:?}");
                    std::process::exit(1);
                }
            }
            args.drain(position..=position + 1);
        }
        let config = good_store::torture::TortureConfig {
            seed,
            ..good_store::torture::TortureConfig::default()
        };
        match crash_at {
            Some(op) => match good_store::torture::crash_schedule(&config, op) {
                Ok(outcome) => {
                    for line in &outcome.fault_log {
                        println!("{line}");
                    }
                    println!(
                        "crash at op {}: acked {}, recovered to committed state {} of [{}, {}]",
                        outcome.crash_at,
                        outcome.acked,
                        outcome
                            .recovered_to
                            .map_or_else(|| "none (pre-create)".into(), |j| j.to_string()),
                        outcome.acked,
                        outcome.attempted
                    );
                }
                Err(failure) => {
                    eprintln!("{failure}");
                    finish(&profiler, 1);
                }
            },
            None => match good_store::torture::crash_sweep(&config) {
                Ok(report) => println!("seed {seed}: {}", report.summary()),
                Err(failure) => {
                    eprintln!("{failure}");
                    finish(&profiler, 1);
                }
            },
        }
        finish(&profiler, 0);
    }

    let mut session = Session::new();

    // -c "commands" mode.
    if args.first().map(String::as_str) == Some("-c") {
        let text = args[1..].join(" ");
        match run_script(&mut session, &text) {
            Ok(output) => print!("{output}"),
            Err(err) => {
                eprintln!("error: {err}");
                finish(&profiler, 1);
            }
        }
        finish(&profiler, 0);
    }

    // Script-file mode.
    if let Some(path) = args.first() {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("error: cannot read {path}: {err}");
                finish(&profiler, 1);
            }
        };
        match run_script(&mut session, &text) {
            Ok(output) => print!("{output}"),
            Err(err) => {
                eprintln!("error: {err}");
                finish(&profiler, 1);
            }
        }
        finish(&profiler, 0);
    }

    // Interactive REPL.
    println!("good-db — GOOD object base shell (try `help`, quit with `quit`)");
    let stdin = std::io::stdin();
    let mut pending = String::new();
    loop {
        if pending.is_empty() {
            print!("good> ");
        } else {
            print!("  ... ");
        }
        std::io::stdout().flush().expect("flush stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(err) => {
                eprintln!("error: {err}");
                break;
            }
        }
        let trimmed = line.trim_end();
        if pending.is_empty() && matches!(trimmed, "quit" | "exit") {
            break;
        }
        if !pending.is_empty() {
            pending.push('\n');
        }
        pending.push_str(trimmed);
        if brace_balance(&pending) > 0 {
            continue;
        }
        let command = std::mem::take(&mut pending);
        match session.execute(&command) {
            Ok(report) => {
                if !report.is_empty() {
                    println!("{}", report.trim_end());
                }
            }
            Err(err) => eprintln!("error: {err}"),
        }
    }
    if let Some(profiler) = &profiler {
        profiler.write();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_script_executes_multiline_patterns() {
        let mut session = Session::new();
        let script = r#"
class Info
printable String string
functional Info name String
init
insert Info as a
value String "hello" as n
edge a name n
match {
  i: Info;
  s: String = "hello";
  i -name-> s;
}
stats
"#;
        let output = run_script(&mut session, script).unwrap();
        assert!(output.contains("1 matching(s)"));
        assert!(output.contains("2 nodes, 1 edges"));
    }

    #[test]
    fn semicolons_separate_simple_commands() {
        let mut session = Session::new();
        let output = run_script(&mut session, "class Info; init; insert Info; stats").unwrap();
        assert!(output.contains("1 nodes, 0 edges"));
    }

    #[test]
    fn errors_stop_the_script() {
        let mut session = Session::new();
        assert!(run_script(&mut session, "bogus").is_err());
    }

    #[test]
    fn split_commands_respects_braces_strings_and_comments() {
        let commands = split_commands(
            "class Info; init # trailing comment\nmatch { i: Info; s: String = \"a;b\"; }; stats",
        );
        assert_eq!(
            commands,
            vec![
                "class Info".to_string(),
                "init".to_string(),
                "match { i: Info; s: String = \"a;b\"; }".to_string(),
                "stats".to_string(),
            ]
        );
    }

    #[test]
    fn brace_balance_counts() {
        assert_eq!(brace_balance("a { b { c }"), 1);
        assert_eq!(brace_balance("{}"), 0);
        assert_eq!(brace_balance("}"), -1);
    }
}
