//! E11 — the durability layer: journal append throughput, replay
//! (open) latency, and checkpoint cost, over journal length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use good_core::gen::bench_scheme;
use good_core::label::Label;
use good_core::ops::NodeAddition;
use good_core::pattern::Pattern;
use good_core::program::{Operation, Program};
use good_store::Store;
use std::path::PathBuf;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("good-bench-{name}-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn seed_program(index: usize) -> Program {
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        Pattern::new(),
        format!("Seed{index}").as_str(),
        [],
    ))])
}

fn tag_program() -> Program {
    let mut pattern = Pattern::new();
    let info = pattern.node("Info");
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        pattern,
        "Tag",
        [(Label::new("of"), info)],
    ))])
}

fn populated(path: &PathBuf, records: usize) {
    let mut store = Store::create(path, bench_scheme()).expect("create");
    for index in 0..records {
        store.execute(&seed_program(index)).expect("execute");
    }
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11/append");
    group.bench_function("execute+fsync", |b| {
        let path = tmp("append");
        let mut store = Store::create(&path, bench_scheme()).expect("create");
        let mut index = 0usize;
        b.iter(|| {
            store.execute(&seed_program(index)).expect("execute");
            index += 1;
        });
        drop(store);
        let _ = std::fs::remove_file(&path);
    });
    group.bench_function("execute-with-matching", |b| {
        let path = tmp("append-match");
        let mut store = Store::create(&path, bench_scheme()).expect("create");
        b.iter(|| store.execute(&tag_program()).expect("execute"));
        drop(store);
        let _ = std::fs::remove_file(&path);
    });
    group.finish();
}

fn bench_open_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11/open-replay");
    for records in [10usize, 100, 400] {
        let path = tmp(&format!("open-{records}"));
        populated(&path, records);
        group.bench_with_input(BenchmarkId::from_parameter(records), &records, |b, _| {
            b.iter(|| Store::open(&path).expect("open"));
        });
        let _ = std::fs::remove_file(&path);
    }
    group.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11/checkpoint");
    for records in [10usize, 100, 400] {
        group.bench_with_input(
            BenchmarkId::from_parameter(records),
            &records,
            |b, &records| {
                b.iter_batched(
                    || {
                        let path = tmp(&format!("ckpt-{records}"));
                        populated(&path, records);
                        (Store::open(&path).expect("open"), path)
                    },
                    |(mut store, path)| {
                        store.checkpoint().expect("checkpoint");
                        let _ = std::fs::remove_file(&path);
                    },
                    criterion::BatchSize::PerIteration,
                );
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_append, bench_open_replay, bench_checkpoint
}
criterion_main!(benches);
