//! `good-store` — journaled durable storage for GOOD object bases.
//!
//! The paper's prototype persisted GOOD databases through a host
//! relational system (Section 5); a standalone library needs its own
//! durability story. This crate provides the standard one:
//!
//! * a **journal** file of JSON-line records — a leading
//!   [`LogRecord::Snapshot`] followed by [`LogRecord::Apply`] /
//!   [`LogRecord::RegisterMethod`] entries;
//! * **atomic execution**: a program is applied to a clone first; only
//!   on success is the record appended (and fsynced) and the clone
//!   committed — a failing program can neither corrupt the in-memory
//!   instance nor the journal;
//! * **crash recovery**: a torn final record (the classic
//!   crash-during-append) is detected and ignored on open; corruption
//!   anywhere earlier is an error, not a silent truncation;
//! * **checkpointing**: collapse the journal into a fresh snapshot,
//!   written to a temporary file and atomically renamed into place.
//!
//! Determinism makes log replay sound: GOOD operations are
//! deterministic up to new-object identity, and since the journal
//! replays from the snapshot's concrete arena state, replay is in fact
//! bit-identical (node ids included).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use good_core::error::GoodError;
use good_core::instance::Instance;
use good_core::matching::{find_matchings, Matching};
use good_core::method::Method;
use good_core::ops::OpReport;
use good_core::pattern::Pattern;
use good_core::program::{Env, Program, DEFAULT_FUEL};
use good_core::scheme::Scheme;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// One journal record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LogRecord {
    /// A full snapshot of the instance — the first record of every
    /// journal generation.
    Snapshot(Box<Instance>),
    /// A method registration.
    RegisterMethod(Box<Method>),
    /// An applied program.
    Apply(Program),
}

/// Store errors: I/O, serialization, or model-level failures.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A journal record failed to parse (other than a torn tail).
    Corrupt {
        /// 1-based line number of the bad record.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// The journal is empty or does not start with a snapshot.
    MissingSnapshot,
    /// A model-level error while replaying or executing.
    Model(GoodError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "journal I/O error: {err}"),
            StoreError::Corrupt { line, message } => {
                write!(f, "corrupt journal record at line {line}: {message}")
            }
            StoreError::MissingSnapshot => {
                write!(f, "journal does not begin with a snapshot record")
            }
            StoreError::Model(err) => write!(f, "model error: {err}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}

impl From<GoodError> for StoreError {
    fn from(err: GoodError) -> Self {
        StoreError::Model(err)
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// A durable GOOD object base.
pub struct Store {
    path: PathBuf,
    file: File,
    db: Instance,
    env: Env,
    /// Registered methods, kept for checkpointing (the Env does not
    /// expose iteration).
    methods: Vec<Method>,
    records: usize,
    /// True when `open` discarded a torn trailing record.
    recovered_torn_tail: bool,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("path", &self.path)
            .field("records", &self.records)
            .field("nodes", &self.db.node_count())
            .finish()
    }
}

impl Store {
    /// Create a fresh store at `path` over `scheme`. Fails if the file
    /// exists.
    pub fn create(path: impl AsRef<Path>, scheme: Scheme) -> Result<Store> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        let db = Instance::new(scheme);
        let record = LogRecord::Snapshot(Box::new(db.clone()));
        append_record(&mut file, &record)?;
        Ok(Store {
            path,
            file,
            db,
            env: Env::with_fuel(DEFAULT_FUEL),
            methods: Vec::new(),
            records: 1,
            recovered_torn_tail: false,
        })
    }

    /// Open an existing store, replaying its journal.
    pub fn open(path: impl AsRef<Path>) -> Result<Store> {
        let path = path.as_ref().to_path_buf();
        let reader = BufReader::new(File::open(&path)?);
        let mut db: Option<Instance> = None;
        let mut env = Env::with_fuel(DEFAULT_FUEL);
        let mut methods: Vec<Method> = Vec::new();
        let mut records = 0usize;
        let mut recovered_torn_tail = false;

        let lines: Vec<String> = reader.lines().collect::<std::io::Result<_>>()?;
        let total = lines.len();
        for (index, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record: LogRecord = match serde_json::from_str(line) {
                Ok(record) => record,
                Err(err) => {
                    if index + 1 == total {
                        // A torn tail from a crash mid-append: recover.
                        recovered_torn_tail = true;
                        break;
                    }
                    return Err(StoreError::Corrupt {
                        line: index + 1,
                        message: err.to_string(),
                    });
                }
            };
            match record {
                LogRecord::Snapshot(instance) => {
                    if db.is_some() {
                        return Err(StoreError::Corrupt {
                            line: index + 1,
                            message: "unexpected second snapshot".into(),
                        });
                    }
                    db = Some(*instance);
                }
                LogRecord::RegisterMethod(method) => {
                    if db.is_none() {
                        return Err(StoreError::MissingSnapshot);
                    }
                    env.register((*method).clone());
                    methods.push(*method);
                }
                LogRecord::Apply(program) => {
                    let Some(db) = db.as_mut() else {
                        return Err(StoreError::MissingSnapshot);
                    };
                    env.refuel();
                    program.apply(db, &mut env)?;
                }
            }
            records += 1;
        }
        let db = db.ok_or(StoreError::MissingSnapshot)?;
        db.validate()?;
        // Truncate the torn tail so future appends start clean.
        if recovered_torn_tail {
            let intact: usize = lines[..total - 1].iter().map(|l| l.len() + 1).sum();
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(intact as u64)?;
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Store {
            path,
            file,
            db,
            env,
            methods,
            records,
            recovered_torn_tail,
        })
    }

    /// The current instance.
    pub fn instance(&self) -> &Instance {
        &self.db
    }

    /// Number of journal records replayed/written in this generation.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// True if `open` had to discard a torn trailing record.
    pub fn recovered_torn_tail(&self) -> bool {
        self.recovered_torn_tail
    }

    /// Register a method, durably.
    pub fn register_method(&mut self, method: Method) -> Result<()> {
        append_record(
            &mut self.file,
            &LogRecord::RegisterMethod(Box::new(method.clone())),
        )?;
        self.env.register(method.clone());
        self.methods.push(method);
        self.records += 1;
        Ok(())
    }

    /// Execute a program atomically: state and journal change only if
    /// the whole program succeeds.
    pub fn execute(&mut self, program: &Program) -> Result<OpReport> {
        let mut next = self.db.clone();
        self.env.refuel();
        let report = program.apply(&mut next, &mut self.env)?;
        append_record(&mut self.file, &LogRecord::Apply(program.clone()))?;
        self.db = next;
        self.records += 1;
        Ok(report)
    }

    /// Run a read-only pattern query.
    pub fn query(&self, pattern: &Pattern) -> Result<Vec<Matching>> {
        Ok(find_matchings(pattern, &self.db)?)
    }

    /// Collapse the journal into a single fresh snapshot (temp file +
    /// atomic rename).
    pub fn checkpoint(&mut self) -> Result<()> {
        let tmp_path = self.path.with_extension("journal.tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            append_record(&mut tmp, &LogRecord::Snapshot(Box::new(self.db.clone())))?;
            // Methods survive checkpoints: re-log every registration.
            for method in self.methods.iter() {
                append_record(
                    &mut tmp,
                    &LogRecord::RegisterMethod(Box::new(method.clone())),
                )?;
            }
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.records = 1 + self.methods.len();
        Ok(())
    }
}

fn append_record(file: &mut File, record: &LogRecord) -> Result<()> {
    let mut line = serde_json::to_string(record).map_err(|err| StoreError::Corrupt {
        line: 0,
        message: err.to_string(),
    })?;
    line.push('\n');
    file.write_all(line.as_bytes())?;
    file.sync_data()?;
    Ok(())
}
