//! Differential property tests for the incrementally maintained
//! planner statistics.
//!
//! The five GOOD operations keep [`InstanceStats`] up to date edge by
//! edge — no stats pass ever rescans the graph. These tests drive
//! random mutation workloads (the same deterministic generator the
//! store torture harness replays) and assert after every program that
//! the incremental statistics are *identical* to statistics rebuilt
//! from scratch, so estimation drift cannot creep in silently.
//!
//! A small proptest suite runs in tier 1; the deep 10 000-case sweep
//! is `--ignored` and runs in the nightly cron
//! (`cargo test --workspace --release -- --ignored`).

use good_core::gen::{bench_scheme, random_instance, random_workload, GenConfig};
use good_core::instance::Instance;
use good_core::program::{Env, DEFAULT_FUEL};
use good_core::stats::InstanceStats;
use proptest::prelude::*;

/// Incremental stats must equal a from-scratch rebuild, exactly.
fn assert_stats_fresh(db: &Instance, context: &str) {
    let fresh = InstanceStats::build(db.graph());
    assert!(
        *db.stats() == fresh,
        "incremental planner statistics drifted from a fresh rebuild {context}"
    );
}

/// Replay `count` workload programs from `seed`, checking the stats
/// against a rebuild after every program.
fn check_workload(seed: u64, count: usize) {
    let mut db = Instance::new(bench_scheme());
    let mut env = Env::with_fuel(DEFAULT_FUEL);
    for (step, program) in random_workload(seed, count).into_iter().enumerate() {
        env.refuel();
        program.apply(&mut db, &mut env).expect("workload applies");
        assert_stats_fresh(&db, &format!("(seed {seed}, after program {step})"));
    }
    db.validate().expect("workload leaves a valid instance");
}

proptest! {
    /// Incremental ≡ rebuilt after every program of a random workload.
    #[test]
    fn incremental_stats_match_rebuild(seed in 0u64..1_000_000, count in 1usize..24) {
        check_workload(seed, count);
    }

    /// The generator's random instances come out of `from_parts` with
    /// stats already matching a rebuild (and histogram counts that
    /// agree with the adjacency index).
    #[test]
    fn generated_instances_start_consistent(
        infos in 1usize..=24,
        seed in 0u64..1_000_000,
        distinct_dates in 1usize..=5,
    ) {
        let db = random_instance(&GenConfig { infos, avg_links: 2.0, distinct_dates, seed });
        assert_stats_fresh(&db, "(random_instance)");
    }
}

/// Nightly sweep: 10 000 seeded workloads, long programs.
/// Run with `cargo test -p good-core --release -- --ignored`.
#[test]
#[ignore = "nightly: 10k-case stats differential sweep"]
fn incremental_stats_match_rebuild_deep() {
    for seed in 0..10_000u64 {
        check_workload(seed, 32);
    }
}
