//! `good-server` — a multi-session concurrency layer over the GOOD
//! engine: snapshot-isolated reads, single-writer group-commit writes.
//!
//! GOOD's operational semantics make concurrency unusually tractable:
//! every program is a deterministic graph transformation of a fixed
//! instance (PAPER.md §3), and pattern matching is a pure read-only
//! function of that instance. The server exploits both facts:
//!
//! * **Reads are snapshot-isolated and lock-free.** The committed
//!   instance is published through a [`SnapshotCell`]
//!   (`good_core::snapshot`): acquiring a [`Snapshot`] costs one short
//!   mutex lock plus one `Arc::clone`, and from then on matching,
//!   `explain`, DOT rendering, and browsing run against a frozen
//!   immutable graph that no writer can perturb. Because `Instance`
//!   is persistent (structurally shared), the cell retains a bounded
//!   MVCC ring of recent versions: [`Server::snapshot_at`] serves
//!   time-travel reads against any retained epoch for the cost of a
//!   few `Arc` bumps.
//! * **Writes are serialized through one writer thread with
//!   group-commit.** Sessions enqueue programs onto a bounded queue;
//!   the writer drains up to a batch at a time, applies the batch
//!   through [`Store::execute_group`] (one journal record group, one
//!   fsync for the whole batch), publishes the next snapshot, and acks
//!   every session in the batch with its global **commit sequence
//!   number**. The resulting history is trivially serializable — it
//!   *is* the serial order reported in the acks.
//!
//! Failure semantics mirror the store's: a program that fails
//! model-level validation is acked with its error and journals
//! nothing (its batch neighbours commit normally), while a journal
//! I/O failure poisons the store, fails the whole batch and every
//! queued request, and leaves the server refusing further writes —
//! committed snapshots stay readable throughout.
//!
//! Observability: `server/enqueue`, `server/batch`, and
//! `server/publish` spans, a `server/queue_depth` gauge, and a
//! `server/batch_size` histogram (via the trace crate's u64 histogram
//! entry point) feed the existing `good-trace` layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod net;
pub mod proto;

use good_core::error::GoodError;
use good_core::ops::OpReport;
use good_core::program::Program;
use good_core::snapshot::{RetentionPolicy, Snapshot, SnapshotCell};
use good_store::Store;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Identifies one open session.
pub type SessionId = u64;

/// Identifies one submitted program; redeemed exactly once via
/// [`Server::wait`].
pub type Ticket = u64;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum number of queued (unprocessed) programs before
    /// [`ServerError::QueueFull`] backpressure kicks in.
    pub queue_capacity: usize,
    /// Maximum number of programs the writer commits as one group.
    pub max_batch: usize,
    /// How many historical snapshot versions the server's MVCC ring
    /// retains for [`Server::snapshot_at`] time-travel reads (the
    /// current version is always kept). 0 disables time travel.
    pub retain_versions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 256,
            max_batch: 32,
            retain_versions: 64,
        }
    }
}

/// Submission-level failures. Per-program *model* failures are not
/// errors at this level: they ride inside [`Ack::outcome`] so that one
/// bad program cannot break its batch neighbours.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The session id was never opened, or has been closed.
    UnknownSession(
        /// The offending id.
        SessionId,
    ),
    /// The server is shutting down (or has shut down); no new programs
    /// are accepted.
    Shutdown,
    /// The submission queue is at capacity — backpressure; retry after
    /// the writer drains.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The underlying store failed (journal I/O / poisoning); the
    /// server refuses further writes until restarted.
    Store(
        /// The store's failure message.
        String,
    ),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownSession(id) => write!(f, "unknown session id {id}"),
            ServerError::Shutdown => write!(f, "server is shut down"),
            ServerError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServerError::Store(reason) => write!(f, "store failure: {reason}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// The writer's acknowledgement for one submitted program.
#[derive(Debug, Clone)]
pub struct Ack {
    /// The submitting session.
    pub session: SessionId,
    /// Global commit sequence number — the program's position in the
    /// server's serial history. `Some` iff the program committed;
    /// model-rejected programs get `None` (they are not part of the
    /// history).
    pub commit_seq: Option<u64>,
    /// The snapshot epoch published by the batch that processed this
    /// program.
    pub epoch: u64,
    /// What the program did, or why the model rejected it.
    pub outcome: Result<OpReport, GoodError>,
}

struct Request {
    ticket: Ticket,
    session: SessionId,
    program: Program,
}

struct State {
    queue: VecDeque<Request>,
    sessions: HashSet<SessionId>,
    next_session: SessionId,
    next_ticket: Ticket,
    completions: HashMap<Ticket, Result<Ack, String>>,
    shutdown: bool,
    paused: bool,
    failed: Option<String>,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes the writer: work arrived, pause lifted, or shutdown.
    work: Condvar,
    /// Wakes waiters: completions were posted.
    done: Condvar,
    cell: SnapshotCell,
    config: ServerConfig,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("server state poisoned")
    }

    fn submit(&self, session: SessionId, program: Program) -> Result<Ticket, ServerError> {
        let mut span = good_trace::span("server", "server/enqueue");
        let mut state = self.lock();
        if let Some(reason) = &state.failed {
            return Err(ServerError::Store(reason.clone()));
        }
        if state.shutdown {
            return Err(ServerError::Shutdown);
        }
        if !state.sessions.contains(&session) {
            return Err(ServerError::UnknownSession(session));
        }
        if state.queue.len() >= self.config.queue_capacity {
            good_trace::counter_add("server/queue_full", 1);
            return Err(ServerError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queue.push_back(Request {
            ticket,
            session,
            program,
        });
        let depth = state.queue.len();
        good_trace::gauge_set("server/queue_depth", depth as i64);
        span.arg("session", session);
        span.arg("depth", depth);
        drop(state);
        self.work.notify_one();
        Ok(ticket)
    }

    fn wait(&self, ticket: Ticket) -> Result<Ack, ServerError> {
        let mut state = self.lock();
        assert!(
            ticket < state.next_ticket,
            "ticket {ticket} was never issued"
        );
        loop {
            if let Some(result) = state.completions.remove(&ticket) {
                return result.map_err(ServerError::Store);
            }
            state = self.done.wait(state).expect("server state poisoned");
        }
    }
}

/// The concurrency layer: one writer thread, any number of sessions
/// and snapshot readers.
///
/// ```
/// use good_core::program::Program;
/// use good_core::scheme::SchemeBuilder;
/// use good_server::{Server, ServerConfig};
/// use good_store::Store;
/// use good_store::vfs::{FaultPlan, FaultVfs};
/// use std::sync::Arc;
///
/// let vfs = Arc::new(FaultVfs::new(FaultPlan::reliable(1)));
/// let scheme = SchemeBuilder::new().object("Info").build();
/// let store = Store::create_with_vfs(vfs, "/db.journal", scheme).unwrap();
/// let server = Server::start(store, ServerConfig::default());
/// let session = server.open_session();
/// let snapshot = server.snapshot();
/// let ack = server
///     .submit_wait(session, Program::from_ops(Vec::new()))
///     .unwrap();
/// assert_eq!(ack.commit_seq, Some(1));
/// // The pre-submit snapshot still reads epoch 0.
/// assert_eq!(snapshot.epoch, 0);
/// server.shutdown().unwrap();
/// ```
pub struct Server {
    shared: Arc<Shared>,
    writer: Mutex<Option<JoinHandle<Store>>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.shared.lock();
        f.debug_struct("Server")
            .field("sessions", &state.sessions.len())
            .field("queued", &state.queue.len())
            .field("shutdown", &state.shutdown)
            .field("failed", &state.failed)
            .finish()
    }
}

impl Server {
    /// Start the server over `store`: spawns the writer thread and
    /// publishes the store's committed instance as snapshot epoch 0.
    pub fn start(store: Store, config: ServerConfig) -> Server {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                sessions: HashSet::new(),
                next_session: 1,
                next_ticket: 1,
                completions: HashMap::new(),
                shutdown: false,
                paused: false,
                failed: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            // Shares the store's own handle: startup publishes epoch 0
            // with one `Arc` bump, not a graph copy.
            cell: SnapshotCell::new_shared(
                store.instance_arc(),
                RetentionPolicy::versions(config.retain_versions),
            ),
            config,
        });
        let writer_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("good-server-writer".into())
            .spawn(move || writer_loop(writer_shared, store))
            .expect("spawn writer thread");
        Server {
            shared,
            writer: Mutex::new(Some(handle)),
        }
    }

    /// Open a new session and return its id.
    pub fn open_session(&self) -> SessionId {
        let mut state = self.shared.lock();
        let id = state.next_session;
        state.next_session += 1;
        state.sessions.insert(id);
        good_trace::counter_add("server/sessions_opened", 1);
        id
    }

    /// Close a session; later submissions under its id are rejected
    /// with [`ServerError::UnknownSession`]. In-flight programs it
    /// already enqueued still commit.
    pub fn close_session(&self, session: SessionId) -> Result<(), ServerError> {
        let mut state = self.shared.lock();
        if state.sessions.remove(&session) {
            Ok(())
        } else {
            Err(ServerError::UnknownSession(session))
        }
    }

    /// Number of currently open sessions — the network front end's
    /// leak detector: every disconnect must drive this back down.
    pub fn session_count(&self) -> usize {
        self.shared.lock().sessions.len()
    }

    /// Programs currently queued for the writer (admission-control
    /// signal; the published `server/queue_depth` gauge's source).
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Acquire the current committed snapshot (lock-free reads from
    /// then on; see [`SnapshotCell`]).
    pub fn snapshot(&self) -> Snapshot {
        self.shared.cell.load()
    }

    /// The current snapshot epoch — one publish per committed batch.
    /// A single atomic load; never contends with the writer.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// Time-travel read: the snapshot published at exactly `epoch`, if
    /// the MVCC ring still retains it (see
    /// [`ServerConfig::retain_versions`]). `None` once the retention
    /// policy has trimmed that version — though snapshots already
    /// loaded stay valid forever regardless.
    pub fn snapshot_at(&self, epoch: u64) -> Option<Snapshot> {
        self.shared.cell.load_at(epoch)
    }

    /// The epochs currently retained by the MVCC ring, oldest first.
    pub fn retained_epochs(&self) -> Vec<u64> {
        self.shared.cell.retained_epochs()
    }

    /// Enqueue `program` for `session`. Returns a ticket redeemable
    /// exactly once via [`Server::wait`].
    pub fn submit(&self, session: SessionId, program: Program) -> Result<Ticket, ServerError> {
        self.shared.submit(session, program)
    }

    /// Block until the writer acks `ticket`. Each ticket may be waited
    /// on exactly once.
    pub fn wait(&self, ticket: Ticket) -> Result<Ack, ServerError> {
        self.shared.wait(ticket)
    }

    /// [`Server::submit`] + [`Server::wait`] in one call.
    pub fn submit_wait(&self, session: SessionId, program: Program) -> Result<Ack, ServerError> {
        let ticket = self.submit(session, program)?;
        self.wait(ticket)
    }

    /// Test support: hold the writer idle so submissions accumulate in
    /// the queue (deterministic batch formation and queue-full tests).
    pub fn pause_writer(&self) {
        self.shared.lock().paused = true;
    }

    /// Lift a [`Server::pause_writer`] hold.
    pub fn resume_writer(&self) {
        self.shared.lock().paused = false;
        self.shared.work.notify_all();
    }

    /// Stop accepting new programs without waiting for the writer:
    /// later submissions fail with [`ServerError::Shutdown`], while
    /// everything already queued still drains and acks. Call
    /// [`Server::shutdown`] afterwards to join the writer.
    pub fn begin_shutdown(&self) {
        self.shared.lock().shutdown = true;
        self.shared.work.notify_all();
    }

    /// Shut down: stop accepting new programs, let the writer drain
    /// everything already queued, join it, and hand back the store.
    pub fn shutdown(self) -> Result<Store, ServerError> {
        self.shutdown_impl()
    }

    /// [`Server::shutdown`] through a shared reference, for owners
    /// that hold the server behind an `Arc` (the network front end):
    /// drains the queue, joins the writer, returns the store. Every
    /// accepted ticket has its completion posted before this returns,
    /// so pending [`Server::wait`] calls cannot block forever. A
    /// second call returns [`ServerError::Shutdown`].
    pub fn drain_shutdown(&self) -> Result<Store, ServerError> {
        self.shutdown_impl()
    }

    fn shutdown_impl(&self) -> Result<Store, ServerError> {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        let handle = self
            .writer
            .lock()
            .expect("writer handle poisoned")
            .take()
            .ok_or(ServerError::Shutdown)?;
        handle
            .join()
            .map_err(|_| ServerError::Store("writer thread panicked".into()))
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.shutdown_impl();
    }
}

fn writer_loop(shared: Arc<Shared>, mut store: Store) -> Store {
    let mut commit_seq: u64 = 0;
    loop {
        let batch: Vec<Request> = {
            let mut state = shared.lock();
            loop {
                // Shutdown overrides pause: queued work always drains
                // before the writer exits.
                let runnable = !state.queue.is_empty() && (!state.paused || state.shutdown);
                if runnable && state.failed.is_none() {
                    break;
                }
                if state.shutdown {
                    return store;
                }
                state = shared.work.wait(state).expect("server state poisoned");
            }
            let take = state.queue.len().min(shared.config.max_batch);
            let batch: Vec<Request> = state.queue.drain(..take).collect();
            good_trace::gauge_set("server/queue_depth", state.queue.len() as i64);
            batch
        };
        let mut batch_span = good_trace::span("server", "server/batch");
        batch_span.arg("programs", batch.len());
        // The trace histogram entry point is u64-valued; batch size
        // reuses it as a plain count histogram.
        good_trace::observe_ns("server/batch_size", batch.len() as u64);
        let programs: Vec<Program> = batch.iter().map(|req| req.program.clone()).collect();
        match store.execute_group(&programs) {
            Ok(outcomes) => {
                let epoch = {
                    let _publish_span = good_trace::span("server", "server/publish");
                    // Zero-copy publish: the store's committed handle
                    // is shared into the ring as-is.
                    shared.cell.publish_arc(store.instance_arc())
                };
                batch_span.arg("epoch", epoch);
                let mut state = shared.lock();
                for (req, outcome) in batch.into_iter().zip(outcomes) {
                    let seq = outcome.is_ok().then(|| {
                        commit_seq += 1;
                        commit_seq
                    });
                    state.completions.insert(
                        req.ticket,
                        Ok(Ack {
                            session: req.session,
                            commit_seq: seq,
                            epoch,
                            outcome,
                        }),
                    );
                }
                drop(state);
                shared.done.notify_all();
            }
            Err(err) => {
                // Journal I/O failure: the store is poisoned, nothing
                // in this batch (or behind it) can commit. Fail them
                // all and refuse further writes; committed snapshots
                // stay readable.
                let reason = err.to_string();
                batch_span.arg("failed", reason.clone());
                let mut state = shared.lock();
                state.failed = Some(reason.clone());
                for req in batch {
                    state.completions.insert(req.ticket, Err(reason.clone()));
                }
                while let Some(req) = state.queue.pop_front() {
                    state.completions.insert(req.ticket, Err(reason.clone()));
                }
                good_trace::gauge_set("server/queue_depth", 0);
                drop(state);
                shared.done.notify_all();
            }
        }
    }
}
