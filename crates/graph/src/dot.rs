//! Graphviz DOT emission.
//!
//! The GOOD paper's interface is graphical: schemes and instances are
//! drawn with rectangular object classes, oval printable classes, single
//! arrows for functional edges and double arrows for multivalued edges.
//! This module is the reproduction's rendering path — `good-core` maps
//! its structures onto [`DotNode`]/[`DotEdge`] styling and this writer
//! produces valid DOT text.

use crate::graph::{Graph, NodeId};
use std::fmt::Write;

/// Node shapes mirroring the paper's drawing conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// User-defined object classes (rectangles in the paper).
    Box,
    /// System-defined printable classes (ovals in the paper).
    Ellipse,
    /// Method nodes (diamonds in the paper).
    Diamond,
}

impl Shape {
    fn as_str(self) -> &'static str {
        match self {
            Shape::Box => "box",
            Shape::Ellipse => "ellipse",
            Shape::Diamond => "diamond",
        }
    }
}

/// Styling for one node.
#[derive(Debug, Clone)]
pub struct DotNode {
    /// The text shown inside the node.
    pub label: String,
    /// Node shape.
    pub shape: Shape,
    /// Bold outline — the paper uses bold for parts added by an operation.
    pub bold: bool,
    /// Double outline — the paper uses double outlines for deleted parts.
    pub doubled: bool,
}

impl DotNode {
    /// A plain box node with the given label.
    pub fn boxed(label: impl Into<String>) -> Self {
        DotNode {
            label: label.into(),
            shape: Shape::Box,
            bold: false,
            doubled: false,
        }
    }

    /// A plain oval node with the given label.
    pub fn oval(label: impl Into<String>) -> Self {
        DotNode {
            label: label.into(),
            shape: Shape::Ellipse,
            bold: false,
            doubled: false,
        }
    }
}

/// Styling for one edge.
#[derive(Debug, Clone)]
pub struct DotEdge {
    /// The edge label text.
    pub label: String,
    /// Double-headed arrow — the paper's rendering of multivalued edges.
    pub double_arrow: bool,
    /// Bold — parts added by an operation.
    pub bold: bool,
    /// Dashed — the paper's set-equality part of an abstraction.
    pub dashed: bool,
}

impl DotEdge {
    /// A plain single-arrow edge with the given label.
    pub fn plain(label: impl Into<String>) -> Self {
        DotEdge {
            label: label.into(),
            double_arrow: false,
            bold: false,
            dashed: false,
        }
    }
}

/// Escape a string for use inside a double-quoted DOT identifier.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render `graph` to DOT, with `node_style`/`edge_style` mapping payloads
/// to presentation.
pub fn to_dot<N, E>(
    graph: &Graph<N, E>,
    title: &str,
    mut node_style: impl FnMut(NodeId, &N) -> DotNode,
    mut edge_style: impl FnMut(&E) -> DotEdge,
) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{}\" {{", escape(title)).expect("write to String");
    writeln!(out, "  rankdir=LR;").expect("write to String");
    writeln!(out, "  node [fontname=\"Helvetica\"];").expect("write to String");
    writeln!(out, "  edge [fontname=\"Helvetica\"];").expect("write to String");
    for node in graph.nodes() {
        let style = node_style(node.id, node.payload);
        let mut attrs = format!(
            "label=\"{}\", shape={}",
            escape(&style.label),
            style.shape.as_str()
        );
        if style.bold {
            attrs.push_str(", style=bold, penwidth=2");
        }
        if style.doubled {
            attrs.push_str(", peripheries=2");
        }
        writeln!(out, "  n{} [{}];", node.id.index(), attrs).expect("write to String");
    }
    for edge in graph.edges() {
        let style = edge_style(edge.payload);
        let mut attrs = format!("label=\"{}\"", escape(&style.label));
        if style.double_arrow {
            attrs.push_str(", arrowhead=\"normalnormal\"");
        }
        if style.bold {
            attrs.push_str(", style=bold, penwidth=2");
        }
        if style.dashed {
            attrs.push_str(", style=dashed");
        }
        writeln!(
            out,
            "  n{} -> n{} [{}];",
            edge.src.index(),
            edge.dst.index(),
            attrs
        )
        .expect("write to String");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g: Graph<&str, &str> = Graph::new();
        let a = g.add_node("Info");
        let b = g.add_node("Date");
        g.add_edge(a, b, "created");
        let dot = to_dot(
            &g,
            "scheme",
            |_, n| DotNode::boxed(*n),
            |e| DotEdge::plain(*e),
        );
        assert!(dot.starts_with("digraph \"scheme\""));
        assert!(dot.contains("label=\"Info\""));
        assert!(dot.contains("label=\"created\""));
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn escapes_quotes_and_newlines() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\\b"), "a\\\\b");
    }

    #[test]
    fn styles_are_emitted() {
        let mut g: Graph<&str, &str> = Graph::new();
        let a = g.add_node("String");
        let b = g.add_node("M");
        g.add_edge(a, b, "links");
        let dot = to_dot(
            &g,
            "styled",
            |_, n| {
                if *n == "String" {
                    DotNode::oval(*n)
                } else {
                    DotNode {
                        label: (*n).into(),
                        shape: Shape::Diamond,
                        bold: true,
                        doubled: true,
                    }
                }
            },
            |e| DotEdge {
                label: (*e).into(),
                double_arrow: true,
                bold: true,
                dashed: true,
            },
        );
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains("arrowhead=\"normalnormal\""));
        assert!(dot.contains("style=dashed"));
    }
}
