//! End-to-end tests of the compiled `good-db` binary: `-c` mode,
//! script-file mode, and the interactive REPL via piped stdin.

use std::io::Write;
use std::process::{Command, Stdio};

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_good-db"))
}

const SETUP: &str = "class Info; printable String string; functional Info name String; \
                     multivalued Info links-to Info; init";

#[test]
fn dash_c_mode_runs_commands() {
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{SETUP}; insert Info as a; insert Info as b; edge a links-to b; stats"
        ))
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("2 nodes, 1 edges"), "{stdout}");
}

#[test]
fn dash_c_mode_handles_patterns_with_semicolons() {
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{SETUP}; insert Info as a; value String \"x\" as n; edge a name n; \
             match {{ i: Info; s: String; i -name-> s; }}"
        ))
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("1 matching(s)"), "{stdout}");
}

#[test]
fn script_file_mode() {
    let mut path = std::env::temp_dir();
    path.push(format!("good-cli-script-{}.gdb", std::process::id()));
    std::fs::write(
        &path,
        "# build a tiny base\n\
         class Info\n\
         printable String string\n\
         functional Info name String\n\
         init\n\
         insert Info as a\n\
         value String \"hello\" as n\n\
         edge a name n\n\
         match {\n  i: Info;\n  s: String = \"hello\";\n  i -name-> s;\n}\n\
         validate\n",
    )
    .expect("write script");
    let output = binary().arg(&path).output().expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("1 matching(s)"), "{stdout}");
    assert!(stdout.contains("all invariants hold"), "{stdout}");
    std::fs::remove_file(path).expect("cleanup");
}

#[test]
fn script_errors_exit_nonzero() {
    let output = binary()
        .arg("-c")
        .arg("complete nonsense")
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown command"), "{stderr}");
}

#[test]
fn save_and_load_round_trip() {
    let mut path = std::env::temp_dir();
    path.push(format!("good-cli-save-{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf8 temp path");
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{SETUP}; insert Info as a; insert Info as b; edge a links-to b; \
             save {path_str}; load {path_str}; stats"
        ))
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains(&format!("saved to {path_str}")), "{stdout}");
    assert!(stdout.contains(&format!("loaded {path_str}")), "{stdout}");
    assert!(stdout.contains("2 nodes, 1 edges"), "{stdout}");
    std::fs::remove_file(path).expect("cleanup");
}

#[test]
fn load_missing_file_exits_nonzero_with_message() {
    let output = binary()
        .arg("-c")
        .arg("load /nonexistent/good-db-missing.json")
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(
        stderr.contains("No such file") || stderr.contains("not found"),
        "{stderr}"
    );
}

#[test]
fn load_corrupt_file_exits_nonzero_with_parse_error() {
    let mut path = std::env::temp_dir();
    path.push(format!("good-cli-corrupt-{}.json", std::process::id()));
    std::fs::write(&path, "{\"nodes\": [truncated").expect("write corrupt file");
    let output = binary()
        .arg("-c")
        .arg(format!("load {}", path.display()))
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    std::fs::remove_file(path).expect("cleanup");
}

#[test]
fn save_without_an_open_base_exits_nonzero() {
    let output = binary()
        .arg("-c")
        .arg("save /tmp/good-db-never-written.json")
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("no open object base"), "{stderr}");
}

#[test]
fn save_to_unwritable_path_exits_nonzero() {
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{SETUP}; insert Info as a; save /nonexistent-dir/out.json"
        ))
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn load_over_an_existing_session_invalidates_handles() {
    let mut path = std::env::temp_dir();
    path.push(format!("good-cli-handles-{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf8 temp path");
    // `load` replaces the instance, so handles created before it must
    // not silently point at nodes of the new base.
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{SETUP}; insert Info as a; save {path_str}; load {path_str}; \
             edge a links-to a"
        ))
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown handle a"), "{stderr}");
    std::fs::remove_file(path).expect("cleanup");
}

// ----------------------------------------------- GOODQL `query` command

const QUERY_SETUP: &str = "class Info; printable String string; \
                           functional Info name String; \
                           multivalued Info links-to Info; init; \
                           insert Info as a; insert Info as b; \
                           value String \"hello\" as n; edge a name n; \
                           edge a links-to b; edge b links-to a";

#[test]
fn query_command_prints_rows() {
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{QUERY_SETUP}; query MATCH (i:Info)-[:name]->(s:String) RETURN s"
        ))
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("hello"), "{stdout}");
    assert!(stdout.contains("1 row(s)"), "{stdout}");
    // A property-path query through the two-cycle.
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{QUERY_SETUP}; query diff MATCH (i:Info)-[:links-to*2]->(j:Info) RETURN i, j"
        ))
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("2 row(s)"), "{stdout}");
    assert!(stdout.contains("core = relational = tarski"), "{stdout}");
}

#[test]
fn query_parse_error_exits_nonzero_with_a_caret() {
    let output = binary()
        .arg("-c")
        .arg(format!("{QUERY_SETUP}; query MATCH (i:Info RETURN i"))
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("parse error at byte"), "{stderr}");
    // The render quotes the source line and points a caret at the
    // offending byte.
    let caret_line = stderr
        .lines()
        .find(|line| line.trim_end().ends_with('^'))
        .unwrap_or_else(|| panic!("no caret line in {stderr}"));
    let quoted_line = stderr
        .lines()
        .find(|line| line.contains("MATCH (i:Info RETURN i"))
        .unwrap_or_else(|| panic!("source line not quoted in {stderr}"));
    let caret_col = caret_line.trim_end().chars().count() - 1;
    let pointed = quoted_line.chars().nth(caret_col);
    // The parser flags RETURN where `)` was expected.
    assert_eq!(pointed, Some('R'), "{stderr}");
}

#[test]
fn query_unknown_label_exits_nonzero() {
    let output = binary()
        .arg("-c")
        .arg(format!("{QUERY_SETUP}; query MATCH (x:Nope) RETURN x"))
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("Nope"), "{stderr}");
}

#[test]
fn oversized_query_exits_nonzero_before_parsing() {
    // Interior padding (trailing whitespace would be trimmed by the
    // command reader before the query ever sees it).
    let padding = " ".repeat(5000);
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{QUERY_SETUP}; query MATCH (i:Info){padding} RETURN i"
        ))
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("too long"), "{stderr}");
}

#[test]
fn fault_seed_flag_runs_a_crash_sweep() {
    let output = binary()
        .arg("--fault-seed")
        .arg("11")
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("crash schedules recovered to a committed prefix"),
        "{stdout}"
    );
}

#[test]
fn fault_crash_at_flag_replays_one_schedule_with_its_log() {
    let output = binary()
        .args(["--fault-seed", "11", "--fault-crash-at", "5"])
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("CRASH"), "{stdout}");
    assert!(stdout.contains("crash at op 5"), "{stdout}");
}

#[test]
fn fault_crash_at_out_of_range_exits_nonzero() {
    let output = binary()
        .args(["--fault-seed", "11", "--fault-crash-at", "999999"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("out of range"), "{stderr}");
}

// Concrete deserialization targets for the Chrome trace_event format
// `--profile` emits (the vendored JSON reader has no dynamic Value
// type, so the tests parse into typed structs).
#[derive(serde::Deserialize)]
#[allow(non_snake_case)]
struct TraceFile {
    traceEvents: Vec<TraceEvent>,
    displayTimeUnit: String,
}

#[derive(serde::Deserialize)]
#[allow(dead_code)]
struct TraceEvent {
    name: String,
    cat: String,
    ph: String,
    pid: u64,
    tid: u64,
    ts: f64,
    dur: f64,
    args: std::collections::BTreeMap<String, String>,
}

fn read_trace(path: &std::path::Path) -> TraceFile {
    let text = std::fs::read_to_string(path).expect("profile file exists");
    serde_json::from_str(&text).unwrap_or_else(|err| panic!("profile must parse: {err}\n{text}"))
}

#[test]
fn explain_command_prints_an_index_vs_scan_plan() {
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{SETUP}; insert Info as a; value String \"x\" as n; edge a name n; \
             explain {{ i: Info; s: String = \"x\"; i -name-> s; }}"
        ))
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("match plan (2 steps"), "{stdout}");
    assert!(stdout.contains("bind s [String]"), "{stdout}");
    assert!(stdout.contains("root candidates:"), "{stdout}");
}

#[test]
fn explain_without_a_base_exits_nonzero() {
    let output = binary()
        .arg("-c")
        .arg("class Info; explain { i: Info; }")
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("no open object base"), "{stderr}");
}

#[test]
fn profile_flag_writes_parseable_chrome_trace_with_match_spans() {
    let mut path = std::env::temp_dir();
    path.push(format!("good-cli-profile-{}.json", std::process::id()));
    let output = binary()
        .args(["--profile", path.to_str().expect("utf8 temp path")])
        .arg("-c")
        .arg(format!(
            "{SETUP}; insert Info as a; value String \"x\" as n; edge a name n; \
             match {{ i: Info; s: String; i -name-> s; }}; stats"
        ))
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    // With the recorder installed, `stats` appends a metrics snapshot.
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("metrics:"), "{stdout}");
    assert!(stdout.contains("match.calls"), "{stdout}");

    let trace = read_trace(&path);
    assert_eq!(trace.displayTimeUnit, "ms");
    assert!(!trace.traceEvents.is_empty());
    for event in &trace.traceEvents {
        assert_eq!(event.ph, "X");
        assert_eq!(event.pid, 1);
        assert!(event.dur >= 0.0 && event.ts >= 0.0);
    }
    let names: Vec<&str> = trace.traceEvents.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains(&"match/find"), "{names:?}");
    assert!(names.contains(&"match/plan"), "{names:?}");
    std::fs::remove_file(path).expect("cleanup");
}

#[test]
fn profile_flag_covers_store_op_and_method_spans_under_fault_injection() {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "good-cli-profile-fault-{}.json",
        std::process::id()
    ));
    let output = binary()
        .args(["--profile", path.to_str().expect("utf8 temp path")])
        .args(["--fault-seed", "11", "--fault-crash-at", "5"])
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let trace = read_trace(&path);
    let cats: std::collections::BTreeSet<&str> =
        trace.traceEvents.iter().map(|e| e.cat.as_str()).collect();
    for expected in ["store", "op", "method", "match"] {
        assert!(
            cats.contains(expected),
            "missing category {expected}: {cats:?}"
        );
    }
    let names: Vec<&str> = trace.traceEvents.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains(&"store/append"), "{names:?}");
    assert!(names.contains(&"store/recovery"), "{names:?}");
    assert!(names.contains(&"op/MC:Mark"), "{names:?}");
    assert!(names.contains(&"method/Mark"), "{names:?}");
    std::fs::remove_file(path).expect("cleanup");
}

#[test]
fn profile_flag_without_a_path_exits_nonzero() {
    let output = binary().arg("--profile").output().expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--profile requires"), "{stderr}");
}

#[test]
fn repl_reads_multiline_patterns_from_stdin() {
    let mut child = binary()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let stdin = child.stdin.as_mut().expect("stdin");
    stdin
        .write_all(
            b"class Info\nprintable String string\nfunctional Info name String\ninit\n\
              insert Info as a\nvalue String \"hi\" as n\nedge a name n\n\
              match {\n i: Info;\n s: String;\n i -name-> s;\n}\nquit\n",
        )
        .expect("write stdin");
    let output = child.wait_with_output().expect("binary finishes");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("good-db"), "{stdout}");
    assert!(stdout.contains("1 matching(s)"), "{stdout}");
}

#[test]
fn serve_scripted_mode_prints_per_session_and_final_summaries() {
    let output = binary()
        .args(["serve", "--sessions", "3", "--programs", "5", "--seed", "9"])
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("session 1:"), "{stdout}");
    assert!(stdout.contains("session 3:"), "{stdout}");
    assert!(stdout.contains("from 3 sessions"), "{stdout}");
    assert!(stdout.contains("final instance:"), "{stdout}");
}

#[test]
fn serve_unknown_session_exits_2_with_its_own_message() {
    let output = binary()
        .args(["serve", "--inject", "unknown-session"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown session id"), "{stderr}");
}

#[test]
fn serve_submission_after_shutdown_exits_3_with_its_own_message() {
    let output = binary()
        .args(["serve", "--inject", "after-shutdown"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(3), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("shut down"), "{stderr}");
}

#[test]
fn serve_queue_full_backpressure_exits_4_and_names_the_capacity() {
    let output = binary()
        .args(["serve", "--inject", "queue-full", "--queue-capacity", "4"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(4), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("queue full"), "{stderr}");
    assert!(stderr.contains("capacity 4"), "{stderr}");
}

#[test]
fn serve_rejects_unknown_flags_and_injections() {
    let output = binary()
        .args(["serve", "--bogus"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown serve flag"), "{stderr}");
    let output = binary()
        .args(["serve", "--inject", "meteor-strike"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown --inject"), "{stderr}");
}

// ------------------------------------------------------- TCP serve + client

/// Spawn `serve --listen 127.0.0.1:0` and return the child plus the
/// OS-assigned address parsed from its first stdout line.
fn spawn_listener(extra: &[&str]) -> (std::process::Child, String) {
    use std::io::{BufRead, BufReader};
    let mut child = binary()
        .args(["serve", "--listen", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    // Reattach for later draining of the summary.
    child.stdout = Some(reader.into_inner());
    (child, addr)
}

/// Tell a listener to drain and collect its exit.
fn drain_listener(mut child: std::process::Child) -> std::process::Output {
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(b"quit\n")
        .expect("request drain");
    child.wait_with_output().expect("serve exits")
}

#[test]
fn serve_listen_and_client_roundtrip_over_tcp() {
    let (server, addr) = spawn_listener(&[]);
    let client = binary()
        .args([
            "client",
            &addr,
            "--programs",
            "3",
            "--seed",
            "7",
            "--snapshot",
        ])
        .output()
        .expect("client runs");
    assert!(client.status.success(), "{client:?}");
    let stdout = String::from_utf8_lossy(&client.stdout);
    assert!(stdout.contains("connected: session 1"), "{stdout}");
    assert!(stdout.contains("commit 1 @ epoch"), "{stdout}");
    assert!(stdout.contains("3 committed, 0 rejected"), "{stdout}");
    assert!(stdout.contains("snapshot @ epoch"), "{stdout}");

    let output = drain_listener(server);
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("drained: 1 connections served"), "{stdout}");
}

#[test]
fn client_query_and_dot_over_tcp() {
    let (server, addr) = spawn_listener(&[]);
    // Two sequential clients share one server: the second sees the
    // first's commits and renders the final DOT.
    let first = binary()
        .args(["client", &addr, "--programs", "2", "--seed", "11"])
        .output()
        .expect("client runs");
    assert!(first.status.success(), "{first:?}");
    let second = binary()
        .args(["client", &addr, "--programs", "0", "--dot"])
        .output()
        .expect("client runs");
    assert!(second.status.success(), "{second:?}");
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(stdout.contains("connected: session 2"), "{stdout}");
    assert!(stdout.contains("digraph"), "{stdout}");

    let output = drain_listener(server);
    assert!(output.status.success(), "{output:?}");
}

#[test]
fn client_against_no_server_exits_1() {
    // Port 1 on loopback is essentially never listening.
    let output = binary()
        .args(["client", "127.0.0.1:1"])
        .output()
        .expect("client runs");
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("i/o failure"), "{stderr}");
}

#[test]
fn serve_listen_drains_in_flight_commits_before_exit() {
    let (server, addr) = spawn_listener(&[]);
    let client = binary()
        .args(["client", &addr, "--programs", "5", "--seed", "3"])
        .output()
        .expect("client runs");
    assert!(client.status.success(), "{client:?}");
    let output = drain_listener(server);
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    // The drain summary reports the committed state, proving the
    // journal held the acked prefix at exit.
    assert!(stdout.contains("final instance"), "{stdout}");
}

// ------------------------------------------------------ introspection

#[test]
fn client_stats_flag_prints_a_parseable_snapshot() {
    let (server, addr) = spawn_listener(&[]);
    // A little traffic first so the counters are nonzero.
    let warmup = binary()
        .args(["client", &addr, "--programs", "2", "--seed", "5"])
        .output()
        .expect("client runs");
    assert!(warmup.status.success(), "{warmup:?}");
    let probe = binary()
        .args(["client", &addr, "--programs", "0", "--stats"])
        .output()
        .expect("client runs");
    assert!(probe.status.success(), "{probe:?}");
    let stdout = String::from_utf8_lossy(&probe.stdout);
    // The snapshot JSON starts after the "connected:" banner line.
    let json = &stdout[stdout.find('{').expect("JSON in output")..];
    let doc: serde_json::Value =
        serde_json::from_str(json.trim()).unwrap_or_else(|err| panic!("{err}\n{json}"));
    for section in ["net", "server", "mvcc", "metrics", "slow"] {
        assert!(doc.get(section).is_some(), "missing {section}: {stdout}");
    }
    assert!(
        doc["metrics"]["counters"]["server/committed"]
            .as_u64()
            .unwrap()
            >= 2,
        "{stdout}"
    );
    drain_listener(server);
}

#[test]
fn top_renders_a_refreshing_dashboard() {
    let (server, addr) = spawn_listener(&[]);
    let warmup = binary()
        .args(["client", &addr, "--programs", "3", "--seed", "2"])
        .output()
        .expect("client runs");
    assert!(warmup.status.success(), "{warmup:?}");
    let top = binary()
        .args(["top", &addr, "--count", "2", "--interval-ms", "10"])
        .output()
        .expect("top runs");
    assert!(top.status.success(), "{top:?}");
    let stdout = String::from_utf8_lossy(&top.stdout);
    assert_eq!(
        stdout.matches("good-db top").count(),
        2,
        "two refreshes: {stdout}"
    );
    assert!(stdout.contains("— epoch"), "{stdout}");
    assert!(stdout.contains("conns"), "{stdout}");
    assert!(stdout.contains("committed 3"), "{stdout}");
    assert!(stdout.contains("latency: commit p50="), "{stdout}");
    drain_listener(server);
}

#[test]
fn top_against_no_server_exits_1() {
    let output = binary()
        .args(["top", "127.0.0.1:1"])
        .output()
        .expect("top runs");
    assert_eq!(output.status.code(), Some(1), "{output:?}");
}

#[test]
fn serve_listen_profile_writes_chrome_trace_on_drain() {
    let dir = std::env::temp_dir().join(format!("good-db-listen-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let profile = dir.join("listen.json");
    let (server, addr) = spawn_listener(&["--profile", profile.to_str().unwrap()]);
    let client = binary()
        .args(["client", &addr, "--programs", "2", "--seed", "13"])
        .output()
        .expect("client runs");
    assert!(client.status.success(), "{client:?}");
    let output = drain_listener(server);
    assert!(output.status.success(), "{output:?}");

    // The drain wrote a parseable Chrome trace covering the server
    // pipeline: net frames, enqueue, batch, commit, fsync, ack.
    let trace = read_trace(&profile);
    assert_eq!(trace.displayTimeUnit, "ms");
    let names: std::collections::BTreeSet<&str> = trace
        .traceEvents
        .iter()
        .map(|event| event.name.as_str())
        .collect();
    for expected in [
        "net/conn",
        "net/frame",
        "net/ack",
        "server/enqueue",
        "server/batch",
        "server/commit",
        "server/publish",
        "store/fsync",
    ] {
        assert!(names.contains(expected), "missing {expected}: {names:?}");
    }
    // Traced spans carry the wire trace id argument — absent here
    // (the scripted client does not set one), but commit spans must
    // still carry their stage args.
    let commit = trace
        .traceEvents
        .iter()
        .find(|event| event.name == "server/commit")
        .expect("commit span");
    assert!(commit.args.contains_key("total_ns"), "{:?}", commit.args);
    std::fs::remove_dir_all(&dir).ok();
}
