//! Offline stand-in for `bytes`: an immutable, cheaply clonable byte
//! buffer. Only the small surface this workspace uses is provided.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable shared byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(data: [u8; N]) -> Self {
        Bytes::copy_from_slice(&data)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.data.iter() {
            if byte.is_ascii_graphic() || byte == b' ' {
                write!(f, "{}", byte as char)?;
            } else {
                write!(f, "\\x{byte:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {
    fn to_content(&self) -> serde::Content {
        serde::Content::Seq(
            self.data
                .iter()
                .map(|&b| serde::Content::Int(b as i128))
                .collect(),
        )
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Bytes {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        Vec::<u8>::from_content(content).map(Bytes::from)
    }
}
