//! Property-path reference test: the compiled `*m..M` repetition —
//! through all three execution lanes — is checked against a naive
//! boolean matrix-power oracle (Floyd–Warshall-style closure plus
//! exact-length walk sets) on small random graphs, including
//! cycle-heavy ones and the `*0..` edge cases.
//!
//! Walk semantics: `(a, b)` matches `-[:e*m..M]->` iff some walk from
//! `a` to `b` along `e`-edges has length in `[m, M]`. The oracle
//! computes exact-length reachability matrices `R_l` by repeated
//! boolean matrix multiplication; for unbounded specs it is enough to
//! examine lengths up to `m + n` (if a walk of length ≥ m exists, a
//! minimal one among those of length ≥ m has length < m + n, since a
//! longer one contains a removable cycle while staying ≥ m).

use good_core::gen::bench_scheme;
use good_core::instance::Instance;
use good_core::value::Value;
use good_graph::NodeId;
use good_query::exec::{execute, Backend};
use good_query::{compile, parse_query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A random `Info` digraph (possibly cyclic, self-loops included) with
/// named nodes so rows identify objects stably.
fn random_graph(seed: u64, nodes: usize, edge_prob: f64) -> (Instance, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Instance::new(bench_scheme());
    let infos: Vec<NodeId> = (0..nodes)
        .map(|index| {
            let info = db.add_object("Info").expect("node");
            let name = db
                .add_printable("String", Value::str(format!("node-{index}")))
                .expect("name");
            db.add_edge(info, "name", name).expect("edge");
            info
        })
        .collect();
    for &src in &infos {
        for &dst in &infos {
            if rng.gen_bool(edge_prob) {
                db.add_edge(src, "links-to", dst).expect("edge");
            }
        }
    }
    (db, infos)
}

/// Exact-length boolean reachability: `matrices[l][i][j]` ⇔ some walk
/// of length exactly `l` goes `i → j`. Computed by naive O(n³) boolean
/// matrix multiplication — deliberately the dumbest correct thing.
fn walk_matrices(adjacency: &[Vec<bool>], max_len: usize) -> Vec<Vec<Vec<bool>>> {
    let n = adjacency.len();
    let identity: Vec<Vec<bool>> = (0..n).map(|i| (0..n).map(|j| i == j).collect()).collect();
    let mut matrices = vec![identity];
    for _ in 1..=max_len {
        let prev = matrices.last().expect("nonempty");
        let mut next = vec![vec![false; n]; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for k in 0..n {
                if prev[i][k] {
                    for j in 0..n {
                        if adjacency[k][j] {
                            next[i][j] = true;
                        }
                    }
                }
            }
        }
        matrices.push(next);
    }
    matrices
}

/// The oracle's answer to `-[:links-to*min..max]->`: all `(i, j)` with
/// a walk length in range.
fn oracle_pairs(adjacency: &[Vec<bool>], min: u32, max: Option<u32>) -> BTreeSet<(usize, usize)> {
    let n = adjacency.len();
    // Unbounded specs saturate by length min + n (see module docs).
    let horizon = max.map_or(min as usize + n, |m| m as usize);
    let matrices = walk_matrices(adjacency, horizon);
    let mut pairs = BTreeSet::new();
    for matrix in &matrices[min as usize..] {
        for (i, row) in matrix.iter().enumerate() {
            for (j, reachable) in row.iter().enumerate() {
                if *reachable {
                    pairs.insert((i, j));
                }
            }
        }
    }
    pairs
}

/// Ask one backend for the pairs of `-[:links-to*spec]->`.
fn engine_pairs(
    db: &Instance,
    infos: &[NodeId],
    spec: &str,
    backend: Backend,
) -> BTreeSet<(usize, usize)> {
    let text = format!("MATCH (a:Info)-[:links-to{spec}]->(b:Info) RETURN a, b");
    let query = parse_query(&text).expect("parse");
    let compiled = compile(&query, db.scheme()).expect("compile");
    let output = execute(db, &compiled, backend).expect("execute");
    let index_of = |cell: &str| -> usize {
        let raw = cell.strip_prefix("Info#").expect("object cell");
        let node_index: usize = raw.parse().expect("node index");
        infos
            .iter()
            .position(|node| node.index() == node_index)
            .expect("known node")
    };
    output
        .rows
        .iter()
        .map(|row| (index_of(&row[0]), index_of(&row[1])))
        .collect()
}

#[test]
fn path_answers_match_the_matrix_oracle() {
    // Densities chosen to cover sparse DAG-ish graphs, cycle-heavy
    // graphs, and near-complete ones.
    let specs: &[(u32, Option<u32>)] = &[
        (1, None),    // *
        (0, None),    // *0..
        (2, None),    // *2..
        (3, None),    // *3..
        (0, Some(0)), // *0
        (1, Some(1)), // *1
        (2, Some(2)), // *2
        (0, Some(3)), // *0..3
        (1, Some(4)), // *1..4
        (2, Some(5)), // *2..5
    ];
    for seed in 0..12u64 {
        let nodes = 3 + (seed as usize % 5);
        let edge_prob = [0.15, 0.3, 0.6][seed as usize % 3];
        let (db, infos) = random_graph(seed, nodes, edge_prob);
        let links = good_core::label::Label::new("links-to");
        let adjacency: Vec<Vec<bool>> = infos
            .iter()
            .map(|&src| {
                let targets: BTreeSet<NodeId> = db.targets(src, &links).collect();
                infos.iter().map(|dst| targets.contains(dst)).collect()
            })
            .collect();
        for &(min, max) in specs {
            let spec = match (min, max) {
                (1, None) => "*".to_string(),
                (m, None) => format!("*{m}.."),
                (m, Some(x)) if m == x => format!("*{m}"),
                (m, Some(x)) => format!("*{m}..{x}"),
            };
            let expected = oracle_pairs(&adjacency, min, max);
            for backend in Backend::ALL {
                let got = engine_pairs(&db, &infos, &spec, backend);
                assert_eq!(
                    got,
                    expected,
                    "seed {seed}, spec {spec}, backend {}: engine disagrees with the \
                     matrix oracle",
                    backend.name()
                );
            }
        }
    }
}

#[test]
fn self_loop_walks_every_length() {
    // One node with a self-loop: every spec with max ≥ 1 matches (n, n),
    // and *0 matches it too (identity).
    let mut db = Instance::new(bench_scheme());
    let node = db.add_object("Info").expect("node");
    db.add_edge(node, "links-to", node).expect("loop");
    for spec in ["*", "*0..", "*5..", "*3", "*0", "*2..7"] {
        let text = format!("MATCH (a:Info)-[:links-to{spec}]->(b:Info) RETURN a, b");
        let query = parse_query(&text).expect("parse");
        let compiled = compile(&query, db.scheme()).expect("compile");
        for backend in Backend::ALL {
            let output = execute(&db, &compiled, backend).expect("execute");
            assert_eq!(
                output.rows.len(),
                1,
                "spec {spec}, backend {}",
                backend.name()
            );
        }
    }
}

#[test]
fn two_cycle_parity_is_respected() {
    // a ⇄ b: walks from a back to a have even length, walks a → b odd
    // length. `*2` must exclude (a, b); `*3` must exclude (a, a).
    let mut db = Instance::new(bench_scheme());
    let a = db.add_object("Info").expect("node");
    let b = db.add_object("Info").expect("node");
    db.add_edge(a, "links-to", b).expect("edge");
    db.add_edge(b, "links-to", a).expect("edge");
    let pairs_for = |spec: &str| {
        let text = format!("MATCH (x:Info)-[:links-to{spec}]->(y:Info) RETURN x, y");
        let compiled = compile(&parse_query(&text).expect("parse"), db.scheme()).expect("compile");
        let core = execute(&db, &compiled, Backend::Core).expect("core");
        for backend in [Backend::Relational, Backend::Tarski] {
            assert_eq!(
                execute(&db, &compiled, backend).expect("run").rows,
                core.rows,
                "spec {spec}"
            );
        }
        core.rows
    };
    let even = pairs_for("*2");
    assert_eq!(even.len(), 2); // (a,a) and (b,b)
    assert!(even.iter().all(|row| row[0] == row[1]));
    let odd = pairs_for("*3");
    assert_eq!(odd.len(), 2); // (a,b) and (b,a)
    assert!(odd.iter().all(|row| row[0] != row[1]));
}
