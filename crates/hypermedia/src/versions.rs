//! The Figure 17 sub-instance: "a sequence of versions of related
//! information".
//!
//! Four info documents form a version chain (three `Version` nodes link
//! consecutive pairs via `old`/`new`). Each document links to some of
//! four target documents; the first two share exactly the same link set,
//! which is what the Figure 18 abstraction groups by.

use crate::scheme::build_scheme;
use good_core::instance::Instance;
use good_core::snapshot::SnapshotCell;
use good_graph::NodeId;

/// Handles into the Figure 17 instance.
#[derive(Debug, Clone)]
pub struct VersionHandles {
    /// The four versioned documents, oldest first.
    pub documents: [NodeId; 4],
    /// The three version nodes chaining them.
    pub versions: [NodeId; 3],
    /// The four target documents.
    pub targets: [NodeId; 4],
}

/// Build the Figure 17 instance.
pub fn build_versions_instance() -> (Instance, VersionHandles) {
    let mut db = Instance::new(build_scheme());
    let targets: [NodeId; 4] = std::array::from_fn(|_| db.add_object("Info").expect("Info"));
    // documents[0] and documents[1] link to {t0, t1}; documents[2] to
    // {t1, t2}; documents[3] to {t2, t3}.
    let link_sets: [&[usize]; 4] = [&[0, 1], &[0, 1], &[1, 2], &[2, 3]];
    let documents: [NodeId; 4] = std::array::from_fn(|index| {
        let info = db.add_object("Info").expect("Info");
        for &target in link_sets[index] {
            db.add_edge(info, "links-to", targets[target])
                .expect("link");
        }
        info
    });
    let versions: [NodeId; 3] = std::array::from_fn(|index| {
        let version = db.add_object("Version").expect("Version");
        db.add_edge(version, "old", documents[index]).expect("old");
        db.add_edge(version, "new", documents[index + 1])
            .expect("new");
        version
    });
    (
        db,
        VersionHandles {
            documents,
            versions,
            targets,
        },
    )
}

/// Build the Figure 17 history *as* a history: publish one snapshot
/// per version step through a [`SnapshotCell`], so the version chain
/// the paper draws as `Version` nodes is also materialized as MVCC
/// epochs.
///
/// Epoch 0 holds the four target documents plus the original document;
/// epoch `i` (1..=3) additionally holds documents `0..=i` and the
/// `i` `Version` nodes chaining them. Because [`Instance`] is
/// persistent, each retained epoch shares all unchanged structure with
/// its neighbours — the whole history costs O(total delta), not
/// O(versions × graph). Time-travel back to any epoch with
/// [`SnapshotCell::load_at`]; the final epoch is exactly the
/// [`build_versions_instance`] graph.
pub fn publish_version_history() -> (SnapshotCell, VersionHandles) {
    let mut db = Instance::new(build_scheme());
    let targets: [NodeId; 4] = std::array::from_fn(|_| db.add_object("Info").expect("Info"));
    let link_sets: [&[usize]; 4] = [&[0, 1], &[0, 1], &[1, 2], &[2, 3]];
    let add_document = |db: &mut Instance, index: usize| {
        let info = db.add_object("Info").expect("Info");
        for &target in link_sets[index] {
            db.add_edge(info, "links-to", targets[target])
                .expect("link");
        }
        info
    };
    let mut documents = vec![add_document(&mut db, 0)];
    // O(1) publish: the clone shares the whole graph with `db`.
    let cell = SnapshotCell::new(db.clone());
    let mut versions = Vec::new();
    for index in 1..4 {
        documents.push(add_document(&mut db, index));
        let version = db.add_object("Version").expect("Version");
        db.add_edge(version, "old", documents[index - 1])
            .expect("old");
        db.add_edge(version, "new", documents[index]).expect("new");
        versions.push(version);
        cell.publish(db.clone());
    }
    let handles = VersionHandles {
        documents: documents.try_into().expect("four documents"),
        versions: versions.try_into().expect("three versions"),
        targets,
    };
    (cell, handles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates() {
        let (db, _) = build_versions_instance();
        db.validate().unwrap();
    }

    #[test]
    fn chain_structure() {
        let (db, h) = build_versions_instance();
        for (index, version) in h.versions.iter().enumerate() {
            assert_eq!(
                db.functional_target(*version, &"old".into()),
                Some(h.documents[index])
            );
            assert_eq!(
                db.functional_target(*version, &"new".into()),
                Some(h.documents[index + 1])
            );
        }
    }

    #[test]
    fn published_history_serves_every_version_step() {
        let (cell, h) = publish_version_history();
        assert_eq!(cell.epoch(), 3);
        for epoch in 0..=3u64 {
            let snap = cell.load_at(epoch).expect("epoch retained");
            let db = snap.instance();
            db.validate().unwrap();
            // 4 targets + (epoch + 1) documents + epoch version nodes.
            let documents = epoch as usize + 1;
            assert_eq!(db.node_count(), 4 + documents + epoch as usize);
            // Documents up to this epoch exist; later ones do not.
            for (index, doc) in h.documents.iter().enumerate() {
                assert_eq!(db.contains_node(*doc), index < documents);
            }
            // The chain built so far is intact at this epoch.
            for version in h.versions.iter().take(epoch as usize) {
                assert!(db.functional_target(*version, &"old".into()).is_some());
                assert!(db.functional_target(*version, &"new".into()).is_some());
            }
        }
    }

    #[test]
    fn published_history_final_epoch_matches_static_build() {
        let (cell, h) = publish_version_history();
        let latest = cell.load();
        let (static_db, static_h) = build_versions_instance();
        assert_eq!(latest.instance().node_count(), static_db.node_count());
        assert_eq!(latest.instance().edge_count(), static_db.edge_count());
        // Same link-set structure (the Figure 18 abstraction input).
        let links = |db: &Instance, doc| db.target_set(doc, &"links-to".into());
        for index in 0..4 {
            assert_eq!(
                links(latest.instance(), h.documents[index]).len(),
                links(&static_db, static_h.documents[index]).len()
            );
        }
        assert_eq!(
            links(latest.instance(), h.documents[0]),
            links(latest.instance(), h.documents[1])
        );
    }

    #[test]
    fn first_two_documents_share_link_sets() {
        let (db, h) = build_versions_instance();
        let links = |doc| db.target_set(doc, &"links-to".into());
        assert_eq!(links(h.documents[0]), links(h.documents[1]));
        assert_ne!(links(h.documents[1]), links(h.documents[2]));
        assert_ne!(links(h.documents[2]), links(h.documents[3]));
    }
}
