//! Figure-output golden tests: the DOT renderings of the paper's
//! reproduced figures (4–31, via [`good_bench::figure_dots`]) must be
//! byte-identical to the checked-in files under `tests/goldens/`.
//!
//! When an intentional rendering change lands, regenerate with
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p good-bench --test figures
//! ```
//!
//! and commit the diff.

use std::path::PathBuf;

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

#[test]
fn figure_dot_renderings_match_the_checked_in_goldens() {
    let update = std::env::var_os("UPDATE_GOLDENS").is_some();
    let dir = goldens_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create goldens dir");
    }
    let mut checked = 0usize;
    for (name, contents) in good_bench::figure_dots() {
        let path = dir.join(name);
        if update {
            std::fs::write(&path, &contents).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|err| {
            panic!(
                "missing golden {name}: {err}\n\
                 regenerate with UPDATE_GOLDENS=1 cargo test -p good-bench --test figures"
            )
        });
        assert!(
            golden == contents,
            "figure rendering {name} drifted from its golden.\n\
             If the change is intentional, regenerate with\n\
             UPDATE_GOLDENS=1 cargo test -p good-bench --test figures\n\
             --- golden ---\n{golden}\n--- current ---\n{contents}"
        );
        checked += 1;
    }
    if !update {
        assert_eq!(checked, 10, "expected all 10 figure renderings");
    }
}

#[test]
fn figure_renderings_are_deterministic() {
    // Goldens are only meaningful if regeneration is byte-stable.
    assert_eq!(good_bench::figure_dots(), good_bench::figure_dots());
}
