//! Linearizability differential proptest.
//!
//! K sessions race `random_workload` programs through the server.
//! Because GOOD programs are deterministic graph transformations, the
//! server's history is linearizable iff its final instance equals the
//! result of applying the committed programs serially via plain
//! [`Program::apply`] in the server-reported commit order — and that
//! order must respect each session's submission order (real-time order
//! within a session). Both are checked for every random case.
//!
//! 256 cases run in tier-1; the 10k-case variant is `#[ignore]`d and
//! runs in the nightly CI cron (`cargo test --workspace --release --
//! --ignored`).

use good_core::gen::{bench_scheme, random_workload};
use good_core::instance::Instance;
use good_core::program::{Env, Program, DEFAULT_FUEL};
use good_server::{Server, ServerConfig};
use good_store::vfs::{FaultPlan, FaultVfs, Vfs};
use good_store::Store;
use proptest::prelude::*;
use std::sync::Arc;

/// One session's view of its run: commit sequence numbers in
/// submission order (None = model-rejected), paired with the epoch the
/// commit was published at and the program itself.
struct SessionRun {
    committed: Vec<(u64, u64, Program)>,
    seqs_in_submission_order: Vec<Option<u64>>,
}

fn run_case(seed: u64, sessions: usize, per_session: usize, max_batch: usize) {
    let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(FaultPlan::reliable(seed)));
    let store =
        Store::create_with_vfs(vfs, "/linz/db.journal", bench_scheme()).expect("create store");
    let server = Server::start(
        store,
        ServerConfig {
            queue_capacity: sessions * per_session + 1,
            max_batch,
            ..ServerConfig::default()
        },
    );
    let programs = random_workload(seed, sessions * per_session);
    let chunks: Vec<Vec<Program>> = programs
        .chunks(per_session)
        .map(|chunk| chunk.to_vec())
        .collect();

    let runs: Vec<SessionRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let server = &server;
                scope.spawn(move || {
                    let session = server.open_session();
                    let mut committed = Vec::new();
                    let mut seqs = Vec::new();
                    for program in chunk {
                        let ack = server
                            .submit_wait(session, program.clone())
                            .expect("reliable vfs: submission cannot fail");
                        seqs.push(ack.commit_seq);
                        if let Some(seq) = ack.commit_seq {
                            committed.push((seq, ack.epoch, program));
                        }
                    }
                    SessionRun {
                        committed,
                        seqs_in_submission_order: seqs,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let final_snapshot = server.snapshot();
    // Grab every version the MVCC ring still retains before shutdown;
    // the handles stay valid (and frozen) after it.
    let retained: Vec<_> = server
        .retained_epochs()
        .into_iter()
        .filter_map(|epoch| server.snapshot_at(epoch))
        .collect();
    let store = server.shutdown().expect("clean shutdown");
    assert!(
        final_snapshot.instance().isomorphic_to(store.instance()),
        "published snapshot must be the store's committed state"
    );

    // Real-time order within a session: commit sequence numbers must
    // be strictly increasing in submission order.
    for run in &runs {
        let seqs: Vec<u64> = run
            .seqs_in_submission_order
            .iter()
            .flatten()
            .copied()
            .collect();
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "session's commits out of submission order: {seqs:?}"
        );
    }

    // The serial witness: every committed program, ordered by the
    // server's reported commit sequence, applied with plain
    // Program::apply to a fresh instance.
    let mut history: Vec<(u64, u64, Program)> =
        runs.into_iter().flat_map(|run| run.committed).collect();
    history.sort_by_key(|(seq, _, _)| *seq);
    let seqs: Vec<u64> = history.iter().map(|(seq, _, _)| *seq).collect();
    assert_eq!(
        seqs,
        (1..=seqs.len() as u64).collect::<Vec<u64>>(),
        "commit sequence must be dense and unique"
    );
    let mut serial = Instance::new(bench_scheme());
    let mut env = Env::with_fuel(DEFAULT_FUEL);
    for (seq, _, program) in &history {
        env.refuel();
        program
            .apply(&mut serial, &mut env)
            .unwrap_or_else(|err| panic!("serial replay diverged at commit {seq}: {err}"));
    }
    assert!(
        final_snapshot.instance().isomorphic_to(&serial),
        "server result is not the serial order it reported \
         (seed {seed}, {sessions} sessions × {per_session})"
    );

    // MVCC: every retained version must be *bit-identical* to the
    // serial replay of exactly the commits acked at or below its
    // epoch — the time-travel reads really are the history's prefixes,
    // untouched by the publishes (and structural sharing) that came
    // after them. Epochs are published per batch in commit order, so
    // ack epochs are nondecreasing along the commit sequence and each
    // check extends the previous replay.
    let mut prefix = Instance::new(bench_scheme());
    let mut replayed = history.iter().peekable();
    for snapshot in &retained {
        while let Some((_, epoch, program)) = replayed.peek() {
            if *epoch > snapshot.epoch {
                break;
            }
            env.refuel();
            program.apply(&mut prefix, &mut env).expect("prefix replay");
            replayed.next();
        }
        assert_eq!(
            snapshot.instance().to_dot("mvcc"),
            prefix.to_dot("mvcc"),
            "retained epoch {} is not the prefix of the serial history \
             (seed {seed})",
            snapshot.epoch
        );
    }
}

#[test]
fn smoke_two_sessions_interleave_linearizably() {
    run_case(7, 2, 6, 4);
}

/// A snapshot held at epoch E stays bit-identical to the serial replay
/// of its prefix even after the retention policy trims E out of the
/// ring — MVCC handles outlive their ring slots.
#[test]
fn held_snapshot_survives_ring_trims_bit_identically() {
    let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(FaultPlan::reliable(11)));
    let store =
        Store::create_with_vfs(vfs, "/linz/db.journal", bench_scheme()).expect("create store");
    let server = Server::start(
        store,
        ServerConfig {
            queue_capacity: 64,
            // One commit per batch so epochs align with commits, and a
            // tight ring so the held epoch is trimmed quickly.
            max_batch: 1,
            retain_versions: 2,
            ..ServerConfig::default()
        },
    );
    let session = server.open_session();
    let programs = random_workload(11, 20);
    let mut committed: Vec<(u64, Program)> = Vec::new();
    let mut held = None;
    for program in programs {
        let ack = server
            .submit_wait(session, program.clone())
            .expect("reliable vfs");
        if ack.commit_seq.is_some() {
            committed.push((ack.epoch, program));
        }
        if held.is_none() && committed.len() == 3 {
            held = server.snapshot_at(ack.epoch);
        }
    }
    let held = held.expect("three commits out of twenty");
    // The ring has long since trimmed the held epoch...
    assert!(server.snapshot_at(held.epoch).is_none());
    server.shutdown().expect("clean shutdown");
    // ...but the handle still reads the exact prefix state.
    let mut prefix = Instance::new(bench_scheme());
    let mut env = Env::with_fuel(DEFAULT_FUEL);
    for (epoch, program) in &committed {
        if *epoch > held.epoch {
            break;
        }
        env.refuel();
        program.apply(&mut prefix, &mut env).expect("prefix replay");
    }
    assert_eq!(
        held.instance().to_dot("mvcc"),
        prefix.to_dot("mvcc"),
        "held snapshot drifted after its ring slot was trimmed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_interleavings_are_linearizable(
        seed in 0u64..1_000_000,
        sessions in 2usize..5,
        per_session in 2usize..6,
        max_batch in 1usize..9,
    ) {
        run_case(seed, sessions, per_session, max_batch);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10_000))]

    // Nightly-only: the 10k-case sweep (see .github/workflows/ci.yml).
    #[test]
    #[ignore = "nightly: 10k-case linearizability sweep"]
    fn nightly_random_interleavings_are_linearizable(
        seed in 0u64..100_000_000,
        sessions in 2usize..6,
        per_session in 2usize..8,
        max_batch in 1usize..17,
    ) {
        run_case(seed, sessions, per_session, max_batch);
    }
}
