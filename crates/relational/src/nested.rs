//! Nested relations and their GOOD simulation (Section 4.3, theorem
//! T2).
//!
//! "By adding abstraction, one can moreover simulate the nested
//! relational algebra. Nested relations are represented in an analogous
//! manner as standard relations, now using also multivalued edges. The
//! abstraction operation is needed in this case to obtain *faithful*
//! simulations of relation-valued attributes, meaning that duplicate
//! relations can be eliminated."
//!
//! We implement one level of nesting (`nest` / `unnest` — the
//! generators of the nested algebra over the flat one, per Schek &
//! Scholl, paper reference 28) natively, plus the GOOD-side simulation:
//!
//! * tuple objects keep their *key* attributes as functional edges;
//! * the nested component becomes element objects reachable through a
//!   multivalued `elem` edge;
//! * an [`Abstraction`] groups tuple objects by the equality of their
//!   element sets, producing exactly one set-representative per
//!   distinct relation value — the paper's duplicate elimination.

use crate::relation::{RelSchema, Relation, Tuple};
use good_core::error::{GoodError, Result};
use good_core::instance::Instance;
use good_core::label::Label;
use good_core::ops::{Abstraction, EdgeAddition, NodeAddition};
use good_core::pattern::Pattern;
use good_core::program::Env;
use good_core::value::Value;
use good_graph::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// A one-level nested relation: key tuples mapping to sets of nested
/// tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedRelation {
    /// Schema of the key (ungrouped) attributes.
    pub key_schema: RelSchema,
    /// Schema of the nested component.
    pub nested_schema: RelSchema,
    /// Name of the relation-valued attribute.
    pub nested_attr: String,
    /// Rows: key tuple → set of nested tuples.
    pub rows: BTreeMap<Tuple, BTreeSet<Tuple>>,
}

/// `ν` — nest `relation` on everything except `key_attrs`: group rows
/// by the key attributes, collecting the remaining attributes into a
/// relation-valued attribute named `nested_attr`.
pub fn nest(relation: &Relation, key_attrs: &[&str], nested_attr: &str) -> Result<NestedRelation> {
    let schema = relation.schema();
    let mut key_positions = Vec::new();
    for attr in key_attrs {
        key_positions.push(
            schema.position(attr).ok_or_else(|| {
                GoodError::InvariantViolation(format!("unknown attribute {attr}"))
            })?,
        );
    }
    let nested_positions: Vec<usize> = (0..schema.arity())
        .filter(|pos| !key_positions.contains(pos))
        .collect();
    let key_schema = RelSchema::new(key_positions.iter().map(|&pos| schema.attrs()[pos].clone()));
    let nested_schema = RelSchema::new(
        nested_positions
            .iter()
            .map(|&pos| schema.attrs()[pos].clone()),
    );
    let mut rows: BTreeMap<Tuple, BTreeSet<Tuple>> = BTreeMap::new();
    for tuple in relation.tuples() {
        let key: Tuple = key_positions
            .iter()
            .map(|&pos| tuple[pos].clone())
            .collect();
        let nested: Tuple = nested_positions
            .iter()
            .map(|&pos| tuple[pos].clone())
            .collect();
        rows.entry(key).or_default().insert(nested);
    }
    Ok(NestedRelation {
        key_schema,
        nested_schema,
        nested_attr: nested_attr.to_string(),
        rows,
    })
}

/// `μ` — unnest back to a flat relation (key attributes first, nested
/// attributes after, as produced by [`nest`]).
pub fn unnest(nested: &NestedRelation) -> Result<Relation> {
    let schema = RelSchema::new(
        nested
            .key_schema
            .attrs()
            .iter()
            .chain(nested.nested_schema.attrs())
            .cloned(),
    );
    let mut out = Relation::new(schema);
    for (key, elements) in &nested.rows {
        for element in elements {
            out.insert(key.iter().chain(element).cloned().collect())?;
        }
    }
    Ok(out)
}

/// The outcome of simulating a nest in GOOD.
#[derive(Debug, Clone)]
pub struct GoodNest {
    /// Class of the key objects (one per distinct key).
    pub key_class: Label,
    /// Class of the element objects (one per distinct nested tuple —
    /// node addition deduplicates).
    pub elem_class: Label,
    /// The multivalued edge from key objects to their elements.
    pub elem_edge: Label,
    /// Class of the abstraction groups (one per distinct *relation
    /// value* — the faithful-simulation representatives).
    pub group_class: Label,
    /// The abstraction's member edge.
    pub group_edge: Label,
}

/// Simulate `nest` inside a GOOD instance produced by
/// [`crate::encode::encode`]: `class` holds the flat tuples under
/// `schema`. Runs three node/edge additions and one abstraction.
pub fn nest_in_good(
    db: &mut Instance,
    env: &mut Env,
    class: &Label,
    schema: &RelSchema,
    key_attrs: &[&str],
    prefix: &str,
) -> Result<GoodNest> {
    let key_class = Label::new(format!("{prefix}-key"));
    let elem_class = Label::new(format!("{prefix}-elem"));
    let elem_edge = Label::new(format!("{prefix}-elems"));
    let group_class = Label::new(format!("{prefix}-setrep"));
    let group_edge = Label::new(format!("{prefix}-member"));

    let nested_attrs: Vec<&str> = schema
        .attrs()
        .iter()
        .map(|(name, _)| name.as_str())
        .filter(|name| !key_attrs.contains(name))
        .collect();

    // Helper building the flat-tuple fragment.
    let fragment = |pattern: &mut Pattern| -> (NodeId, BTreeMap<String, NodeId>) {
        let object = pattern.node(class.clone());
        let mut nodes = BTreeMap::new();
        for (attr, value_type) in schema.attrs() {
            let value = pattern.node(crate::encode::domain_label(*value_type));
            pattern.edge(object, attr.as_str(), value);
            nodes.insert(attr.clone(), value);
        }
        (object, nodes)
    };

    // 1. NA: one key object per distinct key-attribute vector.
    let mut p = Pattern::new();
    let (_, nodes) = fragment(&mut p);
    env.burn_fuel()?;
    NodeAddition::new(
        p,
        key_class.clone(),
        key_attrs
            .iter()
            .map(|attr| (Label::new(*attr), nodes[*attr])),
    )
    .apply(db)?;

    // 2. NA: one element object per distinct nested-attribute vector.
    let mut p = Pattern::new();
    let (_, nodes) = fragment(&mut p);
    env.burn_fuel()?;
    NodeAddition::new(
        p,
        elem_class.clone(),
        nested_attrs
            .iter()
            .map(|attr| (Label::new(*attr), nodes[*attr])),
    )
    .apply(db)?;

    // 3. EA: connect each key object to the elements it co-occurs with.
    let mut p = Pattern::new();
    let (_, nodes) = fragment(&mut p);
    let key_object = p.node(key_class.clone());
    for attr in key_attrs {
        p.edge(key_object, *attr, nodes[*attr]);
    }
    let elem_object = p.node(elem_class.clone());
    for attr in &nested_attrs {
        p.edge(elem_object, *attr, nodes[*attr]);
    }
    env.burn_fuel()?;
    EdgeAddition::multivalued(p, key_object, elem_edge.clone(), elem_object).apply(db)?;

    // 4. AB: one set representative per distinct element set — the
    // duplicate elimination the paper attributes to abstraction.
    let mut p = Pattern::new();
    let key_node = p.node(key_class.clone());
    env.burn_fuel()?;
    Abstraction::new(
        p,
        key_node,
        group_class.clone(),
        group_edge.clone(),
        elem_edge.clone(),
    )
    .apply(db)?;

    Ok(GoodNest {
        key_class,
        elem_class,
        elem_edge,
        group_class,
        group_edge,
    })
}

/// Decode the GOOD-simulated nest back into a [`NestedRelation`].
pub fn decode_nest(
    db: &Instance,
    nest: &GoodNest,
    key_schema: &RelSchema,
    nested_schema: &RelSchema,
    nested_attr: &str,
) -> Result<NestedRelation> {
    let mut rows = BTreeMap::new();
    for key_object in db.nodes_with_label(&nest.key_class) {
        let mut key = Vec::with_capacity(key_schema.arity());
        for (attr, _) in key_schema.attrs() {
            let target = db
                .functional_target(key_object, &Label::new(attr.as_str()))
                .ok_or_else(|| GoodError::InvariantViolation(format!("key object lacks {attr}")))?;
            key.push(value_of(db, target)?);
        }
        let mut elements = BTreeSet::new();
        for elem_object in db.targets(key_object, &nest.elem_edge) {
            let mut element = Vec::with_capacity(nested_schema.arity());
            for (attr, _) in nested_schema.attrs() {
                let target = db
                    .functional_target(elem_object, &Label::new(attr.as_str()))
                    .ok_or_else(|| {
                        GoodError::InvariantViolation(format!("element lacks {attr}"))
                    })?;
                element.push(value_of(db, target)?);
            }
            elements.insert(element);
        }
        rows.insert(key, elements);
    }
    Ok(NestedRelation {
        key_schema: key_schema.clone(),
        nested_schema: nested_schema.clone(),
        nested_attr: nested_attr.to_string(),
        rows,
    })
}

fn value_of(db: &Instance, node: NodeId) -> Result<Value> {
    db.print_value(node)
        .cloned()
        .ok_or_else(|| GoodError::InvariantViolation("expected a printable node".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::relation::RelDatabase;
    use good_core::value::ValueType;

    /// emp(dept, name): two departments, with the "db" and "ai" rows
    /// designed so that two DIFFERENT keys carry the SAME nested set —
    /// the duplicate relation value that abstraction must recognize.
    fn flat() -> Relation {
        let mut r = Relation::new(RelSchema::new([
            ("dept", ValueType::Str),
            ("name", ValueType::Str),
        ]));
        r.extend([
            vec![Value::str("db"), Value::str("ann")],
            vec![Value::str("db"), Value::str("bob")],
            vec![Value::str("os"), Value::str("cal")],
            vec![Value::str("ai"), Value::str("ann")],
            vec![Value::str("ai"), Value::str("bob")],
        ])
        .unwrap();
        r
    }

    #[test]
    fn nest_groups_rows() {
        let nested = nest(&flat(), &["dept"], "staff").unwrap();
        assert_eq!(nested.rows.len(), 3);
        let db_set = &nested.rows[&vec![Value::str("db")]];
        assert_eq!(db_set.len(), 2);
        let os_set = &nested.rows[&vec![Value::str("os")]];
        assert_eq!(os_set.len(), 1);
    }

    #[test]
    fn unnest_inverts_nest() {
        let original = flat();
        let nested = nest(&original, &["dept"], "staff").unwrap();
        let back = unnest(&nested).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn nest_unnest_on_empty() {
        let empty = Relation::new(RelSchema::new([
            ("a", ValueType::Int),
            ("b", ValueType::Int),
        ]));
        let nested = nest(&empty, &["a"], "bs").unwrap();
        assert!(nested.rows.is_empty());
        assert!(unnest(&nested).unwrap().is_empty());
    }

    #[test]
    fn good_simulation_matches_native_nest() {
        let flat_rel = flat();
        let mut base = RelDatabase::new();
        base.add("emp", flat_rel.clone());
        let mut db = encode(&base).unwrap();
        let mut env = Env::new();
        let good = nest_in_good(
            &mut db,
            &mut env,
            &crate::encode::class_label("emp"),
            flat_rel.schema(),
            &["dept"],
            "n",
        )
        .unwrap();
        db.validate().unwrap();

        let expected = nest(&flat_rel, &["dept"], "staff").unwrap();
        let key_schema = RelSchema::new([("dept".to_string(), ValueType::Str)]);
        let nested_schema = RelSchema::new([("name".to_string(), ValueType::Str)]);
        let decoded = decode_nest(&db, &good, &key_schema, &nested_schema, "staff").unwrap();
        assert_eq!(decoded.rows, expected.rows);
    }

    #[test]
    fn abstraction_identifies_duplicate_relation_values() {
        // "db" and "ai" have identical staff sets {ann, bob} → they end
        // up in the same abstraction group; "os" in its own.
        let flat_rel = flat();
        let mut base = RelDatabase::new();
        base.add("emp", flat_rel.clone());
        let mut db = encode(&base).unwrap();
        let mut env = Env::new();
        let good = nest_in_good(
            &mut db,
            &mut env,
            &crate::encode::class_label("emp"),
            flat_rel.schema(),
            &["dept"],
            "n",
        )
        .unwrap();
        assert_eq!(db.label_count(&good.group_class), 2);
        let sizes: Vec<usize> = db
            .nodes_with_label(&good.group_class)
            .map(|g| db.targets(g, &good.group_edge).count())
            .collect();
        let mut sorted = sizes.clone();
        sorted.sort();
        assert_eq!(sorted, vec![1, 2]);
    }

    #[test]
    fn element_objects_are_shared_across_keys() {
        // Node addition dedup: "ann" appears under db and ai but there
        // is ONE element object for her.
        let flat_rel = flat();
        let mut base = RelDatabase::new();
        base.add("emp", flat_rel.clone());
        let mut db = encode(&base).unwrap();
        let mut env = Env::new();
        let good = nest_in_good(
            &mut db,
            &mut env,
            &crate::encode::class_label("emp"),
            flat_rel.schema(),
            &["dept"],
            "n",
        )
        .unwrap();
        // Distinct nested tuples: ann, bob, cal → 3 element objects.
        assert_eq!(db.label_count(&good.elem_class), 3);
        // Distinct keys: db, os, ai → 3 key objects.
        assert_eq!(db.label_count(&good.key_class), 3);
    }

    #[test]
    fn unknown_key_attr_is_an_error() {
        assert!(nest(&flat(), &["nope"], "x").is_err());
    }
}
