//! E15 — the concurrent session server: group-commit throughput as a
//! function of the writer's batch ceiling, and snapshot-reader latency
//! with and without a writer flooding the queue (EXPERIMENTS.md §3).
//!
//! Hand-rolled like E12/E13: raw medians, criterion-style lines, and
//! machine-readable results in `BENCH_server.json` at the workspace
//! root. The container is 1-core, so the concurrency numbers measure
//! scheduling/amortization effects, not parallel speedup.

use good_core::gen::bench_scheme;
use good_core::matching::find_matchings;
use good_core::ops::NodeAddition;
use good_core::pattern::Pattern;
use good_core::program::{Operation, Program};
use good_server::{Server, ServerConfig};
use good_store::vfs::{FaultPlan, FaultVfs, Vfs};
use good_store::Store;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const BATCH_SIZES: [usize; 4] = [1, 4, 16, 64];
const PROGRAMS: usize = 384;
const THROUGHPUT_RUNS: usize = 5;
const READ_SAMPLES: usize = 400;

fn format_nanos(nanos: u128) -> String {
    let nanos = nanos as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// A node addition under a distinct label: additions are set-semantic,
/// so distinct labels keep every program doing real journal + model
/// work.
fn labeled_program(label: &str) -> Program {
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        Pattern::new(),
        label,
        [],
    ))])
}

fn fresh_server(max_batch: usize) -> Server {
    let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(FaultPlan::reliable(42)));
    let store =
        Store::create_with_vfs(vfs, "/bench/db.journal", bench_scheme()).expect("create store");
    Server::start(
        store,
        ServerConfig {
            queue_capacity: PROGRAMS + 1,
            max_batch,
            ..ServerConfig::default()
        },
    )
}

struct Throughput {
    max_batch: usize,
    programs: usize,
    median_total_ns: u128,
    programs_per_sec: u64,
    batches: u64,
}

/// Pipelined submission: enqueue everything, then drain the acks. The
/// queue stays full, so the writer forms groups up to its ceiling and
/// the fsync amortization (one sync per group, not per program) is
/// what the sweep exposes.
fn throughput_for(max_batch: usize) -> Throughput {
    let mut samples: Vec<(u128, u64)> = Vec::with_capacity(THROUGHPUT_RUNS);
    for run in 0..THROUGHPUT_RUNS {
        let server = fresh_server(max_batch);
        let session = server.open_session();
        let programs: Vec<Program> = (0..PROGRAMS)
            .map(|i| labeled_program(&format!("B{run}x{i}")))
            .collect();
        let start = Instant::now();
        let tickets: Vec<_> = programs
            .into_iter()
            .map(|program| server.submit(session, program).expect("submit"))
            .collect();
        for ticket in tickets {
            server.wait(ticket).expect("ack");
        }
        let elapsed = start.elapsed().as_nanos();
        let batches = server.epoch();
        samples.push((elapsed, batches));
        drop(server);
    }
    samples.sort_unstable();
    let (median_total_ns, batches) = samples[samples.len() / 2];
    Throughput {
        max_batch,
        programs: PROGRAMS,
        median_total_ns,
        programs_per_sec: (PROGRAMS as u128 * 1_000_000_000 / median_total_ns.max(1)) as u64,
        batches,
    }
}

struct ReadLatency {
    mode: &'static str,
    samples: usize,
    median_ns: u128,
    p99_ns: u128,
}

/// One reader observation: take a fresh snapshot and run the
/// Info-links-to-Info pattern over it — the workload a monitoring
/// query would run against the published state.
fn observe(server: &Server) -> usize {
    let snapshot = server.snapshot();
    let mut pattern = Pattern::new();
    let a = pattern.node("Info");
    let b = pattern.node("Info");
    pattern.edge(a, "links-to", b);
    find_matchings(&pattern, snapshot.instance())
        .expect("valid pattern")
        .len()
}

fn read_latency(server: &Server, mode: &'static str, samples: usize) -> ReadLatency {
    let mut times: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let matchings = observe(server);
        times.push(start.elapsed().as_nanos());
        std::hint::black_box(matchings);
    }
    times.sort_unstable();
    ReadLatency {
        mode,
        samples,
        median_ns: times[times.len() / 2],
        p99_ns: times[times.len() * 99 / 100],
    }
}

fn main() {
    println!("E15 server — group-commit throughput and reader latency (1-core container)");

    let throughputs: Vec<Throughput> = BATCH_SIZES.iter().map(|&b| throughput_for(b)).collect();
    for t in &throughputs {
        println!(
            "{:<60} time: [median {}] ({} programs/s, {} batches)",
            format!("E15-server/throughput/max-batch-{}", t.max_batch),
            format_nanos(t.median_total_ns),
            t.programs_per_sec,
            t.batches
        );
    }

    // Reader latency: idle baseline, then the same observation while a
    // writer floods the queue from another thread.
    let server = fresh_server(16);
    let session = server.open_session();
    for i in 0..32 {
        server
            .submit_wait(session, labeled_program(&format!("Seed{i}")))
            .expect("seed");
    }
    let idle = read_latency(&server, "idle", READ_SAMPLES);
    let under_load = std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..2_000u32 {
                server
                    .submit_wait(session, labeled_program(&format!("Load{i}")))
                    .expect("load");
            }
        });
        read_latency(&server, "under-write-load", READ_SAMPLES)
    });
    drop(server);
    for r in [&idle, &under_load] {
        println!(
            "{:<60} time: [median {}] (p99 {})",
            format!("E15-server/read-latency/{}", r.mode),
            format_nanos(r.median_ns),
            format_nanos(r.p99_ns)
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"E15-server\",");
    json.push_str("  \"throughput\": [\n");
    for (index, t) in throughputs.iter().enumerate() {
        let comma = if index + 1 == throughputs.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"max_batch\": {}, \"programs\": {}, \"median_total_ns\": {}, \
             \"programs_per_sec\": {}, \"batches\": {}}}{comma}",
            t.max_batch, t.programs, t.median_total_ns, t.programs_per_sec, t.batches
        );
    }
    json.push_str("  ],\n  \"read_latency\": [\n");
    let reads = [idle, under_load];
    for (index, r) in reads.iter().enumerate() {
        let comma = if index + 1 == reads.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"samples\": {}, \"median_ns\": {}, \"p99_ns\": {}}}{comma}",
            r.mode, r.samples, r.median_ns, r.p99_ns
        );
    }
    json.push_str("  ]\n}\n");

    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/
    path.pop(); // workspace root
    path.push("BENCH_server.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
