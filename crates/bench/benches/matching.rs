//! E1 — pattern matching scaling: the planned backtracking matcher vs
//! the naive cross-product enumerator, over instance size and pattern
//! length. Validates the qualitative claim that candidate-driven
//! matching makes patterns a tractable end-user primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use good_bench::{anchored_pattern, chain_pattern, instance_of, SIZES};
use good_core::matching::{find_matchings, find_matchings_naive, find_matchings_static_order};
use std::time::Duration;

fn bench_planned_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1/planned-by-instance-size");
    for size in SIZES {
        let db = instance_of(size);
        let (pattern, _) = chain_pattern(3);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| find_matchings(&pattern, &db).expect("matches"));
        });
    }
    group.finish();
}

fn bench_planned_by_pattern_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1/planned-by-pattern-length");
    let db = instance_of(400);
    for length in [1usize, 2, 3, 4] {
        let (pattern, _) = chain_pattern(length);
        group.bench_with_input(BenchmarkId::from_parameter(length), &length, |b, _| {
            b.iter(|| find_matchings(&pattern, &db).expect("matches"));
        });
    }
    group.finish();
}

fn bench_naive_baseline(c: &mut Criterion) {
    // The naive engine is exponential in pattern size; keep it small.
    let mut group = c.benchmark_group("E1/naive-baseline");
    for size in [30usize, 60, 120] {
        let db = instance_of(size);
        let (pattern, _) = chain_pattern(2);
        group.bench_with_input(BenchmarkId::new("naive", size), &size, |b, _| {
            b.iter(|| find_matchings_naive(&pattern, &db).expect("matches"));
        });
        group.bench_with_input(BenchmarkId::new("planned", size), &size, |b, _| {
            b.iter(|| find_matchings(&pattern, &db).expect("matches"));
        });
    }
    group.finish();
}

fn bench_selection_ablation(c: &mut Criterion) {
    // Ablation: dynamic most-constrained-node selection vs a static
    // id-order schedule, same candidate derivation. The pattern is
    // adversarial for the static order: the selective printable anchor
    // is declared LAST, so the static schedule starts from the
    // unconstrained Info nodes while the dynamic one starts at the
    // anchor.
    let mut group = c.benchmark_group("E1/selection-ablation");
    for size in SIZES {
        let db = instance_of(size);
        let (pattern, _, _) = anchored_pattern("info-7");
        group.bench_with_input(BenchmarkId::new("dynamic", size), &size, |b, _| {
            b.iter(|| find_matchings(&pattern, &db).expect("matches"));
        });
        group.bench_with_input(BenchmarkId::new("static", size), &size, |b, _| {
            b.iter(|| find_matchings_static_order(&pattern, &db).expect("matches"));
        });
    }
    group.finish();
}

fn bench_anchored_point_query(c: &mut Criterion) {
    // Printable anchors should make the query near-O(answer).
    let mut group = c.benchmark_group("E1/anchored-point-query");
    for size in SIZES {
        let db = instance_of(size);
        let (pattern, _, _) = anchored_pattern("info-7");
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| find_matchings(&pattern, &db).expect("matches"));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_planned_by_size, bench_planned_by_pattern_length,
              bench_naive_baseline, bench_selection_ablation, bench_anchored_point_query
}
criterion_main!(benches);
