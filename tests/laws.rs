//! Algebraic laws of the operations, property-tested on random
//! instances. None of these are stated as theorems in the paper, but
//! each follows from the formal semantics — so they make good
//! regression tripwires for the operation implementations.

use good::model::gen::{random_instance, GenConfig};
use good::model::instance::Instance;
use good::model::label::Label;
use good::model::ops::{Abstraction, EdgeAddition, EdgeDeletion, NodeAddition, NodeDeletion};
use good::model::pattern::Pattern;
use proptest::prelude::*;

fn db(seed: u64) -> Instance {
    random_instance(&GenConfig {
        infos: 12,
        avg_links: 1.5,
        distinct_dates: 3,
        seed,
    })
}

/// The linking pattern used throughout: X -links-to→ Y.
fn link_pattern() -> (Pattern, good_graph::NodeId, good_graph::NodeId) {
    let mut pattern = Pattern::new();
    let x = pattern.node("Info");
    let y = pattern.node("Info");
    pattern.edge(x, "links-to", y);
    (pattern, x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// EA of a fresh edge label followed by ED of the same edges is the
    /// identity on the instance graph.
    #[test]
    fn edge_addition_then_deletion_is_identity(seed in 0u64..300) {
        let mut instance = db(seed);
        let snapshot = instance.clone();
        let (pattern, x, y) = link_pattern();
        EdgeAddition::multivalued(pattern, y, "rec-links-to", x)
            .apply(&mut instance)
            .unwrap();
        // Delete exactly what was added: pattern re-matches the new
        // edges.
        let mut del = Pattern::new();
        let a = del.node("Info");
        let b = del.node("Info");
        del.edge(a, "rec-links-to", b);
        EdgeDeletion::single(del, a, "rec-links-to", b)
            .apply(&mut instance)
            .unwrap();
        prop_assert!(instance.isomorphic_to(&snapshot));
    }

    /// NA of a fresh class followed by ND of that whole class is the
    /// identity on the instance graph.
    #[test]
    fn node_addition_then_class_deletion_is_identity(seed in 0u64..300) {
        let mut instance = db(seed);
        let snapshot = instance.clone();
        let (pattern, x, _) = link_pattern();
        NodeAddition::new(pattern, "Tag", [(Label::new("of"), x)])
            .apply(&mut instance)
            .unwrap();
        let mut del = Pattern::new();
        let tag = del.node("Tag");
        NodeDeletion::new(del, tag).apply(&mut instance).unwrap();
        prop_assert!(instance.isomorphic_to(&snapshot));
    }

    /// ND is idempotent: deleting with the same pattern twice equals
    /// deleting once.
    #[test]
    fn node_deletion_is_idempotent(seed in 0u64..300) {
        let mut once = db(seed);
        let (pattern, x, _) = link_pattern();
        NodeDeletion::new(pattern.clone(), x).apply(&mut once).unwrap();
        let mut twice = once.clone();
        NodeDeletion::new(pattern, x).apply(&mut twice).unwrap();
        prop_assert!(twice.isomorphic_to(&once));
    }

    /// ED is idempotent.
    #[test]
    fn edge_deletion_is_idempotent(seed in 0u64..300) {
        let mut once = db(seed);
        let (pattern, x, y) = link_pattern();
        EdgeDeletion::single(pattern.clone(), x, "links-to", y)
            .apply(&mut once)
            .unwrap();
        let mut twice = once.clone();
        EdgeDeletion::single(pattern, x, "links-to", y)
            .apply(&mut twice)
            .unwrap();
        prop_assert!(twice.isomorphic_to(&once));
    }

    /// Abstraction twice with the same labels equals abstraction once
    /// (group reuse).
    #[test]
    fn abstraction_is_idempotent(seed in 0u64..300) {
        let mut once = db(seed);
        let make = || {
            let mut pattern = Pattern::new();
            let info = pattern.node("Info");
            Abstraction::new(pattern, info, "Grp", "member", "links-to")
        };
        make().apply(&mut once).unwrap();
        let mut twice = once.clone();
        make().apply(&mut twice).unwrap();
        prop_assert!(twice.isomorphic_to(&once));
    }

    /// Two node additions with disjoint class labels commute.
    #[test]
    fn independent_node_additions_commute(seed in 0u64..300) {
        let tag = |class: &str| {
            let (pattern, x, _) = link_pattern();
            NodeAddition::new(pattern, class, [(Label::new(format!("{class}-of")), x)])
        };
        let mut ab = db(seed);
        tag("A").apply(&mut ab).unwrap();
        tag("B").apply(&mut ab).unwrap();
        let mut ba = db(seed);
        tag("B").apply(&mut ba).unwrap();
        tag("A").apply(&mut ba).unwrap();
        prop_assert!(ab.isomorphic_to(&ba));
    }

    /// The matcher is invariant under serde round-trips of the
    /// instance.
    #[test]
    fn matchings_survive_serialization(seed in 0u64..300) {
        let instance = db(seed);
        let (pattern, _, _) = link_pattern();
        let before = good::model::matching::find_matchings(&pattern, &instance).unwrap();
        let json = serde_json::to_string(&instance).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        let after = good::model::matching::find_matchings(&pattern, &back).unwrap();
        prop_assert_eq!(before, after);
    }
}
