//! Labels — the type names of the GOOD model.
//!
//! The paper assumes four pairwise-disjoint, infinitely enumerable sets:
//! object labels (`OL`), printable object labels (`POL`), functional edge
//! labels (`FEL`) and multivalued edge labels (`MEL`). We represent all of
//! them with one interned string type, [`Label`]; *which* of the four
//! universes a label inhabits is recorded by the [`Scheme`](crate::scheme::Scheme),
//! which enforces the disjointness requirement at registration time.
//!
//! Labels starting with `'$'` are **reserved for the system**: the method
//! machinery of Section 3.6 generates fresh frame labels (`$frame:...`)
//! and the unlabeled receiver edge of a method head is modeled as the
//! reserved edge label [`RECEIVER_EDGE`]. User-facing constructors reject
//! reserved names so user schemes can never collide with machinery.

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An interned label (class name or edge name).
///
/// Cloning is cheap (an `Arc` bump); comparison and hashing operate on
/// the string contents so labels behave as values.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Label(Arc<str>);

/// The reserved edge label modeling the *unlabeled* receiver edge of a
/// method head node (Section 3.6).
pub const RECEIVER_EDGE: &str = "$recv";

/// The receiver-edge [`Label`] (`$recv`) — the only system label users
/// legitimately need, to draw the unlabeled binding edge from a method
/// head to its receiver in method bodies.
pub fn receiver_label() -> Label {
    Label::system(RECEIVER_EDGE)
}

impl Label {
    /// Create a user label.
    ///
    /// # Panics
    /// Panics if the name is empty or starts with the reserved `'$'`
    /// prefix — both are programming errors at scheme-design time.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        assert!(!name.is_empty(), "label names must be non-empty");
        assert!(
            !name.starts_with('$'),
            "label names starting with '$' are reserved for the system: {name:?}"
        );
        Label(Arc::from(name))
    }

    /// Create a system label (reserved namespace). Used by the method
    /// machinery for frame labels and the receiver edge.
    pub(crate) fn system(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        debug_assert!(name.starts_with('$'), "system labels must start with '$'");
        Label(Arc::from(name))
    }

    /// The label text.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True if this label lives in the reserved system namespace.
    #[inline]
    pub fn is_system(&self) -> bool {
        self.0.starts_with('$')
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", self.0)
    }
}

impl Borrow<str> for Label {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Label {
    fn from(name: &str) -> Self {
        Label::new(name)
    }
}

impl From<String> for Label {
    fn from(name: String) -> Self {
        Label::new(name)
    }
}

/// Which of the two node-label universes a label belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// User-defined object classes (`OL`, drawn as rectangles).
    Object,
    /// System-defined printable classes (`POL`, drawn as ovals).
    Printable,
}

/// Which of the two edge-label universes a label belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Functional edge labels (`FEL`, drawn `→`): at most one edge with
    /// this label leaves any node.
    Functional,
    /// Multivalued edge labels (`MEL`, drawn `↠`).
    Multivalued,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKind::Functional => f.write_str("functional"),
            EdgeKind::Multivalued => f.write_str("multivalued"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn labels_compare_by_content() {
        let a = Label::new("Info");
        let b = Label::new("Info");
        let c = Label::new("Date");
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert!(set.contains("Info")); // Borrow<str>
    }

    #[test]
    fn display_and_debug() {
        let label = Label::new("links-to");
        assert_eq!(label.to_string(), "links-to");
        assert_eq!(format!("{label:?}"), "`links-to`");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn user_labels_cannot_use_system_namespace() {
        Label::new("$frame:Update:0");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_labels_rejected() {
        Label::new("");
    }

    #[test]
    fn system_labels_flagged() {
        let frame = Label::system("$frame:M:1");
        assert!(frame.is_system());
        assert!(!Label::new("frame").is_system());
    }

    #[test]
    fn serde_roundtrip() {
        let label = Label::new("Info");
        let json = serde_json::to_string(&label).unwrap();
        assert_eq!(json, "\"Info\"");
        let back: Label = serde_json::from_str(&json).unwrap();
        assert_eq!(back, label);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut labels = [Label::new("c"), Label::new("a"), Label::new("b")];
        labels.sort();
        let names: Vec<_> = labels.iter().map(|l| l.as_str().to_string()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
