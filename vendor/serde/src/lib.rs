//! Offline stand-in for `serde`.
//!
//! Instead of upstream's visitor-based zero-copy architecture, this
//! crate uses a simple owned data-model tree ([`Content`]): types
//! serialize *into* a `Content` and deserialize *from* one. The sibling
//! `serde_json` stand-in converts `Content` to and from JSON text with
//! the same conventions as real `serde_json` (externally tagged enums,
//! newtype forwarding, `null` for `None`, arrays for sequences and
//! tuples, objects for maps and named structs), so persisted artifacts
//! stay compatible for every type this workspace defines.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped owned tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered map entries (keys may be any content; the JSON
    /// layer restricts them to strings and integers).
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "boolean",
            Content::Int(_) => "integer",
            Content::Float(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }

    // Navigation helpers (the `serde_json::Value` idiom) so callers can
    // walk schemaless documents — e.g. a stats snapshot — without
    // deriving a struct for every shape.

    /// Map member by key; `None` for non-maps and missing keys.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// Sequence element by index; `None` for non-sequences and OOB.
    pub fn at(&self, index: usize) -> Option<&Content> {
        match self {
            Content::Seq(items) => items.get(index),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The integer payload as i64, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::Int(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The numeric payload as f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::Float(f) => Some(*f),
            Content::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The sequence items, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// True for `Content::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }
}

/// Sentinel for total indexing: missing members index to `Null`.
static NULL_CONTENT: Content = Content::Null;

// Total indexing, as on `serde_json::Value`: `doc["a"]["b"][0]` walks
// the tree and yields `Null` (not a panic) anywhere the path misses.
impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL_CONTENT)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, index: usize) -> &Content {
        self.at(index).unwrap_or(&NULL_CONTENT)
    }
}

// `Content` round-trips through itself, so `serde_json::from_str::<
// Content>` parses arbitrary JSON into the dynamic tree — the
// stand-in's equivalent of parsing to `serde_json::Value`.
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

/// Total order over contents, used to give `HashMap`/`HashSet`
/// serialization a deterministic entry order.
pub fn content_cmp(a: &Content, b: &Content) -> Ordering {
    fn rank(c: &Content) -> u8 {
        match c {
            Content::Null => 0,
            Content::Bool(_) => 1,
            Content::Int(_) => 2,
            Content::Float(_) => 3,
            Content::Str(_) => 4,
            Content::Seq(_) => 5,
            Content::Map(_) => 6,
        }
    }
    match (a, b) {
        (Content::Bool(x), Content::Bool(y)) => x.cmp(y),
        (Content::Int(x), Content::Int(y)) => x.cmp(y),
        (Content::Float(x), Content::Float(y)) => x.total_cmp(y),
        (Content::Str(x), Content::Str(y)) => x.cmp(y),
        (Content::Seq(x), Content::Seq(y)) => {
            for (l, r) in x.iter().zip(y.iter()) {
                let ord = content_cmp(l, r);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        (Content::Map(x), Content::Map(y)) => {
            for ((lk, lv), (rk, rv)) in x.iter().zip(y.iter()) {
                let ord = content_cmp(lk, rk).then_with(|| content_cmp(lv, rv));
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn custom<T: fmt::Display>(message: T) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into the [`Content`] data model.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Types that can be reconstructed from the [`Content`] data model.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code (and by serde_json).

#[doc(hidden)]
pub mod __private {
    use super::{Content, Error};

    pub fn expect_map<'a>(
        content: &'a Content,
        context: &str,
    ) -> Result<&'a [(Content, Content)], Error> {
        match content {
            Content::Map(entries) => Ok(entries),
            other => Err(Error::custom(format!(
                "invalid type for {context}: expected map, found {}",
                other.kind()
            ))),
        }
    }

    pub fn expect_seq<'a>(
        content: &'a Content,
        len: usize,
        context: &str,
    ) -> Result<&'a [Content], Error> {
        match content {
            Content::Seq(items) if items.len() == len => Ok(items),
            Content::Seq(items) => Err(Error::custom(format!(
                "invalid length for {context}: expected {len}, found {}",
                items.len()
            ))),
            other => Err(Error::custom(format!(
                "invalid type for {context}: expected sequence, found {}",
                other.kind()
            ))),
        }
    }

    pub fn map_field<'a>(
        entries: &'a [(Content, Content)],
        name: &str,
        context: &str,
    ) -> Result<&'a Content, Error> {
        entries
            .iter()
            .find(|(key, _)| matches!(key, Content::Str(s) if s == name))
            .map(|(_, value)| value)
            .ok_or_else(|| Error::custom(format!("missing field `{name}` in {context}")))
    }

    /// Decode an externally-tagged enum: either a bare string (unit
    /// variant) or a single-entry map `{tag: payload}`.
    pub fn variant<'a>(
        content: &'a Content,
        context: &str,
    ) -> Result<(&'a str, Option<&'a Content>), Error> {
        match content {
            Content::Str(tag) => Ok((tag, None)),
            Content::Map(entries) if entries.len() == 1 => match &entries[0] {
                (Content::Str(tag), payload) => Ok((tag, Some(payload))),
                _ => Err(Error::custom(format!(
                    "invalid enum tag for {context}: expected string key"
                ))),
            },
            other => Err(Error::custom(format!(
                "invalid type for enum {context}: expected string or single-entry map, found {}",
                other.kind()
            ))),
        }
    }

    pub fn variant_payload<'a>(
        payload: Option<&'a Content>,
        variant: &str,
    ) -> Result<&'a Content, Error> {
        payload.ok_or_else(|| Error::custom(format!("variant `{variant}` expects a payload")))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls.

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::Int(*self as i128)
            }
        }
        impl Deserialize for $ty {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::Int(value) => <$ty>::try_from(*value).map_err(|_| {
                        Error::custom(format!(
                            "integer {value} out of range for {}",
                            stringify!($ty)
                        ))
                    }),
                    Content::Float(value) if value.fract() == 0.0 => Ok(*value as $ty),
                    other => Err(Error::custom(format!(
                        "invalid type: expected {}, found {}",
                        stringify!($ty),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::Float(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::Float(value) => Ok(*value as $ty),
                    Content::Int(value) => Ok(*value as $ty),
                    other => Err(Error::custom(format!(
                        "invalid type: expected {}, found {}",
                        stringify!($ty),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(value) => Ok(*value),
            other => Err(Error::custom(format!(
                "invalid type: expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::custom(format!(
                "invalid type: expected single-character string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "invalid type: expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(_: &Content) -> Result<Self, Error> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Pointer / wrapper impls.

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Arc::new)
    }
}

impl Deserialize for Arc<str> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        String::from_content(content).map(Arc::from)
    }
}

impl Deserialize for Box<str> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        String::from_content(content).map(Box::from)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(value) => value.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

// ---------------------------------------------------------------------------
// Sequences and maps.

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!(
                "invalid type: expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!(
                "invalid type: expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_content(&self) -> Content {
        let mut items: Vec<Content> = self.iter().map(Serialize::to_content).collect();
        items.sort_by(content_cmp);
        Content::Seq(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!(
                "invalid type: expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

fn map_from_content<K: Deserialize, V: Deserialize>(
    content: &Content,
) -> Result<Vec<(K, V)>, Error> {
    match content {
        Content::Map(entries) => entries
            .iter()
            .map(|(key, value)| Ok((K::from_content(key)?, V::from_content(value)?)))
            .collect(),
        other => Err(Error::custom(format!(
            "invalid type: expected map, found {}",
            other.kind()
        ))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(key, value)| (key.to_content(), value.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(map_from_content::<K, V>(content)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(Content, Content)> = self
            .iter()
            .map(|(key, value)| (key.to_content(), value.to_content()))
            .collect();
        entries.sort_by(|(a, _), (b, _)| content_cmp(a, b));
        Content::Map(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(map_from_content::<K, V>(content)?.into_iter().collect())
    }
}

// ---------------------------------------------------------------------------
// Tuples.

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = __private::expect_seq(content, LEN, "tuple")?;
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_content(&42i64.to_content()).unwrap(), 42);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_content(&None::<u8>.to_content()).unwrap(),
            None
        );
    }

    #[test]
    fn maps_roundtrip() {
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1u32);
        map.insert("b".to_string(), 2u32);
        let back = BTreeMap::<String, u32>::from_content(&map.to_content()).unwrap();
        assert_eq!(map, back);
    }
}
