//! # good-query — GOODQL, a declarative query language for GOOD
//!
//! A small GQL/Cypher-flavored MATCH/WHERE/RETURN fragment that
//! compiles to the GOOD model's native machinery: one query string
//! becomes one GOOD [`Pattern`](good_core::pattern::Pattern) plus a
//! path-derivation program of edge additions and starred (recursive)
//! edge additions. The same AST also compiles to the `relational` and
//! `tarski` backends, so every query is answered three independent
//! ways — the paper's completeness theorems as an always-on
//! differential oracle.
//!
//! ```text
//! MATCH (a:Info)-[:links-to*1..3]->(b:Info), (a)-[:name]->(n:String)
//! WHERE n STARTS WITH "info" AND NOT (b)-[:links-to]->(a)
//! RETURN DISTINCT a, b LIMIT 10
//! ```
//!
//! Pipeline: [`parser::parse_query`] → [`compile::compile`] →
//! [`exec::execute`] (pick a [`exec::Backend`]) or [`exec::explain`]
//! for the compiled program + match plan.

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod exec;
pub mod gen;
pub mod parser;

pub use ast::Query;
pub use compile::{compile, CompiledQuery, MAX_PATH_BOUND};
pub use exec::{execute, explain, run, run_differential, Backend, QueryOutput};
pub use parser::{parse_query, MAX_QUERY_LEN};

use good_core::error::GoodError;
use std::fmt;

/// Errors from parsing, compiling, or executing a GOODQL query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The text did not parse. `pos` is a byte offset into the source.
    Parse {
        /// Byte offset of the error in the query text.
        pos: usize,
        /// What went wrong / what was expected.
        message: String,
    },
    /// The query parsed but does not compile against the scheme.
    Compile {
        /// Byte offset of the offending construct.
        pos: usize,
        /// What went wrong.
        message: String,
    },
    /// Execution failed (matching error, fuel exhaustion, ...).
    Exec(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse { pos, message } => {
                write!(f, "parse error at byte {pos}: {message}")
            }
            QueryError::Compile { pos, message } => {
                write!(f, "compile error at byte {pos}: {message}")
            }
            QueryError::Exec(message) => write!(f, "execution error: {message}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<GoodError> for QueryError {
    fn from(err: GoodError) -> Self {
        QueryError::Exec(err.to_string())
    }
}

impl QueryError {
    /// The byte offset the error points at, when it has one.
    pub fn pos(&self) -> Option<usize> {
        match self {
            QueryError::Parse { pos, .. } | QueryError::Compile { pos, .. } => Some(*pos),
            QueryError::Exec(_) => None,
        }
    }

    /// Render the error with a caret marking the offending position in
    /// `source` — the CLI / server diagnostic format:
    ///
    /// ```text
    /// parse error at byte 9: expected `)`
    ///   MATCH (a:
    ///            ^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let mut out = self.to_string();
        let Some(pos) = self.pos() else {
            return out;
        };
        let pos = pos.min(source.len());
        // The line containing `pos`, and the caret's column within it.
        let line_start = source[..pos].rfind('\n').map_or(0, |i| i + 1);
        let line_end = source[pos..].find('\n').map_or(source.len(), |i| pos + i);
        let line = &source[line_start..line_end];
        let column = source[line_start..pos].chars().count();
        out.push_str("\n  ");
        out.push_str(line);
        out.push_str("\n  ");
        for _ in 0..column {
            out.push(' ');
        }
        out.push('^');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caret_points_at_offset() {
        let err = QueryError::Parse {
            pos: 9,
            message: "expected `)`".into(),
        };
        let rendered = err.render("MATCH (a:");
        assert_eq!(
            rendered,
            "parse error at byte 9: expected `)`\n  MATCH (a:\n           ^"
        );
    }

    #[test]
    fn caret_lands_on_right_line_of_multiline_source() {
        let source = "MATCH (a:Info)\nRETRUN a";
        let err = QueryError::Parse {
            pos: 15,
            message: "expected RETURN".into(),
        };
        let rendered = err.render(source);
        assert!(rendered.ends_with("\n  RETRUN a\n  ^"), "{rendered}");
    }

    #[test]
    fn exec_errors_render_without_caret() {
        let err = QueryError::Exec("out of fuel".into());
        assert_eq!(err.render("MATCH"), "execution error: out of fuel");
    }

    #[test]
    fn caret_clamps_past_the_end() {
        let err = QueryError::Parse {
            pos: 999,
            message: "unexpected end of query".into(),
        };
        let rendered = err.render("MATCH");
        assert!(rendered.ends_with("\n  MATCH\n       ^"), "{rendered}");
    }
}
