//! Differential property tests for the persistent (structurally
//! shared) instance representation.
//!
//! The persistent `Instance` must be *observationally identical* to a
//! clone-based one. Each case drives a random workload down two lanes:
//!
//! * **persistent lane** — one instance mutated in place while a
//!   cheap (`Arc`-bump) clone is retained after every step, exactly
//!   the sharing pattern the MVCC version ring produces;
//! * **unshared lane** — the same programs applied to an instance that
//!   is `deep_clone`d (structure fully unshared) between steps, i.e.
//!   the pre-persistent cost model.
//!
//! After every step the two lanes must render bit-identically, the
//! full index/adjacency audit must pass on the shared lane, and at the
//! end every retained clone must still render exactly as it did the
//! moment it was taken — later in-place mutation through
//! `Arc::make_mut` must never reach into a shared node.

use good_core::gen::{random_instance, random_workload, GenConfig};
use good_core::instance::Instance;
use good_core::program::{Env, DEFAULT_FUEL};
use proptest::prelude::*;

fn run_case(seed: u64, infos: usize, steps: usize) {
    let config = GenConfig {
        infos,
        seed,
        ..GenConfig::default()
    };
    let mut shared = random_instance(&config);
    let mut unshared = shared.deep_clone();
    let mut env = Env::with_fuel(DEFAULT_FUEL);
    let mut retained: Vec<(Instance, String)> = Vec::new();
    for (step, program) in random_workload(seed, steps).iter().enumerate() {
        // Apply to scratch copies so a model-rejected program leaves
        // both lanes untouched (the store commits the same way).
        env.refuel();
        let mut next = shared.clone();
        let shared_outcome = program.apply(&mut next, &mut env).map(drop);
        env.refuel();
        let mut next_unshared = unshared.deep_clone();
        let unshared_outcome = program.apply(&mut next_unshared, &mut env).map(drop);
        assert_eq!(
            shared_outcome.is_ok(),
            unshared_outcome.is_ok(),
            "lanes diverged on outcome at step {step} (seed {seed})"
        );
        if shared_outcome.is_ok() {
            shared = next;
            unshared = next_unshared;
        }
        let rendered = shared.to_dot("lane");
        assert_eq!(
            rendered,
            unshared.to_dot("lane"),
            "persistent and unshared lanes diverged at step {step} (seed {seed})"
        );
        shared
            .validate()
            .unwrap_or_else(|err| panic!("audit failed at step {step} (seed {seed}): {err}"));
        retained.push((shared.clone(), rendered));
    }
    // Frozen-history check: every retained clone still renders exactly
    // as it did when taken.
    for (step, (snapshot, rendered)) in retained.iter().enumerate() {
        assert_eq!(
            &snapshot.to_dot("lane"),
            rendered,
            "retained clone from step {step} drifted (seed {seed})"
        );
        snapshot.validate().expect("retained clone audit");
    }
}

#[test]
fn smoke_differential_small() {
    run_case(42, 30, 12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn persistent_equals_unshared_under_random_workloads(
        seed in 0u64..1_000_000,
        infos in 5usize..60,
        steps in 2usize..14,
    ) {
        run_case(seed, infos, steps);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // Nightly-only: the deep sweep (see .github/workflows/ci.yml).
    #[test]
    #[ignore = "nightly: 512-case persistent/unshared differential sweep"]
    fn nightly_persistent_equals_unshared(
        seed in 0u64..100_000_000,
        infos in 5usize..150,
        steps in 2usize..24,
    ) {
        run_case(seed, infos, steps);
    }
}
